"""Command-line interface.

Subcommands::

    repro generate  --game bioshock1_like --frames 120 -o trace.jsonl
    repro info      trace.jsonl
    repro simulate  trace.jsonl --preset mainstream
    repro subset    trace.jsonl --preset mainstream --radius 0.16
    repro sweep     trace.jsonl --preset mainstream
    repro experiment e1 [--full-scale]   # e1..e9
    repro check     src/repro --format github
    repro runs      list|show|diff|regress   # run-history store
    repro trace     report spans.jsonl       # span hotspot rollup
    repro serve     --port 8630 --workers 2  # subsetting-as-a-service
    repro jobs      submit|status|result|list|cancel  # service client
    repro dash      --open                   # exploration dashboard
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro import datasets
from repro.analysis import experiments
from repro.core.cluster_frame import DEFAULT_RADIUS
from repro.core.phasedetect import DEFAULT_INTERVAL_LENGTH, DEFAULT_TOLERANCE
from repro.core.pipeline import SubsettingPipeline
from repro.core.subsetting import build_subset
from repro.errors import CheckError, ReproError
from repro.gfx.traceio import load_trace_auto as load_trace
from repro.gfx.traceio import save_trace_auto as save_trace
from repro.obs import (
    JsonLogger,
    NullLogger,
    ProgressReporter,
    RunManifest,
    Tracer,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.history import record_run
from repro.runtime.engine import Runtime
from repro.runtime.telemetry import Telemetry
from repro.simgpu._kernels import KERNEL_BACKENDS, set_backend
from repro.simgpu.config import GpuConfig
from repro.simgpu.precomp_store import set_precomp_dir
from repro.synth.generator import generate_trace
from repro.synth.profiles import BIOSHOCK_SERIES
from repro.util.tables import format_table

EXPERIMENT_RUNNERS = (
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10",
)

#: Default address for `repro serve` / the `repro jobs` client.
DEFAULT_SERVICE_PORT = 8630
DEFAULT_SERVICE_URL = f"http://127.0.0.1:{DEFAULT_SERVICE_PORT}"

#: Default port for the read-only `repro dash` server (distinct from
#: the job service so both can run side by side on one store).
DEFAULT_DASH_PORT = 8631


class _VersionAction(argparse.Action):
    """``--version`` printing :func:`repro.obs.history.version_line`.

    A custom action rather than ``action="version"`` so the git
    subprocess behind the provenance line only runs when the flag is
    actually used, not on every parser construction.
    """

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.obs.history import version_line

        print(version_line())
        parser.exit(0)


def _jobs_arg(value: str):
    """``--jobs`` accepts a positive worker count or the string 'auto'."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """Execution-backend flags shared by every simulating subcommand."""
    group = parser.add_argument_group("runtime")
    group.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=1,
        help=(
            "worker processes for simulation/clustering: a count, or "
            "'auto' to size to the host and run small workloads inline "
            "(default: 1, serial)"
        ),
    )
    group.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "artifact cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)"
        ),
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact cache entirely",
    )
    group.add_argument(
        "--kernels",
        choices=KERNEL_BACKENDS,
        default=None,
        help=(
            "precompute kernel backend: numba / cext (compiled C) / "
            "python, or 'auto' for the fastest available (default: "
            "$REPRO_KERNELS or auto); worker processes inherit it"
        ),
    )
    group.add_argument(
        "--precomp-dir",
        default=None,
        metavar="DIR",
        help=(
            "machine-wide shared precompute store: frame precompute is "
            "published once and mmap'd by every worker (default: "
            "$REPRO_PRECOMP_DIR or .repro/precomp)"
        ),
    )
    group.add_argument(
        "--no-precomp-store",
        action="store_true",
        help="disable the shared precompute store (recompute per worker)",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write a hierarchical execution trace: Chrome trace-event JSON "
            "(open in Perfetto or chrome://tracing), or span JSONL when "
            "FILE ends in .jsonl"
        ),
    )
    obs.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the final metrics snapshot (counters/gauges/histograms) as JSON",
    )
    obs.add_argument(
        "--manifest-out",
        default=None,
        metavar="FILE",
        help=(
            "write a run manifest (config/trace digests, seeds, CLI args, "
            "package version, host, final metrics) as JSON"
        ),
    )
    obs.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON log lines on stderr",
    )
    obs.add_argument(
        "--progress",
        action="store_true",
        help=(
            "emit live progress lines on stderr while task graphs run "
            "(tasks done, frames/sec, ETA; heartbeats while workers are "
            "busy) and record the throughput as progress_* gauges"
        ),
    )
    obs.add_argument(
        "--run-store",
        default=None,
        metavar="DIR",
        help=(
            "append this run's record (digests, metrics, stage rollups) "
            "to the run-history store at DIR (default: $REPRO_RUN_STORE "
            "or .repro/runs)"
        ),
    )
    obs.add_argument(
        "--no-run-store",
        action="store_true",
        help="do not append a run record to the run-history store",
    )


def _runtime_from_args(
    args, telemetry: Optional[Telemetry] = None, progress=None
) -> Runtime:
    if args.no_cache:
        return Runtime(jobs=args.jobs, telemetry=telemetry, progress=progress)
    from repro.runtime.cache import default_cache_dir

    cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    return Runtime(
        jobs=args.jobs, cache_dir=cache_dir, telemetry=telemetry,
        progress=progress,
    )


class _ObsSession:
    """Per-command observability bundle: runtime, root span, outputs.

    Construct it where the command used to build its runtime, record the
    run's seeds/configs/traces on it as they become known, and call
    :meth:`finish` after the command's work — it closes the root span
    and writes whichever of ``--trace-out`` / ``--metrics-out`` /
    ``--manifest-out`` were requested.
    """

    def __init__(self, args, command: str) -> None:
        self.args = args
        self.command = command
        self.logger = (
            JsonLogger() if getattr(args, "log_json", False) else NullLogger()
        )
        # Kernel/precomp selection exports env so worker processes and
        # every layer below resolve the same backend/store; resolving
        # eagerly turns a bad --kernels into a CLI error, not a
        # mid-sweep crash in a worker.
        if getattr(args, "kernels", None):
            set_backend(args.kernels)
        if getattr(args, "no_precomp_store", False):
            set_precomp_dir("")
        elif getattr(args, "precomp_dir", None):
            set_precomp_dir(args.precomp_dir)
        tracer = Tracer() if getattr(args, "trace_out", None) else None
        self.telemetry = Telemetry(tracer=tracer)
        progress = (
            ProgressReporter(metrics=self.telemetry.metrics)
            if getattr(args, "progress", False)
            else None
        )
        self.runtime = _runtime_from_args(
            args, telemetry=self.telemetry, progress=progress
        )
        self.seeds: dict = {}
        self.configs: dict = {}
        self.traces: dict = {}
        # Sidecar sections (see repro.obs.artifacts) attached by the
        # command body; record_run writes them next to the run record.
        self.artifacts: dict = {}
        self._started = time.perf_counter()
        self._root_span = self.telemetry.tracer.span(
            f"cli:{command}", category="cli"
        )
        self._root_span.__enter__()
        self.logger.log("run_start", command=command, argv=sys.argv[1:])

    def finish(self) -> None:
        self._root_span.__exit__(None, None, None)
        duration_s = time.perf_counter() - self._started
        args = self.args
        runtime = self.runtime
        trace_out = getattr(args, "trace_out", None)
        if trace_out:
            spans = runtime.tracer.spans()
            if str(trace_out).endswith(".jsonl"):
                write_spans_jsonl(spans, trace_out)
            else:
                write_chrome_trace(spans, trace_out)
            print(f"execution trace ({len(spans)} spans) written to {trace_out}")
        metrics_out = getattr(args, "metrics_out", None)
        if metrics_out:
            import json

            with open(metrics_out, "w", encoding="utf-8") as stream:
                json.dump(runtime.metrics.snapshot().as_dict(), stream, indent=2)
                stream.write("\n")
            print(f"metrics written to {metrics_out}")
        manifest_out = getattr(args, "manifest_out", None)
        if manifest_out:
            manifest = RunManifest.collect(
                command=self.command,
                argv=sys.argv[1:],
                seeds=self.seeds,
                configs=self.configs,
                traces=self.traces,
                jobs=runtime.jobs,
                cache_dir=getattr(args, "cache_dir", None),
                duration_s=duration_s,
                metrics=runtime.metrics.snapshot(),
            )
            manifest.write(manifest_out)
            print(f"run manifest written to {manifest_out}")
        if not getattr(args, "no_run_store", False):
            from repro.runtime.keys import config_digest, trace_digest

            record_path = record_run(
                self.command,
                store=getattr(args, "run_store", None),
                argv=sys.argv[1:],
                telemetry=self.telemetry,
                seeds=self.seeds,
                config_digests={
                    name: config_digest(config)
                    for name, config in self.configs.items()
                },
                trace_digests={
                    name: trace_digest(trace)
                    for name, trace in self.traces.items()
                },
                jobs=runtime.jobs,
                duration_s=duration_s,
                artifacts=self.artifacts or None,
            )
            if record_path is not None:
                self.logger.log("run_recorded", path=str(record_path))
        snapshot = runtime.snapshot()
        self.logger.log(
            "run_end",
            command=self.command,
            duration_s=round(duration_s, 6),
            tasks_run=snapshot.counter("tasks_run"),
            frames_simulated=snapshot.counter("frames_simulated"),
            cache_hits=snapshot.counter("cache_hits"),
            cache_misses=snapshot.counter("cache_misses"),
            stage_time_s=round(snapshot.stage_time_s, 6),
        )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "3D workload subsetting for GPU architecture pathfinding "
            "(IISWC 2015 reproduction)"
        ),
    )
    parser.add_argument(
        "--version",
        action=_VersionAction,
        help="print version, git provenance, and python version",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic game trace")
    gen.add_argument("--game", choices=BIOSHOCK_SERIES, default=BIOSHOCK_SERIES[0])
    gen.add_argument("--frames", type=int, default=None)
    gen.add_argument("--seed", type=int, default=datasets.DEFAULT_SEED)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("-o", "--output", required=True)

    info = sub.add_parser("info", help="print statistics of a trace file")
    info.add_argument("trace")

    sim = sub.add_parser("simulate", help="simulate a trace on a GPU preset")
    sim.add_argument("trace")
    sim.add_argument(
        "--preset", choices=GpuConfig.preset_names(), default="mainstream"
    )
    _add_runtime_flags(sim)

    subset = sub.add_parser(
        "subset", help="run the full subsetting methodology on a trace"
    )
    subset.add_argument("trace")
    subset.add_argument(
        "--preset", choices=GpuConfig.preset_names(), default="mainstream"
    )
    subset.add_argument("--radius", type=float, default=DEFAULT_RADIUS)
    subset.add_argument(
        "--interval-length", type=int, default=DEFAULT_INTERVAL_LENGTH
    )
    subset.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    subset.add_argument(
        "--save-subset", default=None, help="write the subset trace here"
    )
    subset.add_argument(
        "--save-def",
        default=None,
        help="write the subset definition (positions + weights) as JSON",
    )
    _add_runtime_flags(subset)

    sweep = sub.add_parser(
        "sweep", help="pathfinding sweep: parent vs subset over candidates"
    )
    sweep.add_argument("trace")
    sweep.add_argument(
        "--preset", choices=GpuConfig.preset_names(), default="mainstream"
    )
    _add_runtime_flags(sweep)

    estimate = sub.add_parser(
        "estimate",
        help="estimate a parent's time from a saved subset definition",
    )
    estimate.add_argument("trace", help="the parent trace file")
    estimate.add_argument("subset", help="subset JSON from 'subset --save-def'")
    estimate.add_argument(
        "--preset", choices=GpuConfig.preset_names(), default="mainstream"
    )
    _add_runtime_flags(estimate)

    characterize = sub.add_parser(
        "characterize",
        help="profile a trace: pass/bottleneck/traffic breakdown",
    )
    characterize.add_argument("trace")
    characterize.add_argument(
        "--preset", choices=GpuConfig.preset_names(), default="mainstream"
    )

    validate = sub.add_parser(
        "validate",
        help="run the full trust checklist on a saved subset definition",
    )
    validate.add_argument("trace", help="the parent trace file")
    validate.add_argument("subset", help="subset JSON from 'subset --save-def'")
    validate.add_argument(
        "--preset", choices=GpuConfig.preset_names(), default="mainstream"
    )
    _add_runtime_flags(validate)

    exp = sub.add_parser("experiment", help="run a canned experiment (E1-E9)")
    exp.add_argument("id", choices=EXPERIMENT_RUNNERS)
    exp.add_argument(
        "--full-scale",
        action="store_true",
        help="use the paper-scale corpus (717 frames / ~828K draws)",
    )
    exp.add_argument("--seed", type=int, default=datasets.DEFAULT_SEED)
    _add_runtime_flags(exp)

    check = sub.add_parser(
        "check",
        help="static analysis: determinism, cache-safety, and import hygiene",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze (default: src/repro)",
    )
    check.add_argument(
        "--format",
        choices=["text", "json", "github", "sarif"],
        default="text",
        help="finding output format (default: text)",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json",
    )
    check.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the rendered findings to FILE instead of stdout",
    )
    check.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted findings (default: nearest "
            ".repro-baseline.json walking up from the cwd)"
        ),
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    check.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    check.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    check.add_argument(
        "--load-rules",
        action="append",
        default=[],
        metavar="MODULE",
        help="import a plugin module so its @rule registrations apply",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    check.add_argument(
        "--changed",
        action="store_true",
        help=(
            "analyze only files git reports as changed against the "
            "diff base (tracked modifications plus untracked files)"
        ),
    )
    check.add_argument(
        "--diff-base",
        default=None,
        metavar="REV",
        help="base rev for --changed (default: origin/main)",
    )
    check.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file without entries that no longer "
            "match any finding"
        ),
    )
    check.add_argument(
        "--no-incremental",
        action="store_true",
        help=(
            "disable the content-addressed cache under "
            ".repro/checks-cache/ and re-analyze every file"
        ),
    )
    check.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="incremental cache location (default: .repro/checks-cache)",
    )

    runs = sub.add_parser(
        "runs",
        help="query the append-only run-history store (.repro/runs)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _add_store_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=None,
            metavar="DIR",
            help=(
                "run-store directory (default: $REPRO_RUN_STORE or "
                ".repro/runs)"
            ),
        )

    runs_list = runs_sub.add_parser("list", help="list stored run records")
    _add_store_flag(runs_list)
    runs_list.add_argument(
        "--command", dest="command_filter", default=None,
        help="only runs of this command"
    )
    runs_list.add_argument(
        "--limit", type=int, default=20, help="newest N records (default 20)"
    )
    runs_list.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help=(
            "json emits the same payload as the dashboard's "
            "GET /v1/dash/runs (default: text)"
        ),
    )

    runs_show = runs_sub.add_parser(
        "show", help="print one run record as JSON"
    )
    _add_store_flag(runs_show)
    runs_show.add_argument(
        "ref", help="run id prefix, or a negative index (-1 = newest)"
    )
    runs_show.add_argument(
        "--artifacts",
        action="store_true",
        help=(
            "also list the run's artifact sidecar sections "
            "(clusterings, fidelity, subset) if it has one"
        ),
    )

    runs_diff = runs_sub.add_parser(
        "diff", help="metric-by-metric delta between two run records"
    )
    _add_store_flag(runs_diff)
    runs_diff.add_argument("ref_a", help="baseline run (id prefix or index)")
    runs_diff.add_argument("ref_b", help="candidate run (id prefix or index)")

    regress = runs_sub.add_parser(
        "regress",
        help=(
            "gate the newest run against a baseline window "
            "(median threshold + Mann-Whitney noise check)"
        ),
    )
    _add_store_flag(regress)
    regress.add_argument(
        "--command",
        dest="command_filter",
        default=None,
        help="gate runs of this command (default: the newest run's command)",
    )
    regress.add_argument(
        "--window", type=int, default=5,
        help="baseline window: the N runs before the current one (default 5)",
    )
    regress.add_argument(
        "--current-window", type=int, default=1,
        help=(
            "treat the newest N runs as the current sample (>=3 upgrades "
            "the noise prong to a Mann-Whitney U test; default 1)"
        ),
    )
    regress.add_argument(
        "--threshold", type=float, default=None,
        help="relative threshold vs the baseline median (default 0.2)",
    )
    regress.add_argument(
        "--alpha", type=float, default=None,
        help="Mann-Whitney significance level (default 0.05)",
    )
    regress.add_argument(
        "--min-baseline", type=int, default=None,
        help="fewest baseline samples a series needs to be gated (default 3)",
    )
    regress.add_argument(
        "--select",
        default=None,
        metavar="GLOBS",
        help=(
            "comma-separated series globs to gate, e.g. "
            "'stage:*,counter:*' (default: every gated series)"
        ),
    )
    regress.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help="output format (default: text)",
    )
    regress.add_argument(
        "--verbose",
        action="store_true",
        help="text format: show passing series too, not just regressions",
    )

    trace_cmd = sub.add_parser(
        "trace", help="analyze exported execution traces"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report",
        help="self-time/total-time hotspot table from a span JSONL export",
    )
    trace_report.add_argument("spans", help="span JSONL file (--trace-out *.jsonl)")
    trace_report.add_argument(
        "--sort", choices=["self", "total"], default="self",
        help="hotspot ordering (default: self time)",
    )
    trace_report.add_argument(
        "--limit", type=int, default=30,
        help="show the top N span names (default 30; 0 = all)",
    )
    trace_report.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help=(
            "json emits the same payload as the dashboard's "
            "GET /v1/dash/runs/{ref}/spans (default: text)"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help="run the subsetting service (job queue + HTTP API)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT)
    serve.add_argument(
        "--workers", type=int, default=1,
        help="jobs executing concurrently (default 1)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None,
        help="max queued jobs before submissions get 429 (default 64)",
    )
    serve.add_argument(
        "--sim-jobs", type=_jobs_arg, default=1,
        help="worker processes per job's simulations (count or 'auto')",
    )
    serve.add_argument(
        "--job-dir", default=None,
        help="persistent job store directory (default: .repro/jobs)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help=(
            "artifact cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)"
        ),
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the artifact cache (identical jobs re-simulate)",
    )
    serve.add_argument(
        "--run-store", default=None, metavar="DIR",
        help=(
            "run-history store for per-job records (default: "
            "$REPRO_RUN_STORE or .repro/runs)"
        ),
    )
    serve.add_argument(
        "--no-dash", action="store_true",
        help="do not mount the /dash UI and /v1/dash data routes",
    )

    dash = sub.add_parser(
        "dash",
        help=(
            "serve the exploration dashboard over a run store "
            "(read-only; no job executor is started)"
        ),
    )
    dash.add_argument("--host", default="127.0.0.1")
    dash.add_argument("--port", type=int, default=DEFAULT_DASH_PORT)
    dash.add_argument(
        "--store", default=None, metavar="DIR",
        help=(
            "run-store directory to browse (default: $REPRO_RUN_STORE or "
            ".repro/runs)"
        ),
    )
    dash.add_argument(
        "--job-dir", default=None, metavar="DIR",
        help=(
            "job store to show on /v1/dash/jobs (default: .repro/jobs "
            "when present; reads only)"
        ),
    )
    dash.add_argument(
        "--bench-root", default=".", metavar="DIR",
        help="directory holding committed BENCH_*.json files (default: .)",
    )
    dash.add_argument(
        "--data-only", action="store_true",
        help="serve only the /v1/dash JSON API, not the HTML UI",
    )
    dash.add_argument(
        "--open", action="store_true", dest="open_browser",
        help="open the dashboard in the default browser",
    )

    jobs = sub.add_parser(
        "jobs", help="client for a running subsetting service"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    def _add_url_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url", default=DEFAULT_SERVICE_URL,
            help=f"service base URL (default {DEFAULT_SERVICE_URL})",
        )

    jobs_submit = jobs_sub.add_parser("submit", help="submit one job")
    _add_url_flag(jobs_submit)
    jobs_submit.add_argument(
        "--kind", choices=["simulate", "subset", "sweep"], default="subset"
    )
    source = jobs_submit.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--trace", default=None,
        help="path to a trace file (must be readable by the server)",
    )
    source.add_argument(
        "--generate", default=None, metavar="GAME",
        choices=BIOSHOCK_SERIES,
        help="have the server generate a synthetic trace of this game",
    )
    jobs_submit.add_argument("--frames", type=int, default=None)
    jobs_submit.add_argument("--seed", type=int, default=None)
    jobs_submit.add_argument("--scale", type=float, default=None)
    jobs_submit.add_argument(
        "--preset", choices=GpuConfig.preset_names(), default="mainstream"
    )
    jobs_submit.add_argument(
        "--override", action="append", default=[], metavar="FIELD=VALUE",
        help="GpuConfig field override (repeatable), e.g. tex_cache_kb=256",
    )
    jobs_submit.add_argument("--radius", type=float, default=None)
    jobs_submit.add_argument("--interval-length", type=int, default=None)
    jobs_submit.add_argument("--tolerance", type=float, default=None)
    jobs_submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print its result",
    )
    jobs_submit.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait limit in seconds (default 600)",
    )

    jobs_status = jobs_sub.add_parser("status", help="one job's status")
    _add_url_flag(jobs_status)
    jobs_status.add_argument("job_id")

    jobs_result = jobs_sub.add_parser(
        "result", help="a finished job's result payload as JSON"
    )
    _add_url_flag(jobs_result)
    jobs_result.add_argument("job_id")

    jobs_list = jobs_sub.add_parser("list", help="list jobs on the server")
    _add_url_flag(jobs_list)
    jobs_list.add_argument("--state", default=None)
    jobs_list.add_argument("--kind", default=None)
    jobs_list.add_argument(
        "--limit", type=int, default=20, help="newest N jobs (default 20)"
    )

    jobs_cancel = jobs_sub.add_parser("cancel", help="cancel a queued job")
    _add_url_flag(jobs_cancel)
    jobs_cancel.add_argument("job_id")
    return parser


def _corpus(args) -> dict:
    if args.full_scale:
        return datasets.paper_corpus(seed=args.seed)
    return datasets.bench_corpus(seed=args.seed)


def _cmd_generate(args) -> int:
    trace = generate_trace(
        args.game, num_frames=args.frames, seed=args.seed, scale=args.scale
    )
    save_trace(trace, args.output)
    stats = trace.stats()
    print(
        f"wrote {args.output}: {stats.num_frames} frames, "
        f"{stats.num_draws} draws, {stats.num_shaders} shaders"
    )
    return 0


def _cmd_info(args) -> int:
    trace = load_trace(args.trace)
    stats = trace.stats()
    rows = [[key, value] for key, value in stats.as_dict().items()]
    print(format_table(["stat", "value"], rows, title=trace.name))
    return 0


def _cmd_simulate(args) -> int:
    trace = load_trace(args.trace)
    config = GpuConfig.preset(args.preset)
    session = _ObsSession(args, "simulate")
    session.configs[config.name] = config
    session.traces[trace.name] = trace
    runtime = session.runtime
    result = runtime.simulate_trace(trace, config)
    print(
        f"{trace.name} on {config.name}: total {result.total_time_ms:.2f} ms, "
        f"mean {result.mean_fps:.1f} fps over {trace.num_frames} frames"
    )
    print(runtime.snapshot().summary_line())
    session.finish()
    return 0


def _cmd_subset(args) -> int:
    trace = load_trace(args.trace)
    config = GpuConfig.preset(args.preset)
    pipeline = SubsettingPipeline(
        radius=args.radius,
        interval_length=args.interval_length,
        phase_tolerance=args.tolerance,
    )
    session = _ObsSession(args, "subset")
    session.configs[config.name] = config
    session.traces[trace.name] = trace
    session.seeds["pipeline"] = pipeline.seed
    result = pipeline.run(
        trace, config, keep_clusterings=True, runtime=session.runtime
    )
    print(result.report())
    from repro.obs.artifacts import pipeline_artifact_sections

    session.artifacts = pipeline_artifact_sections(result, trace)
    if args.save_subset:
        subset_trace = result.subset.materialize(trace)
        save_trace(subset_trace, args.save_subset)
        print(f"subset trace written to {args.save_subset}")
    if args.save_def:
        from repro.core.subsetio import save_subset as save_subset_def

        save_subset_def(result.subset, args.save_def)
        print(f"subset definition written to {args.save_def}")
    session.finish()
    return 0


def _cmd_estimate(args) -> int:
    from repro.core.subsetio import check_subset_against, load_subset

    trace = load_trace(args.trace)
    subset = load_subset(args.subset)
    check_subset_against(subset, trace)
    config = GpuConfig.preset(args.preset)
    session = _ObsSession(args, "estimate")
    session.configs[config.name] = config
    session.traces[trace.name] = trace
    runtime = session.runtime
    subset_trace = subset.materialize(trace)
    estimate_ns = subset.estimate_total_time_ns(
        [
            out.time_ns
            for out in runtime.simulate_frames(
                subset_trace, config, label="estimate.subset"
            )
        ]
    )
    actual_ns = runtime.total_time_ns(trace, config, label="estimate.parent")
    error = abs(estimate_ns - actual_ns) / actual_ns
    print(
        f"{trace.name} on {config.name}: subset estimate "
        f"{estimate_ns / 1e6:.2f} ms vs full {actual_ns / 1e6:.2f} ms "
        f"({100 * error:.2f}% error, {subset.num_frames}/{trace.num_frames} "
        "frames simulated)"
    )
    print(runtime.snapshot().summary_line())
    session.finish()
    return 0


def _cmd_characterize(args) -> int:
    from repro.analysis.characterize import characterize_trace

    trace = load_trace(args.trace)
    config = GpuConfig.preset(args.preset)
    print(characterize_trace(trace, config).report())
    return 0


def _cmd_validate(args) -> int:
    from repro.analysis.validation import validate_subset
    from repro.core.subsetio import check_subset_against, load_subset

    trace = load_trace(args.trace)
    subset = load_subset(args.subset)
    check_subset_against(subset, trace)
    config = GpuConfig.preset(args.preset)
    session = _ObsSession(args, "validate")
    session.configs[config.name] = config
    session.traces[trace.name] = trace
    runtime = session.runtime
    validation = validate_subset(trace, subset, config, runtime=runtime)
    print(validation.report())
    print(runtime.snapshot().summary_line())
    session.finish()
    return 0 if validation.passed else 2


def _cmd_sweep(args) -> int:
    from repro.analysis.sweep import pathfinding_sweep

    trace = load_trace(args.trace)
    subset = build_subset(trace)
    session = _ObsSession(args, "sweep")
    session.traces[trace.name] = trace
    runtime = session.runtime
    result = pathfinding_sweep(trace, subset, runtime=runtime)
    rows = [
        [name, parent / 1e6, estimate / 1e6]
        for name, parent, estimate in zip(
            result.config_names,
            result.parent_times_ns,
            result.subset_estimated_times_ns,
        )
    ]
    print(
        format_table(
            ["config", "parent ms", "subset-estimated ms"],
            rows,
            title=f"Pathfinding sweep on {trace.name}",
        )
    )
    print(f"ranking agreement (spearman): {result.ranking_agreement:.4f}")
    print(f"winner agrees: {result.winner_agrees()}")
    print(runtime.snapshot().summary_line())
    from repro.obs.artifacts import sweep_artifact_sections

    session.artifacts = sweep_artifact_sections(result)
    session.finish()
    return 0


def _cmd_experiment(args) -> int:
    config = GpuConfig.preset("mainstream")
    experiment_id = args.id
    session = _ObsSession(args, f"experiment:{experiment_id}")
    session.configs[config.name] = config
    session.seeds["corpus"] = args.seed
    runtime = session.runtime
    if experiment_id in ("e1", "e2", "e4", "e6", "e9", "e10"):
        traces = _corpus(args)
        session.traces.update(traces)
        runner = {
            "e1": lambda: experiments.e1_clustering_accuracy(
                traces, config, runtime=runtime
            ),
            "e2": lambda: experiments.e2_cluster_outliers(
                traces, config, runtime=runtime
            ),
            "e4": lambda: experiments.e4_phase_detection(traces),
            "e6": lambda: experiments.e6_frequency_correlation(
                traces, config, runtime=runtime
            ),
            "e9": lambda: experiments.e9_cross_architecture_transfer(traces),
            "e10": lambda: experiments.e10_phase_signal_stability(traces),
        }[experiment_id]
        print(runner().render())
        print(runtime.snapshot().summary_line())
        session.finish()
        return 0
    if experiment_id == "e5":
        print(experiments.e5_subset_size("bioshock1_like", config).render())
        session.finish()
        return 0
    # single-game experiments
    scale = 1.0 if args.full_scale else datasets.CI_SCALE
    frames = (
        datasets.PAPER_FRAMES_PER_GAME
        if args.full_scale
        else datasets.CI_FRAMES_PER_GAME
    )
    trace = datasets.load(
        "bioshock2_like", frames=frames, seed=args.seed, scale=scale
    )
    session.traces[trace.name] = trace
    runner = {
        "e3": lambda: experiments.e3_error_efficiency_tradeoff(trace, config),
        "e7": lambda: experiments.e7_ablations(trace, config),
        "e8": lambda: experiments.e8_baselines(trace, config),
    }[experiment_id]
    print(runner().render())
    session.finish()
    return 0


def _cmd_check(args) -> int:
    from repro.checks import baseline as baseline_mod
    from repro.checks import cache as cache_mod
    from repro.checks import reporting
    from repro.checks.changed import DEFAULT_DIFF_BASE, restrict_to_changed
    from repro.checks.engine import collect_files, run_checks
    from repro.checks.registry import all_rules, load_plugin, select_rules

    if args.list_rules:
        rows = [
            [rule.rule_id, rule.name, rule.severity, rule.scope]
            for rule in all_rules()
        ]
        print(format_table(["rule", "name", "severity", "scope"], rows,
                           title="repro check rule catalog"))
        return 0

    paths = args.paths or ["src/repro"]
    select = args.select.split(",") if args.select else None

    cache = None
    if not args.no_incremental:
        # The cache key needs the resolved rule ids, so plugins load
        # here (run_checks re-loading them is an idempotent import).
        for plugin in args.load_rules:
            load_plugin(plugin)
        rule_ids = [r.rule_id for r in select_rules(select or ())]
        cache_root = Path(args.cache_dir) if args.cache_dir else None
        cache = cache_mod.open_cache(rule_ids, root=cache_root)

    check_paths: Sequence[object] = paths
    if args.changed:
        base = args.diff_base or DEFAULT_DIFF_BASE
        files = collect_files([Path(p) for p in paths])
        check_paths = restrict_to_changed(files, base)
    report = run_checks(
        check_paths, select=select, plugins=args.load_rules, cache=cache
    )

    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is None and not args.no_baseline:
        baseline_path = baseline_mod.find_default()
    if args.write_baseline:
        target = baseline_path or Path(baseline_mod.DEFAULT_BASELINE_NAME)
        baseline_mod.write(report.findings, target)
        print(
            f"baseline written to {target} "
            f"({len(report.findings)} accepted finding(s))"
        )
        return 0

    entries = []
    if baseline_path is not None and not args.no_baseline:
        entries = baseline_mod.load(baseline_path)
    applied = baseline_mod.apply(report.findings, entries)

    if args.prune_baseline:
        if baseline_path is None:
            raise CheckError(
                "--prune-baseline needs a baseline file "
                "(none given and none found walking up from the cwd)"
            )
        kept = baseline_mod.prune(entries, applied.stale_entries)
        baseline_mod.write_entries(kept, baseline_path)
        pruned = len(applied.stale_entries)
        print(
            f"pruned {pruned} stale entr{'y' if pruned == 1 else 'ies'} "
            f"from {baseline_path} ({len(kept)} kept)"
        )

    fmt = "json" if args.json else args.format
    summary = reporting.summarize(
        applied.new_findings,
        files_scanned=report.files_scanned,
        noqa_suppressed=report.noqa_suppressed,
        baselined=len(applied.baselined),
        files_analyzed=report.files_analyzed,
        files_cached=report.files_cached,
    )
    output = reporting.render(fmt, applied.new_findings, summary)
    if args.output:
        Path(args.output).write_text(output + "\n", encoding="utf-8")
        print(f"wrote {fmt} findings to {args.output}")
    elif output:
        print(output)
    if fmt == "text" and applied.stale_entries and not args.prune_baseline:
        print(
            f"note: {len(applied.stale_entries)} stale baseline entr"
            f"{'y' if len(applied.stale_entries) == 1 else 'ies'} no longer "
            f"match anything — prune with --prune-baseline:"
        )
        for entry in applied.stale_entries:
            print(f"  stale: {entry['rule']} {entry['path']}: "
                  f"{entry['message']}")
    return 1 if applied.new_findings else 0


def _cmd_runs(args) -> int:
    import json as _json

    from repro.obs.analyze import (
        compare_to_baseline,
        diff_records,
        render_regressions,
    )
    from repro.obs.history import RunStore

    store = RunStore(args.store)

    if args.runs_command == "list":
        if getattr(args, "format", "text") == "json":
            from repro.obs.dash import runs_payload

            payload = runs_payload(
                store, command=args.command_filter, limit=args.limit
            )
            print(_json.dumps(payload, indent=2, sort_keys=True))
            return 0
        records = store.records(command=args.command_filter, limit=args.limit)
        if not records:
            print(f"no run records in {store.root}")
            return 0
        rows = []
        for record in records:
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S", time.localtime(record.created_unix)
            )
            rows.append(
                [
                    record.run_id,
                    record.command,
                    stamp,
                    (record.git_sha or "-")[:10],
                    record.jobs if record.jobs is not None else "-",
                    f"{record.metrics.get('derived:duration_s', 0.0):.2f}",
                ]
            )
        print(
            format_table(
                ["run", "command", "created", "git", "jobs", "dur s"],
                rows,
                title=f"run store {store.root} (oldest first)",
            )
        )
        return 0

    if args.runs_command == "show":
        record = store.resolve(args.ref)
        print(_json.dumps(record.to_dict(), indent=2, sort_keys=True))
        if getattr(args, "artifacts", False):
            from repro.errors import ValidationError

            try:
                index = store.artifact_index(record)
            except ValidationError as exc:
                print(f"artifacts: none ({exc})")
                return 0
            directory = store.artifacts_dir(record)
            print(f"artifacts: {directory}")
            for name, entry in sorted(index.get("sections", {}).items()):
                print(
                    f"  {name:<10} {entry['file']}  "
                    f"({entry['bytes']} bytes, sha256 {entry['sha256'][:16]})"
                )
        return 0

    if args.runs_command == "diff":
        record_a = store.resolve(args.ref_a)
        record_b = store.resolve(args.ref_b)
        rows = [
            [
                name,
                "-" if va is None else f"{va:.6g}",
                "-" if vb is None else f"{vb:.6g}",
                "-" if delta is None else f"{delta:+.1%}",
            ]
            for name, va, vb, delta in diff_records(record_a, record_b)
        ]
        print(
            format_table(
                ["series", record_a.run_id, record_b.run_id, "delta"],
                rows,
                title=f"run diff ({record_a.command} vs {record_b.command})",
            )
        )
        return 0

    # regress
    current_n = max(1, args.current_window)
    command = args.command_filter
    if command is None:
        newest = store.records(limit=1)
        if not newest:
            print(f"error: run store {store.root} is empty", file=sys.stderr)
            return 1
        command = newest[-1].command
    window = store.records(
        command=command, limit=args.window + current_n
    )
    if len(window) <= current_n:
        print(
            f"error: need more than {current_n} run(s) of {command!r} "
            f"to gate (have {len(window)})",
            file=sys.stderr,
        )
        return 1
    current = window[-current_n:]
    baseline = window[:-current_n]
    select = args.select.split(",") if args.select else None
    kwargs = {}
    if args.threshold is not None:
        kwargs["rel_threshold"] = args.threshold
    if args.alpha is not None:
        kwargs["alpha"] = args.alpha
    if args.min_baseline is not None:
        kwargs["min_baseline"] = args.min_baseline
    report = compare_to_baseline(current, baseline, select=select, **kwargs)
    output = render_regressions(args.format, report, verbose=args.verbose)
    if output:
        print(output)
    return 0 if report.passed else 1


def _cmd_trace(args) -> int:
    from repro.obs.analyze import load_spans_jsonl, render_rollup, rollup_spans

    if getattr(args, "format", "text") == "json":
        import json as _json

        from repro.obs.dash import spans_payload

        print(_json.dumps(spans_payload(args.spans), indent=2, sort_keys=True))
        return 0
    spans = load_spans_jsonl(args.spans)
    rollups = rollup_spans(spans)
    if not rollups:
        print(f"no spans in {args.spans}")
        return 0
    limit = args.limit if args.limit > 0 else None
    print(
        render_rollup(
            rollups,
            sort=args.sort,
            limit=limit,
            title=f"span hotspots — {args.spans} ({len(spans)} spans)",
        )
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.runtime.cache import default_cache_dir
    from repro.service.http import build_server

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    server, recovery = build_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        sim_jobs=args.sim_jobs,
        job_dir=args.job_dir,
        cache_dir=cache_dir,
        run_store=args.run_store,
        dashboard=not args.no_dash,
    )
    if recovery["requeued"]:
        print(f"recovered {len(recovery['requeued'])} interrupted job(s): "
              + ", ".join(recovery["requeued"]))
    if recovery["interrupted"]:
        print(f"gave up on {len(recovery['interrupted'])} repeat-crash job(s): "
              + ", ".join(recovery["interrupted"]))
    dash_note = "" if args.no_dash else f", dashboard at {server.url}/dash"
    print(
        f"repro service listening on {server.url} "
        f"(workers={args.workers}, sim_jobs={args.sim_jobs}, "
        f"job_dir={server.app.executor.store.root}{dash_note})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _cmd_dash(args) -> int:
    from repro.service.http import build_dash_server
    from repro.service.jobs import DEFAULT_JOB_DIR

    job_dir = args.job_dir
    if job_dir is None and Path(DEFAULT_JOB_DIR).is_dir():
        job_dir = DEFAULT_JOB_DIR
    server = build_dash_server(
        host=args.host,
        port=args.port,
        run_store=args.store,
        job_dir=job_dir,
        bench_root=args.bench_root,
        serve_ui=not args.data_only,
    )
    surface = "data API only" if args.data_only else f"UI at {server.url}/dash"
    print(
        f"repro dashboard listening on {server.url} ({surface}; "
        "read-only — no job executor)"
    )
    if args.open_browser and not args.data_only:
        import webbrowser

        webbrowser.open(f"{server.url}/dash")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _submit_payload(args) -> dict:
    """The ``POST /v1/jobs`` body the submit flags describe."""
    if args.trace is not None:
        trace: dict = {"path": args.trace}
    else:
        generate = {"game": args.generate}
        for key in ("frames", "seed", "scale"):
            value = getattr(args, key)
            if value is not None:
                generate[key] = value
        trace = {"generate": generate}
    overrides = {}
    for item in args.override:
        if "=" not in item:
            raise ReproError(
                f"--override expects FIELD=VALUE, got {item!r}"
            )
        name, raw = item.split("=", 1)
        import json as _json

        try:
            overrides[name] = _json.loads(raw)
        except _json.JSONDecodeError:
            overrides[name] = raw
    payload = {
        "kind": args.kind,
        "trace": trace,
        "config": {"preset": args.preset, "overrides": overrides},
    }
    params = {}
    for flag, field in (
        ("radius", "radius"),
        ("interval_length", "interval_length"),
        ("tolerance", "tolerance"),
    ):
        value = getattr(args, flag)
        if value is not None:
            params[field] = value
    if params:
        payload["params"] = params
    return payload


def _cmd_jobs(args) -> int:
    from repro.service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.url)
    try:
        return _run_jobs_command(client, args)
    except ServiceClientError as exc:
        if exc.field_errors:
            # Re-raise the server's 422 as the same structured error a
            # local validation failure produces, so main() renders one
            # line per field either way.
            from repro.util.validation import FieldError, FieldValidationError

            raise FieldValidationError([
                FieldError(e["field_path"], e["message"])
                for e in exc.field_errors
            ]) from None
        raise


def _run_jobs_command(client, args) -> int:
    import json as _json

    if args.jobs_command == "submit":
        status = client.submit(_submit_payload(args))
        coalesced = status.get("coalesced_with")
        note = f" (coalesced with {coalesced})" if coalesced else ""
        print(f"job {status['job_id']} {status['state']}{note}")
        if not args.wait:
            return 0
        job_id = status["job_id"]
        final = client.wait(job_id, timeout_s=args.timeout)
        print(f"job {job_id} {final['state']}")
        if final["state"] != "succeeded":
            if final.get("error"):
                print(f"error: {final['error']}", file=sys.stderr)
            return 2
        print(_json.dumps(client.result(job_id), indent=2, sort_keys=True))
        return 0
    if args.jobs_command == "status":
        print(_json.dumps(client.status(args.job_id), indent=2, sort_keys=True))
        return 0
    if args.jobs_command == "result":
        print(_json.dumps(client.result(args.job_id), indent=2, sort_keys=True))
        return 0
    if args.jobs_command == "cancel":
        status = client.cancel(args.job_id)
        print(f"job {status['job_id']} {status['state']}")
        return 0
    # list
    jobs = client.list_jobs(
        state=args.state, kind=args.kind, limit=args.limit
    )
    if not jobs:
        print("no jobs")
        return 0
    rows = []
    for job in jobs:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(job["created_unix"])
        )
        rows.append([
            job["job_id"],
            job["kind"],
            job["state"],
            stamp,
            job.get("coalesced_with") or "-",
        ])
    print(format_table(
        ["job", "kind", "state", "created", "coalesced"],
        rows,
        title=f"jobs at {args.url} (oldest first)",
    ))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "simulate": _cmd_simulate,
    "subset": _cmd_subset,
    "sweep": _cmd_sweep,
    "estimate": _cmd_estimate,
    "validate": _cmd_validate,
    "characterize": _cmd_characterize,
    "experiment": _cmd_experiment,
    "check": _cmd_check,
    "runs": _cmd_runs,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "dash": _cmd_dash,
    "jobs": _cmd_jobs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.util.validation import FieldValidationError

    try:
        return _COMMANDS[args.command](args)
    except FieldValidationError as exc:
        print("error: validation failed", file=sys.stderr)
        for entry in exc.errors:
            print(f"  {entry.field_path}: {entry.message}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
