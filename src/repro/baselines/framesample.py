"""Periodic frame sampling — the classic workload-reduction baseline."""

from __future__ import annotations

from repro.core.subsetting import WorkloadSubset
from repro.errors import SubsetError
from repro.gfx.trace import Trace


def every_nth_frame_subset(trace: Trace, stride: int) -> WorkloadSubset:
    """Keep frames 0, stride, 2*stride, ...; each stands for its window.

    The last kept frame's weight covers the (possibly shorter) tail so the
    weights sum to the parent's frame count.
    """
    if stride < 1:
        raise SubsetError(f"stride must be >= 1, got {stride}")
    positions = list(range(0, trace.num_frames, stride))
    weights = []
    for i, position in enumerate(positions):
        window_end = positions[i + 1] if i + 1 < len(positions) else trace.num_frames
        weights.append(float(window_end - position))
    subset_draws = sum(trace.frames[p].num_draws for p in positions)
    return WorkloadSubset(
        parent_name=trace.name,
        detection=None,
        frame_positions=tuple(positions),
        frame_weights=tuple(weights),
        parent_num_frames=trace.num_frames,
        parent_num_draws=trace.num_draws,
        subset_num_draws=subset_draws,
        method=f"every_{stride}th_frame",
    )
