"""Draw-level sampling baselines.

Each returns a :class:`DrawSample` — kept draw indices and per-draw
weights — at a caller-chosen budget, so comparisons against clustering
(E8) hold the number of simulated draws equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import SubsetError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class DrawSample:
    """Kept draw indices and the weight each carries in prediction."""

    indices: Tuple[int, ...]
    weights: Tuple[float, ...]
    method: str

    @property
    def budget(self) -> int:
        return len(self.indices)

    def predict_time_ns(self, draw_times_ns: Sequence[float]) -> float:
        """Weighted estimate of the frame time from sampled draw times.

        ``draw_times_ns`` are the times of *all* the frame's draws; only
        the sampled indices are read (a deployment would simulate only
        those).
        """
        times = np.asarray(draw_times_ns, dtype=float)
        picked = times[np.array(self.indices, dtype=int)]
        return float(picked @ np.asarray(self.weights))


def _check_budget(num_draws: int, budget: int) -> None:
    if num_draws <= 0:
        raise SubsetError(f"num_draws must be > 0, got {num_draws}")
    if not 1 <= budget <= num_draws:
        raise SubsetError(
            f"budget must be in [1, {num_draws}], got {budget}"
        )


def random_draw_sample(num_draws: int, budget: int, seed: int = 0) -> DrawSample:
    """Uniform random sample; every kept draw stands for n/budget draws."""
    _check_budget(num_draws, budget)
    rng = make_rng(seed, "random-draws", num_draws, budget)
    indices = np.sort(rng.choice(num_draws, size=budget, replace=False))
    weight = num_draws / budget
    return DrawSample(
        indices=tuple(int(i) for i in indices),
        weights=(weight,) * budget,
        method="random",
    )


def systematic_draw_sample(num_draws: int, budget: int) -> DrawSample:
    """Every-Nth sampling with even coverage of the frame."""
    _check_budget(num_draws, budget)
    positions = np.floor(np.arange(budget) * num_draws / budget).astype(int)
    weight = num_draws / budget
    return DrawSample(
        indices=tuple(int(i) for i in positions),
        weights=(weight,) * budget,
        method="systematic",
    )


def first_n_draw_sample(num_draws: int, budget: int) -> DrawSample:
    """Keep the first ``budget`` draws — the naive truncation baseline."""
    _check_budget(num_draws, budget)
    weight = num_draws / budget
    return DrawSample(
        indices=tuple(range(budget)),
        weights=(weight,) * budget,
        method="first_n",
    )
