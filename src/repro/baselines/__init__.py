"""Baseline subsetting strategies the paper's methodology is compared to.

Draw-level baselines (compete with per-frame clustering, E8):

- :func:`random_draw_sample` — uniform random draws, scaled up.
- :func:`systematic_draw_sample` — every-Nth draw.
- :func:`first_n_draw_sample` — the first N draws of the frame.

Frame-level baselines (compete with phase subsetting, E8/E6):

- :func:`every_nth_frame_subset` — periodic frame sampling.
- :func:`simpoint_frames_subset` — a SimPoint analog: k-means over
  frame-granularity shader vectors, keep each cluster's medoid frame.
"""

from repro.baselines.draw_sampling import (
    DrawSample,
    first_n_draw_sample,
    random_draw_sample,
    systematic_draw_sample,
)
from repro.baselines.framesample import every_nth_frame_subset
from repro.baselines.simpoint_like import simpoint_frames_subset

__all__ = [
    "DrawSample",
    "random_draw_sample",
    "systematic_draw_sample",
    "first_n_draw_sample",
    "every_nth_frame_subset",
    "simpoint_frames_subset",
]
