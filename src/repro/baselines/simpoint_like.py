"""A SimPoint analog at frame granularity.

SimPoint clusters instruction-stream intervals on basic-block vectors
with BIC-selected k-means and keeps each cluster's medoid.  The natural
transplant to 3D workloads treats each frame as an interval and its
shader vector (draw counts per shader) as the BBV.  This is the closest
prior-art baseline to the paper's phase-equality method.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.distance import euclidean_to_point
from repro.core.kselect import select_k_bic
from repro.core.shadervector import shader_vector
from repro.core.subsetting import WorkloadSubset
from repro.errors import SubsetError
from repro.gfx.trace import Trace


def frame_shader_matrix(trace: Trace) -> np.ndarray:
    """(num_frames, num_shaders) matrix of per-frame shader draw counts."""
    shader_ids = sorted(trace.shaders)
    column = {sid: j for j, sid in enumerate(shader_ids)}
    matrix = np.zeros((trace.num_frames, len(shader_ids)))
    for i, frame in enumerate(trace.frames):
        for sid, count in shader_vector([frame]).items():
            matrix[i, column[sid]] = count
    return matrix


def simpoint_frames_subset(
    trace: Trace,
    k_candidates: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> WorkloadSubset:
    """Cluster frames on shader vectors, keep each cluster's medoid frame."""
    matrix = frame_shader_matrix(trace)
    n = trace.num_frames
    if n < 2:
        raise SubsetError("SimPoint-style subsetting needs at least two frames")
    if k_candidates is None:
        k_candidates = [k for k in (1, 2, 4, 8, 16, 32) if k <= n]
    # Normalize rows so frame 'size' doesn't dominate shape (SimPoint
    # normalizes BBVs the same way).
    row_sums = matrix.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    normalized = matrix / row_sums
    selection = select_k_bic(normalized, k_candidates, seed=seed)
    labels = selection.result.labels

    positions = []
    weights = []
    for cluster in range(selection.k):
        member_rows = np.nonzero(labels == cluster)[0]
        if member_rows.size == 0:
            continue
        centroid = normalized[member_rows].mean(axis=0)
        dists = euclidean_to_point(normalized[member_rows], centroid)
        medoid = int(member_rows[int(np.argmin(dists))])
        positions.append(medoid)
        weights.append(float(member_rows.size))
    order = np.argsort(positions)
    positions = [positions[i] for i in order]
    weights = [weights[i] for i in order]

    subset_draws = sum(trace.frames[p].num_draws for p in positions)
    return WorkloadSubset(
        parent_name=trace.name,
        detection=None,
        frame_positions=tuple(positions),
        frame_weights=tuple(weights),
        parent_num_frames=n,
        parent_num_draws=trace.num_draws,
        subset_num_draws=subset_draws,
        method="simpoint_frames",
    )
