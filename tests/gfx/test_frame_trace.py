"""Tests for Frame, RenderPass, Trace and TraceStats."""

import pytest

from repro.errors import ValidationError
from repro.gfx.enums import PassType
from repro.gfx.frame import Frame, RenderPass, frame_from_draws
from repro.gfx.trace import Trace

from tests.conftest import make_draw, make_world


class TestFrame:
    def test_draw_iteration_order(self):
        d1 = make_draw(shader_id=1)
        d2 = make_draw(shader_id=2)
        d3 = make_draw(shader_id=3)
        frame = Frame(
            index=0,
            passes=(
                RenderPass(PassType.GBUFFER, (d1, d2)),
                RenderPass(PassType.POST, (d3,)),
            ),
        )
        assert frame.shader_ids == (1, 2, 3)
        assert frame.num_draws == 3

    def test_pass_of_type(self):
        frame = Frame(
            index=0,
            passes=(
                RenderPass(PassType.SHADOW, (make_draw(),)),
                RenderPass(PassType.SHADOW, (make_draw(),)),
                RenderPass(PassType.POST, (make_draw(),)),
            ),
        )
        assert len(frame.pass_of_type(PassType.SHADOW)) == 2
        assert frame.pass_of_type(PassType.UI) == ()

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            Frame(index=-1, passes=())

    def test_frame_from_draws_empty_rejected(self):
        with pytest.raises(ValidationError):
            frame_from_draws(0, [])

    def test_bad_pass_type_rejected(self):
        with pytest.raises(ValidationError, match="RenderPass"):
            Frame(index=0, passes=("not a pass",))  # type: ignore[arg-type]


class TestTrace:
    def test_stats(self, simple_trace):
        stats = simple_trace.stats()
        assert stats.num_frames == 3
        assert stats.num_draws == 3 * 13
        assert stats.draws_per_frame_mean == pytest.approx(13.0)
        assert stats.num_shaders == 3

    def test_lookup_helpers(self, simple_trace):
        shader = simple_trace.shader(1)
        assert shader.shader_id == 1
        with pytest.raises(ValidationError, match="unknown shader_id"):
            simple_trace.shader(999)
        with pytest.raises(ValidationError, match="unknown texture_id"):
            simple_trace.texture(999)

    def test_empty_frames_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            Trace(name="x", frames=(), shaders={})

    def test_mismatched_shader_key_rejected(self, simple_trace):
        shaders = dict(simple_trace.shaders)
        shader = shaders.pop(1)
        shaders[99] = shader  # key != shader.shader_id
        with pytest.raises(ValidationError, match="shader table key"):
            Trace(name="x", frames=simple_trace.frames, shaders=shaders)

    def test_draws_iterates_all(self, simple_trace):
        assert sum(1 for _ in simple_trace.draws()) == simple_trace.num_draws


class TestSubsetFrames:
    def test_subset_preserves_frame_identity(self, simple_trace):
        subset = simple_trace.subset_frames([2, 0])
        assert subset.num_frames == 2
        assert subset.frames[0].index == 2  # original index kept
        assert subset.frames[1].index == 0
        assert subset.metadata["parent"] == simple_trace.name

    def test_subset_shares_tables(self, simple_trace):
        subset = simple_trace.subset_frames([1])
        assert subset.shaders.keys() == simple_trace.shaders.keys()

    def test_out_of_range_rejected(self, simple_trace):
        with pytest.raises(ValidationError, match="out of range"):
            simple_trace.subset_frames([5])

    def test_empty_rejected(self, simple_trace):
        with pytest.raises(ValidationError, match="non-empty"):
            simple_trace.subset_frames([])

    def test_make_world_helper(self):
        trace = make_world([[make_draw()], [make_draw(), make_draw()]])
        assert trace.num_frames == 2
        assert trace.num_draws == 3
