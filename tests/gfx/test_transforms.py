"""Tests for workload what-if transformations."""

import pytest

from repro.errors import ValidationError
from repro.gfx.enums import PassType
from repro.gfx.transforms import filter_passes, scale_resolution, sort_passes_by_material
from repro.gfx.validate import validate_trace
from repro.simgpu.batch import simulate_trace_batch
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


@pytest.fixture(scope="module")
def game_trace():
    profile = GameProfile.preset("bioshock1_like").scaled(0.08)
    from repro.synth.phasescript import PhaseScript, Segment, SegmentKind

    script = PhaseScript((Segment(SegmentKind.EXPLORE, 0, 6),))
    return TraceGenerator(profile, seed=8).generate(script=script)


class TestScaleResolution:
    def test_result_validates(self, game_trace):
        validate_trace(scale_resolution(game_trace, 1.5))

    def test_pixels_scale_quadratically(self, game_trace):
        scaled = scale_resolution(game_trace, 2.0)
        orig_px = sum(d.pixels_shaded for f in game_trace.frames for d in f.draws()
                      if d.render_target_ids)
        new_px = sum(d.pixels_shaded for f in scaled.frames for d in f.draws()
                     if d.render_target_ids)
        assert new_px == pytest.approx(4 * orig_px, rel=0.01)

    def test_shadow_maps_untouched(self, game_trace):
        scaled = scale_resolution(game_trace, 2.0)
        for frame_a, frame_b in zip(game_trace.frames, scaled.frames):
            for rp_a, rp_b in zip(frame_a.passes, frame_b.passes):
                if rp_a.pass_type is PassType.SHADOW:
                    assert rp_a.draws == rp_b.draws

    def test_screen_targets_resized(self, game_trace):
        scaled = scale_resolution(game_trace, 0.5)
        backbuffer = scaled.render_targets[0]
        original = game_trace.render_targets[0]
        assert backbuffer.width == original.width // 2

    def test_geometry_unchanged(self, game_trace):
        scaled = scale_resolution(game_trace, 2.0)
        orig = [d.vertex_count for f in game_trace.frames for d in f.draws()]
        new = [d.vertex_count for f in scaled.frames for d in f.draws()]
        assert orig == new

    def test_lower_resolution_is_faster(self, game_trace):
        half = scale_resolution(game_trace, 0.5)
        t_full = simulate_trace_batch(game_trace, CFG).total_time_ns
        t_half = simulate_trace_batch(half, CFG).total_time_ns
        assert t_half < t_full

    def test_bad_factor_rejected(self, game_trace):
        with pytest.raises(ValidationError):
            scale_resolution(game_trace, 0.0)

    def test_metadata_records_factor(self, game_trace):
        assert scale_resolution(game_trace, 1.5).metadata["resolution_factor"] == 1.5


class TestSortByMaterial:
    def test_draw_multiset_preserved(self, game_trace):
        sorted_trace = sort_passes_by_material(game_trace)
        for frame_a, frame_b in zip(game_trace.frames, sorted_trace.frames):
            assert sorted(
                d.shader_id for d in frame_a.draws()
            ) == sorted(d.shader_id for d in frame_b.draws())
            assert frame_a.num_draws == frame_b.num_draws

    def test_sorted_never_slower(self, game_trace):
        # Grouping materials amortizes switch penalties and cache warmup;
        # the generator already sorts opaque passes, so the gain here is
        # small but must not be negative (beyond noise).
        quiet = CFG.scaled(noise_amplitude=0.0)
        t_orig = simulate_trace_batch(game_trace, quiet).total_time_ns
        t_sorted = simulate_trace_batch(
            sort_passes_by_material(game_trace), quiet
        ).total_time_ns
        assert t_sorted <= t_orig * 1.001

    def test_interleaved_workload_gains(self):
        from tests.conftest import make_draw, make_world

        a = [make_draw(shader_id=1, texture_ids=(1,)) for _ in range(6)]
        b = [make_draw(shader_id=2, texture_ids=(2,)) for _ in range(6)]
        interleaved = [d for pair in zip(a, b) for d in pair]
        trace = make_world([interleaved])
        quiet = CFG.scaled(noise_amplitude=0.0)
        t_orig = simulate_trace_batch(trace, quiet).total_time_ns
        t_sorted = simulate_trace_batch(
            sort_passes_by_material(trace), quiet
        ).total_time_ns
        assert t_sorted < t_orig


class TestFilterPasses:
    def test_keeps_only_named(self, game_trace):
        filtered = filter_passes(
            game_trace, [PassType.FORWARD, PassType.POST, PassType.UI]
        )
        kinds = {rp.pass_type for f in filtered.frames for rp in f.passes}
        assert PassType.SHADOW not in kinds
        assert PassType.FORWARD in kinds

    def test_no_shadows_is_faster(self, game_trace):
        filtered = filter_passes(
            game_trace,
            [PassType.FORWARD, PassType.TRANSPARENT, PassType.POST, PassType.UI],
        )
        t_full = simulate_trace_batch(game_trace, CFG).total_time_ns
        t_filtered = simulate_trace_batch(filtered, CFG).total_time_ns
        assert t_filtered < t_full

    def test_empty_keep_rejected(self, game_trace):
        with pytest.raises(ValidationError, match="at least one"):
            filter_passes(game_trace, [])

    def test_all_frames_empty_rejected(self, game_trace):
        with pytest.raises(ValidationError, match="no draws left"):
            filter_passes(game_trace, [PassType.LIGHTING])  # forward game

    def test_bad_entry_rejected(self, game_trace):
        with pytest.raises(ValidationError, match="PassType"):
            filter_passes(game_trace, ["shadow"])
