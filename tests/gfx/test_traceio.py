"""Tests for trace serialization."""

import io
import json

import pytest

from repro.errors import TraceFormatError
from repro.gfx.traceio import (
    FORMAT_VERSION,
    load_trace,
    save_trace,
    trace_from_string,
    trace_to_string,
)

from tests.conftest import make_draw, make_world


class TestRoundTrip:
    def test_string_roundtrip_equal(self, simple_trace):
        text = trace_to_string(simple_trace)
        back = trace_from_string(text)
        assert back.name == simple_trace.name
        assert back.frames == simple_trace.frames
        assert back.shaders == simple_trace.shaders
        assert back.textures == simple_trace.textures
        assert back.render_targets == simple_trace.render_targets

    def test_file_roundtrip(self, simple_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(simple_trace, path)
        back = load_trace(path)
        assert back.frames == simple_trace.frames

    def test_metadata_preserved(self):
        trace = make_world([[make_draw()]])
        trace.metadata["game"] = "bioshock1_like"
        back = trace_from_string(trace_to_string(trace))
        assert back.metadata["game"] == "bioshock1_like"

    def test_double_roundtrip_stable(self, simple_trace):
        once = trace_to_string(simple_trace)
        twice = trace_to_string(trace_from_string(once))
        assert once == twice


class TestFormatErrors:
    def test_empty_stream(self):
        with pytest.raises(TraceFormatError, match="empty"):
            trace_from_string("")

    def test_missing_header(self):
        line = json.dumps({"type": "shader", "id": 1})
        with pytest.raises(TraceFormatError, match="header"):
            trace_from_string(line + "\n")

    def test_bad_version(self, simple_trace):
        text = trace_to_string(simple_trace)
        header = json.loads(text.splitlines()[0])
        header["version"] = FORMAT_VERSION + 1
        body = "\n".join(text.splitlines()[1:])
        with pytest.raises(TraceFormatError, match="version"):
            trace_from_string(json.dumps(header) + "\n" + body)

    def test_malformed_json_line(self, simple_trace):
        text = trace_to_string(simple_trace)
        broken = text + "{not json\n"
        with pytest.raises(TraceFormatError, match="bad JSON"):
            trace_from_string(broken)

    def test_unknown_record_type(self, simple_trace):
        text = trace_to_string(simple_trace)
        extra = json.dumps({"type": "mystery"})
        with pytest.raises(TraceFormatError, match="unknown record type"):
            trace_from_string(text + extra + "\n")

    def test_truncated_record_reports_line(self, simple_trace):
        text = trace_to_string(simple_trace)
        extra = json.dumps({"type": "texture", "id": 1})  # missing fields
        with pytest.raises(TraceFormatError, match="line"):
            trace_from_string(text + extra + "\n")

    def test_blank_lines_ignored(self, simple_trace):
        text = trace_to_string(simple_trace)
        lines = text.splitlines()
        padded = lines[0] + "\n\n" + "\n".join(lines[1:]) + "\n\n"
        back = trace_from_string(padded)
        assert back.num_frames == simple_trace.num_frames


class TestStreamBehaviour:
    def test_write_is_json_lines(self, simple_trace):
        buffer = io.StringIO()
        from repro.gfx.traceio import write_trace

        write_trace(simple_trace, buffer)
        for line in buffer.getvalue().splitlines():
            json.loads(line)  # every line independently parseable
