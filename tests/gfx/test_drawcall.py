"""Tests for the DrawCall record."""

import pytest

from repro.errors import ValidationError
from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import PrimitiveTopology
from repro.gfx.state import FULLSCREEN_STATE, OPAQUE_STATE

from tests.conftest import make_draw


class TestConstruction:
    def test_valid_draw(self, simple_draw):
        assert simple_draw.vertex_count == 300
        assert simple_draw.instance_count == 1

    def test_shaded_exceeding_rasterized_rejected(self):
        with pytest.raises(ValidationError, match="pixels_shaded"):
            DrawCall(
                shader_id=1,
                state=FULLSCREEN_STATE,
                topology=PrimitiveTopology.TRIANGLE_LIST,
                vertex_count=3,
                pixels_rasterized=10,
                pixels_shaded=11,
            )

    def test_zero_vertices_rejected(self):
        with pytest.raises(ValidationError, match="vertex_count"):
            make_draw(vertex_count=0)

    def test_no_targets_rejected(self):
        with pytest.raises(ValidationError, match="render target"):
            DrawCall(
                shader_id=1,
                state=FULLSCREEN_STATE,
                topology=PrimitiveTopology.TRIANGLE_LIST,
                vertex_count=3,
                pixels_rasterized=10,
                pixels_shaded=10,
                render_target_ids=(),
                depth_target_id=None,
            )

    def test_depth_only_draw_allowed(self):
        # Shadow-map rendering binds only a depth target.
        draw = DrawCall(
            shader_id=1,
            state=OPAQUE_STATE,
            topology=PrimitiveTopology.TRIANGLE_LIST,
            vertex_count=30,
            pixels_rasterized=100,
            pixels_shaded=100,
            render_target_ids=(),
            depth_target_id=4,
        )
        assert draw.render_target_ids == ()

    def test_texture_ids_must_be_tuple(self):
        with pytest.raises(ValidationError, match="texture_ids"):
            make_draw(texture_ids=[1, 2])  # type: ignore[arg-type]

    def test_frozen(self, simple_draw):
        with pytest.raises(AttributeError):
            simple_draw.vertex_count = 5  # type: ignore[misc]


class TestDerivedProperties:
    def test_total_vertices_with_instancing(self):
        draw = make_draw(vertex_count=30, instance_count=4)
        assert draw.total_vertices == 120

    def test_primitive_count_with_instancing(self):
        draw = make_draw(vertex_count=30, instance_count=4)
        assert draw.primitive_count == 40  # 10 triangles x 4 instances

    def test_overdraw(self):
        draw = make_draw(pixels=1000, shaded_fraction=0.75)
        assert draw.overdraw == pytest.approx(0.25)

    def test_overdraw_zero_pixels(self):
        draw = make_draw(pixels=0, shaded_fraction=0.0)
        assert draw.overdraw == 0.0

    def test_strip_primitives(self):
        draw = make_draw(vertex_count=10, topology=PrimitiveTopology.TRIANGLE_STRIP)
        assert draw.primitive_count == 8
