"""Binary-format enum code stability.

The binary trace format assigns one-byte codes by enum definition order.
These tests pin today's assignments so that reordering or inserting enum
members (which would silently corrupt existing files) fails loudly —
extending an enum must append, or the format version must bump.
"""

from repro.gfx.enums import (
    BlendMode,
    CullMode,
    DepthMode,
    PassType,
    PrimitiveTopology,
    TextureFormat,
)
from repro.gfx.tracebin import _ENCODE


class TestEnumCodeStability:
    def test_primitive_topology_codes(self):
        table = _ENCODE[PrimitiveTopology]
        assert table[PrimitiveTopology.POINT_LIST] == 0
        assert table[PrimitiveTopology.LINE_LIST] == 1
        assert table[PrimitiveTopology.TRIANGLE_LIST] == 2
        assert table[PrimitiveTopology.TRIANGLE_STRIP] == 3

    def test_texture_format_codes(self):
        table = _ENCODE[TextureFormat]
        assert table[TextureFormat.R8] == 0
        assert table[TextureFormat.RGBA8] == 2
        assert table[TextureFormat.BC1] == 9
        assert table[TextureFormat.DEPTH24S8] == 12
        assert table[TextureFormat.DEPTH32F] == 13

    def test_state_codes(self):
        assert _ENCODE[DepthMode][DepthMode.DISABLED] == 0
        assert _ENCODE[DepthMode][DepthMode.TEST_WRITE] == 2
        assert _ENCODE[BlendMode][BlendMode.OPAQUE] == 0
        assert _ENCODE[CullMode][CullMode.NONE] == 0

    def test_pass_type_codes(self):
        table = _ENCODE[PassType]
        assert table[PassType.SHADOW] == 0
        assert table[PassType.UI] == 7

    def test_codes_fit_one_byte(self):
        for table in _ENCODE.values():
            assert all(0 <= code <= 255 for code in table.values())

    def test_codes_bijective(self):
        for enum_type, table in _ENCODE.items():
            assert len(set(table.values())) == len(enum_type)
