"""Tests for graphics enumerations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gfx.enums import (
    BlendMode,
    DepthMode,
    PrimitiveTopology,
    TextureFormat,
)


class TestPrimitiveTopology:
    @pytest.mark.parametrize(
        "topo,verts,prims",
        [
            (PrimitiveTopology.TRIANGLE_LIST, 9, 3),
            (PrimitiveTopology.TRIANGLE_LIST, 10, 3),
            (PrimitiveTopology.TRIANGLE_STRIP, 5, 3),
            (PrimitiveTopology.TRIANGLE_STRIP, 2, 0),
            (PrimitiveTopology.TRIANGLE_STRIP, 0, 0),
            (PrimitiveTopology.LINE_LIST, 7, 3),
            (PrimitiveTopology.POINT_LIST, 4, 4),
        ],
    )
    def test_primitive_counts(self, topo, verts, prims):
        assert topo.primitives_for_vertices(verts) == prims

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            PrimitiveTopology.TRIANGLE_LIST.primitives_for_vertices(-1)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_primitives_never_exceed_vertices(self, verts):
        for topo in PrimitiveTopology:
            assert 0 <= topo.primitives_for_vertices(verts) <= max(verts, 0)


class TestTextureFormat:
    def test_bytes_per_texel_known(self):
        assert TextureFormat.RGBA8.bytes_per_texel == 4.0
        assert TextureFormat.BC1.bytes_per_texel == 0.5
        assert TextureFormat.RGBA16F.bytes_per_texel == 8.0

    def test_every_format_has_bytes(self):
        for fmt in TextureFormat:
            assert fmt.bytes_per_texel > 0

    def test_depth_flags(self):
        assert TextureFormat.DEPTH24S8.is_depth
        assert TextureFormat.DEPTH32F.is_depth
        assert not TextureFormat.RGBA8.is_depth

    def test_compressed_flags(self):
        assert TextureFormat.BC1.is_compressed
        assert not TextureFormat.R32F.is_compressed


class TestModes:
    def test_depth_read_write(self):
        assert not DepthMode.DISABLED.reads_depth
        assert DepthMode.TEST_ONLY.reads_depth
        assert not DepthMode.TEST_ONLY.writes_depth
        assert DepthMode.TEST_WRITE.writes_depth

    def test_blend_reads_destination(self):
        assert not BlendMode.OPAQUE.reads_destination
        for mode in (BlendMode.ALPHA, BlendMode.ADDITIVE, BlendMode.MULTIPLY):
            assert mode.reads_destination
