"""Tests for cross-object trace validation."""

import pytest

from repro.errors import TraceError
from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import PrimitiveTopology
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.enums import PassType
from repro.gfx.state import FULLSCREEN_STATE, OPAQUE_STATE
from repro.gfx.trace import Trace
from repro.gfx.validate import validate_trace

from tests.conftest import COLOR_RT, DEPTH_RT, make_draw


def rebuild_with_draw(trace: Trace, draw: DrawCall) -> Trace:
    """Replace the first frame with a frame containing only ``draw``."""
    frame = Frame(index=0, passes=(RenderPass(PassType.FORWARD, (draw,)),))
    return Trace(
        name=trace.name,
        frames=(frame,) + trace.frames[1:],
        shaders=trace.shaders,
        textures=trace.textures,
        render_targets=trace.render_targets,
    )


class TestValidateTrace:
    def test_valid_trace_passes(self, simple_trace):
        validate_trace(simple_trace)

    def test_dangling_shader(self, simple_trace):
        bad = rebuild_with_draw(simple_trace, make_draw(shader_id=777))
        with pytest.raises(TraceError, match="unknown shader_id 777"):
            validate_trace(bad)

    def test_dangling_texture(self, simple_trace):
        bad = rebuild_with_draw(simple_trace, make_draw(texture_ids=(888,)))
        with pytest.raises(TraceError, match="unknown texture_id 888"):
            validate_trace(bad)

    def test_depth_test_without_depth_target(self, simple_trace):
        draw = DrawCall(
            shader_id=1,
            state=OPAQUE_STATE,  # depth test enabled
            topology=PrimitiveTopology.TRIANGLE_LIST,
            vertex_count=3,
            pixels_rasterized=10,
            pixels_shaded=10,
            texture_ids=(10,),
            render_target_ids=(COLOR_RT,),
            depth_target_id=None,
        )
        bad = rebuild_with_draw(simple_trace, draw)
        with pytest.raises(TraceError, match="no depth target"):
            validate_trace(bad)

    def test_color_target_with_depth_format(self, simple_trace):
        draw = DrawCall(
            shader_id=1,
            state=FULLSCREEN_STATE,
            topology=PrimitiveTopology.TRIANGLE_LIST,
            vertex_count=3,
            pixels_rasterized=10,
            pixels_shaded=10,
            texture_ids=(10,),
            render_target_ids=(DEPTH_RT,),  # depth format bound as color
            depth_target_id=None,
        )
        bad = rebuild_with_draw(simple_trace, draw)
        with pytest.raises(TraceError, match="non-depth|depth format"):
            validate_trace(bad)

    def test_absurd_pixel_count_flagged(self, simple_trace):
        draw = DrawCall(
            shader_id=1,
            state=FULLSCREEN_STATE,
            topology=PrimitiveTopology.TRIANGLE_LIST,
            vertex_count=3,
            pixels_rasterized=1280 * 720 * 17,
            pixels_shaded=100,
            texture_ids=(10,),
            render_target_ids=(COLOR_RT,),
        )
        bad = rebuild_with_draw(simple_trace, draw)
        with pytest.raises(TraceError, match="exceeds 16x"):
            validate_trace(bad)

    def test_multiple_errors_collected(self, simple_trace):
        bad_draw = make_draw(shader_id=777, texture_ids=(888, 889))
        bad = rebuild_with_draw(simple_trace, bad_draw)
        try:
            validate_trace(bad)
        except TraceError as exc:
            message = str(exc)
            assert "777" in message and "888" in message and "889" in message
        else:
            pytest.fail("expected TraceError")

    def test_error_cap_respected(self, simple_trace):
        draws = tuple(make_draw(shader_id=700 + i) for i in range(30))
        frame = Frame(index=0, passes=(RenderPass(PassType.FORWARD, draws),))
        bad = Trace(
            name="bad",
            frames=(frame,),
            shaders=simple_trace.shaders,
            textures=simple_trace.textures,
            render_targets=simple_trace.render_targets,
        )
        with pytest.raises(TraceError, match="truncated"):
            validate_trace(bad, max_errors=5)
