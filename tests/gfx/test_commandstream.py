"""Tests for the API command stream and its interpreter."""

import pytest

from repro.errors import TraceError, ValidationError
from repro.gfx.commands import (
    BindShader,
    BindTextures,
    Draw,
    EndFrame,
    SetPipelineState,
    SetRenderTargets,
    SetVertexStream,
)
from repro.gfx.commandstream import (
    frames_to_commands,
    interpret_commands,
)
from repro.gfx.enums import PassType, PrimitiveTopology
from repro.gfx.state import FULLSCREEN_STATE, OPAQUE_STATE

from tests.conftest import COLOR_RT, DEPTH_RT, make_draw, make_world


def minimal_stream():
    """One valid frame: bind everything, draw twice, present."""
    return [
        SetRenderTargets((COLOR_RT,), DEPTH_RT, PassType.FORWARD),
        BindShader(1),
        SetPipelineState(OPAQUE_STATE),
        BindTextures((10,)),
        SetVertexStream(32, PrimitiveTopology.TRIANGLE_LIST),
        Draw(vertex_count=300, pixels_rasterized=1000, pixels_shaded=800),
        Draw(vertex_count=600, pixels_rasterized=2000, pixels_shaded=1500),
        EndFrame(),
    ]


class TestInterpreter:
    def test_minimal_stream(self):
        frames = interpret_commands(minimal_stream())
        assert len(frames) == 1
        frame = frames[0]
        assert frame.num_draws == 2
        draws = frame.draw_list
        assert draws[0].shader_id == 1
        assert draws[0].texture_ids == (10,)
        assert draws[1].vertex_count == 600
        assert draws[0].depth_target_id == DEPTH_RT

    def test_state_persists_across_draws(self):
        frames = interpret_commands(minimal_stream())
        a, b = frames[0].draw_list
        assert a.state == b.state == OPAQUE_STATE

    def test_target_change_opens_new_pass(self):
        stream = minimal_stream()[:-1]  # drop EndFrame
        stream += [
            SetRenderTargets((COLOR_RT,), None, PassType.POST),
            SetPipelineState(FULLSCREEN_STATE),
            Draw(vertex_count=3, pixels_rasterized=100, pixels_shaded=100),
            EndFrame(),
        ]
        frames = interpret_commands(stream)
        assert len(frames[0].passes) == 2
        assert frames[0].passes[1].pass_type is PassType.POST

    def test_draw_without_shader_rejected(self):
        stream = [
            SetRenderTargets((COLOR_RT,), DEPTH_RT),
            SetPipelineState(OPAQUE_STATE),
            Draw(vertex_count=3, pixels_rasterized=1, pixels_shaded=1),
        ]
        with pytest.raises(TraceError, match="no shader bound"):
            interpret_commands(stream)

    def test_draw_without_targets_rejected(self):
        stream = [
            BindShader(1),
            SetPipelineState(OPAQUE_STATE),
            Draw(vertex_count=3, pixels_rasterized=1, pixels_shaded=1),
        ]
        with pytest.raises(TraceError, match="no render targets"):
            interpret_commands(stream)

    def test_targets_do_not_survive_present(self):
        stream = minimal_stream() + [
            BindShader(1),
            SetPipelineState(OPAQUE_STATE),
            Draw(vertex_count=3, pixels_rasterized=1, pixels_shaded=1),
            EndFrame(),
        ]
        with pytest.raises(TraceError, match="no render targets"):
            interpret_commands(stream)

    def test_truncated_stream_rejected(self):
        with pytest.raises(TraceError, match="missing EndFrame"):
            interpret_commands(minimal_stream()[:-1])

    def test_empty_frame_rejected(self):
        with pytest.raises(TraceError, match="no draws"):
            interpret_commands([EndFrame()])

    def test_unknown_command_rejected(self):
        with pytest.raises(TraceError, match="unknown command"):
            interpret_commands(["present please"])

    def test_frame_indices_sequential(self):
        stream = minimal_stream() + minimal_stream()
        frames = interpret_commands(stream)
        assert [f.index for f in frames] == [0, 1]


class TestCommandValidation:
    def test_draw_shaded_bound(self):
        with pytest.raises(ValidationError):
            Draw(vertex_count=3, pixels_rasterized=1, pixels_shaded=2)

    def test_set_targets_needs_one(self):
        with pytest.raises(ValidationError):
            SetRenderTargets((), None)

    def test_vertex_stream_positive_stride(self):
        with pytest.raises(ValidationError):
            SetVertexStream(0, PrimitiveTopology.TRIANGLE_LIST)


class TestRoundTrip:
    def test_draw_sequence_survives(self, simple_trace):
        commands = frames_to_commands(simple_trace.frames)
        back = interpret_commands(commands)
        original = [d for f in simple_trace.frames for d in f.draws()]
        rebuilt = [d for f in back for d in f.draws()]
        assert rebuilt == original

    def test_simulation_identical_after_roundtrip(self, simple_trace):
        import dataclasses

        from repro.simgpu.batch import simulate_trace_batch
        from repro.simgpu.config import GpuConfig

        commands = frames_to_commands(simple_trace.frames)
        back = interpret_commands(commands)
        rebuilt = dataclasses.replace(simple_trace, frames=tuple(back))
        config = GpuConfig.preset("mainstream")
        a = simulate_trace_batch(simple_trace, config).total_time_ns
        b = simulate_trace_batch(rebuilt, config).total_time_ns
        assert b == pytest.approx(a, rel=1e-12)

    def test_stream_is_minimal(self):
        # 8 identical draws need state commands once, draws 8 times.
        draws = [make_draw(shader_id=1) for _ in range(8)]
        trace = make_world([draws])
        commands = frames_to_commands(trace.frames)
        draw_commands = [c for c in commands if isinstance(c, Draw)]
        assert len(draw_commands) == 8
        assert len(commands) == 8 + 5 + 1  # 5 state setups + EndFrame

    def test_synth_trace_roundtrip(self):
        from repro.synth.generator import TraceGenerator
        from repro.synth.profiles import GameProfile

        profile = GameProfile.preset("bioshock1_like").scaled(0.05)
        trace = TraceGenerator(profile, seed=1).generate(num_frames=4)
        commands = frames_to_commands(trace.frames)
        back = interpret_commands(commands)
        original = [d for f in trace.frames for d in f.draws()]
        rebuilt = [d for f in back for d in f.draws()]
        assert rebuilt == original
