"""Tests for the compact binary trace format."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.gfx.tracebin import (
    load_trace_binary,
    read_trace_binary,
    save_trace_binary,
    write_trace_binary,
)
from repro.gfx.traceio import trace_to_string

from tests.conftest import make_draw, make_world
from tests.test_properties import draw_strategy


def roundtrip(trace):
    buffer = io.BytesIO()
    write_trace_binary(trace, buffer)
    buffer.seek(0)
    return read_trace_binary(buffer)


class TestRoundTrip:
    def test_fixture_trace(self, simple_trace):
        back = roundtrip(simple_trace)
        assert back.name == simple_trace.name
        assert back.frames == simple_trace.frames
        assert back.shaders == simple_trace.shaders
        assert back.textures == simple_trace.textures
        assert back.render_targets == simple_trace.render_targets

    def test_file_roundtrip(self, simple_trace, tmp_path):
        path = tmp_path / "trace.rpb"
        save_trace_binary(simple_trace, path)
        back = load_trace_binary(path)
        assert back.frames == simple_trace.frames

    def test_synth_trace(self):
        from repro.synth.generator import TraceGenerator
        from repro.synth.profiles import GameProfile

        profile = GameProfile.preset("bioshock_infinite_like").scaled(0.04)
        trace = TraceGenerator(profile, seed=3).generate(num_frames=4)
        back = roundtrip(trace)
        assert back.frames == trace.frames
        assert back.render_targets == trace.render_targets

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.lists(draw_strategy, min_size=1, max_size=6),
                    min_size=1, max_size=3))
    def test_random_traces(self, draw_lists):
        trace = make_world(draw_lists)
        back = roundtrip(trace)
        assert back.frames == trace.frames

    def test_depth_only_draw_preserved(self):
        import dataclasses

        draw = dataclasses.replace(
            make_draw(), render_target_ids=(), depth_target_id=1
        )
        trace = make_world([[draw]])
        back = roundtrip(trace)
        rebuilt = back.frames[0].draw_list[0]
        assert rebuilt.render_target_ids == ()
        assert rebuilt.depth_target_id == 1


class TestCompactness:
    def test_smaller_than_json(self):
        trace = make_world([[make_draw() for _ in range(50)] for _ in range(4)])
        json_size = len(trace_to_string(trace).encode())
        buffer = io.BytesIO()
        write_trace_binary(trace, buffer)
        binary_size = buffer.tell()
        assert binary_size < json_size / 3


class TestFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace_binary(io.BytesIO(b"NOPE" + b"\x00" * 64))

    def test_truncated_stream(self, simple_trace):
        buffer = io.BytesIO()
        write_trace_binary(simple_trace, buffer)
        data = buffer.getvalue()
        with pytest.raises(TraceFormatError):
            read_trace_binary(io.BytesIO(data[: len(data) // 2]))

    def test_missing_end_marker(self, simple_trace):
        buffer = io.BytesIO()
        write_trace_binary(simple_trace, buffer)
        data = buffer.getvalue()[:-4]
        with pytest.raises(TraceFormatError, match="end marker"):
            read_trace_binary(io.BytesIO(data))

    def test_wrong_section_tag(self, simple_trace):
        buffer = io.BytesIO()
        write_trace_binary(simple_trace, buffer)
        data = bytearray(buffer.getvalue())
        shdr = data.find(b"SHDR")
        data[shdr : shdr + 4] = b"XXXX"
        with pytest.raises(TraceFormatError, match="section tag"):
            read_trace_binary(io.BytesIO(bytes(data)))
