"""Tests for resource descriptors."""

import pytest

from repro.errors import ValidationError
from repro.gfx.enums import TextureFormat
from repro.gfx.resources import BufferDesc, RenderTargetDesc, TextureDesc


class TestTextureDesc:
    def test_byte_size_single_mip(self):
        tex = TextureDesc(1, 16, 16, TextureFormat.RGBA8)
        assert tex.byte_size == 16 * 16 * 4

    def test_byte_size_mip_chain(self):
        tex = TextureDesc(1, 4, 4, TextureFormat.RGBA8, mip_levels=3)
        # 4x4 + 2x2 + 1x1 texels = 21 texels * 4 bytes
        assert tex.byte_size == 21 * 4

    def test_compressed_subbyte(self):
        tex = TextureDesc(1, 8, 8, TextureFormat.BC1)
        assert tex.byte_size == 32

    def test_too_many_mips_rejected(self):
        with pytest.raises(ValidationError, match="mip_levels"):
            TextureDesc(1, 4, 4, TextureFormat.RGBA8, mip_levels=10)

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValidationError):
            TextureDesc(1, 0, 4, TextureFormat.RGBA8)

    def test_mip_of_nonsquare(self):
        tex = TextureDesc(1, 8, 2, TextureFormat.R8, mip_levels=4)
        # 8x2 + 4x1 + 2x1 + 1x1 = 16 + 4 + 2 + 1 = 23 texels
        assert tex.byte_size == 23


class TestBufferDesc:
    def test_valid(self):
        buf = BufferDesc(1, byte_size=1024, stride=32)
        assert buf.byte_size == 1024

    def test_stride_exceeding_size_rejected(self):
        with pytest.raises(ValidationError, match="stride"):
            BufferDesc(1, byte_size=16, stride=32)


class TestRenderTargetDesc:
    def test_pixel_count_and_bpp(self):
        rt = RenderTargetDesc(0, 1920, 1080, TextureFormat.RGBA8, samples=4)
        assert rt.pixel_count == 1920 * 1080
        assert rt.bytes_per_pixel == 16.0

    def test_bad_sample_count_rejected(self):
        with pytest.raises(ValidationError, match="samples"):
            RenderTargetDesc(0, 64, 64, TextureFormat.RGBA8, samples=3)

    def test_hash_by_id(self):
        a = RenderTargetDesc(5, 64, 64, TextureFormat.RGBA8)
        b = RenderTargetDesc(5, 32, 32, TextureFormat.R8)
        assert hash(a) == hash(b)
