"""Tests for shader programs and stats."""

import pytest

from repro.errors import ValidationError
from repro.gfx.shader import ShaderProgram, ShaderStats, make_shader


class TestShaderStats:
    def test_defaults(self):
        stats = ShaderStats(alu_ops=10)
        assert stats.tex_ops == 0
        assert stats.registers == 16

    def test_total_ops(self):
        stats = ShaderStats(alu_ops=10, tex_ops=3, branch_ops=2)
        assert stats.total_ops == 15

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            ShaderStats(alu_ops=-1)

    def test_zero_registers_rejected(self):
        with pytest.raises(ValidationError, match="registers"):
            ShaderStats(alu_ops=1, registers=0)

    def test_non_int_rejected(self):
        with pytest.raises(ValidationError):
            ShaderStats(alu_ops=1.5)  # type: ignore[arg-type]

    def test_frozen(self):
        stats = ShaderStats(alu_ops=1)
        with pytest.raises(AttributeError):
            stats.alu_ops = 2  # type: ignore[misc]


class TestShaderProgram:
    def test_make_shader(self):
        s = make_shader(3, "gbuffer/stone", vs_alu=25, ps_alu=60, ps_tex=4)
        assert s.shader_id == 3
        assert s.pixel.tex_ops == 4
        assert s.vertex.alu_ops == 25

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            make_shader(1, "", vs_alu=1, ps_alu=1)

    def test_hash_by_id(self):
        a = make_shader(7, "a", vs_alu=1, ps_alu=1)
        b = make_shader(7, "b", vs_alu=2, ps_alu=2)
        assert hash(a) == hash(b)

    def test_metadata_not_compared(self):
        a = make_shader(1, "x", vs_alu=1, ps_alu=1)
        b = make_shader(1, "x", vs_alu=1, ps_alu=1)
        a.metadata["k"] = "v"
        assert a == b

    def test_wrong_stage_type_rejected(self):
        with pytest.raises(ValidationError):
            ShaderProgram(shader_id=1, name="x", vertex="nope", pixel=ShaderStats(1))
