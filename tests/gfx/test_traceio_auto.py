"""Tests for format auto-detection in trace IO."""

from repro.gfx.traceio import load_trace_auto, save_trace_auto

from tests.conftest import make_draw, make_world


class TestAutoIO:
    def test_json_by_default(self, tmp_path, simple_trace):
        path = tmp_path / "t.jsonl"
        save_trace_auto(simple_trace, path)
        assert path.read_bytes().startswith(b"{")
        back = load_trace_auto(path)
        assert back.frames == simple_trace.frames

    def test_binary_by_suffix(self, tmp_path, simple_trace):
        path = tmp_path / "t.rpb"
        save_trace_auto(simple_trace, path)
        assert path.read_bytes().startswith(b"RPB1")
        back = load_trace_auto(path)
        assert back.frames == simple_trace.frames

    def test_load_sniffs_content_not_suffix(self, tmp_path):
        # A binary trace saved with a .jsonl name still loads.
        from repro.gfx.tracebin import save_trace_binary

        trace = make_world([[make_draw()]])
        path = tmp_path / "mislabeled.jsonl"
        save_trace_binary(trace, path)
        back = load_trace_auto(path)
        assert back.frames == trace.frames

    def test_cli_generates_binary(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "t.rpb"
        code = main(
            [
                "generate",
                "--game",
                "bioshock1_like",
                "--frames",
                "4",
                "--scale",
                "0.05",
                "-o",
                str(path),
            ]
        )
        assert code == 0
        assert path.read_bytes().startswith(b"RPB1")
        assert main(["info", str(path)]) == 0
