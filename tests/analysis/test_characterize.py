"""Tests for workload characterization."""

import pytest

from repro.analysis.characterize import characterize_trace
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


@pytest.fixture(scope="module")
def profile_result():
    from repro.synth.phasescript import PhaseScript, Segment, SegmentKind

    game = GameProfile.preset("bioshock_infinite_like").scaled(0.05)
    script = PhaseScript((Segment(SegmentKind.EXPLORE, 0, 6),))
    trace = TraceGenerator(game, seed=2).generate(script=script)
    return characterize_trace(trace, CFG)


class TestCharacterize:
    def test_shares_sum_to_one(self, profile_result):
        assert sum(profile_result.pass_time_share.values()) == pytest.approx(1.0)
        assert sum(profile_result.bottleneck_share.values()) == pytest.approx(1.0)
        assert sum(profile_result.bottleneck_time_share.values()) == pytest.approx(
            1.0
        )
        assert sum(profile_result.traffic_share.values()) == pytest.approx(1.0)

    def test_deferred_engine_shape(self, profile_result):
        # The deferred renderer spends real time in G-buffer + lighting.
        shares = profile_result.pass_time_share
        assert "gbuffer" in shares and shares["gbuffer"] > 0.05
        assert "lighting" in shares
        assert shares.get("ui", 0.0) < 0.3

    def test_bottleneck_names_valid(self, profile_result):
        valid = {"vertex", "fetch", "raster", "pixel", "texture", "rop", "memory"}
        assert set(profile_result.bottleneck_share) <= valid

    def test_report_renders(self, profile_result):
        text = profile_result.report()
        assert "Workload profile" in text
        assert "bottleneck" in text
        assert "traffic class" in text

    def test_totals_positive(self, profile_result):
        assert profile_result.total_time_ms > 0
        assert profile_result.mean_fps > 0
