"""Tests for ExperimentResult rendering, figures, and serialization."""

import pytest

from repro.analysis.report import ExperimentResult


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="EX",
        title="Example",
        headers=("game", "value %"),
        rows=(("a", 1.234), ("b", 5.678)),
        paper_values=(("claim", "about 1%"),),
        notes="a note",
        figure="FIGURE-BODY",
    )


class TestRender:
    def test_contains_all_sections(self, result):
        text = result.render()
        assert "[EX] Example" in text
        assert "FIGURE-BODY" in text
        assert "paper reference:" in text
        assert "about 1%" in text
        assert "note: a note" in text

    def test_figure_between_table_and_refs(self, result):
        text = result.render()
        assert text.index("FIGURE-BODY") > text.index("Example")
        assert text.index("FIGURE-BODY") < text.index("paper reference:")

    def test_no_optional_sections(self):
        bare = ExperimentResult(
            experiment_id="EY",
            title="Bare",
            headers=("x",),
            rows=((1,),),
        )
        text = bare.render()
        assert "paper reference" not in text
        assert "note:" not in text

    def test_precision_respected(self):
        fine = ExperimentResult(
            experiment_id="EZ",
            title="P",
            headers=("v",),
            rows=((0.123456,),),
            precision=5,
        )
        assert "0.12346" in fine.render()


class TestAccessors:
    def test_column(self, result):
        assert result.column("game") == ["a", "b"]
        assert result.column("value %") == [1.234, 5.678]

    def test_unknown_column_raises(self, result):
        with pytest.raises(ValueError):
            result.column("missing")

    def test_as_dict_round(self, result):
        data = result.as_dict()
        assert data["experiment"] == "EX"
        assert data["paper_values"] == {"claim": "about 1%"}
        assert data["rows"] == [["a", 1.234], ["b", 5.678]]
