"""Tests for the correlation experiment and pathfinding sweeps."""

import pytest

from repro.analysis.correlation import subset_parent_correlation
from repro.analysis.sweep import default_candidates, pathfinding_sweep
from repro.core.subsetting import build_subset
from repro.errors import ValidationError
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")
SMALL = GameProfile.preset("bioshock1_like").scaled(0.06)
CLOCKS = (600.0, 900.0, 1200.0, 1500.0)


@pytest.fixture(scope="module")
def parent_and_subset():
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
        )
    )
    trace = TraceGenerator(SMALL, seed=4).generate(script=script)
    return trace, build_subset(trace)


class TestCorrelation:
    def test_high_correlation(self, parent_and_subset):
        trace, subset = parent_and_subset
        result = subset_parent_correlation(trace, subset, CFG, CLOCKS)
        assert result.correlation > 0.99

    def test_improvement_curves_monotone(self, parent_and_subset):
        trace, subset = parent_and_subset
        result = subset_parent_correlation(trace, subset, CFG, CLOCKS)
        parent = result.parent_improvements_percent
        assert list(parent) == sorted(parent)
        assert all(v > 0 for v in parent)

    def test_gap_small(self, parent_and_subset):
        trace, subset = parent_and_subset
        result = subset_parent_correlation(trace, subset, CFG, CLOCKS)
        assert result.max_improvement_gap_points < 3.0

    def test_records_inputs(self, parent_and_subset):
        trace, subset = parent_and_subset
        result = subset_parent_correlation(trace, subset, CFG, CLOCKS)
        assert result.clocks_mhz == CLOCKS
        assert result.subset_method == "phase"
        assert len(result.parent_times_ns) == len(CLOCKS)


class TestPathfinding:
    def test_ranking_agreement(self, parent_and_subset):
        trace, subset = parent_and_subset
        result = pathfinding_sweep(trace, subset)
        assert result.ranking_agreement > 0.9
        assert result.winner_agrees()

    def test_candidates_ordered_sensibly(self, parent_and_subset):
        trace, subset = parent_and_subset
        result = pathfinding_sweep(trace, subset)
        by_name = dict(zip(result.config_names, result.parent_times_ns))
        # The low-power part must be slowest; high-end fastest.
        assert by_name["lowpower"] == max(result.parent_times_ns)
        assert by_name["highend"] == min(result.parent_times_ns)

    def test_more_cores_helps(self, parent_and_subset):
        trace, subset = parent_and_subset
        result = pathfinding_sweep(trace, subset)
        by_name = dict(zip(result.config_names, result.parent_times_ns))
        assert by_name["mainstream+cores"] < by_name["mainstream"]

    def test_duplicate_candidate_names_rejected(self, parent_and_subset):
        trace, subset = parent_and_subset
        config = GpuConfig.preset("mainstream")
        with pytest.raises(ValidationError, match="unique"):
            pathfinding_sweep(trace, subset, [config, config])

    def test_default_candidates_valid(self):
        candidates = default_candidates()
        assert len(candidates) >= 4
        assert len({c.name for c in candidates}) == len(candidates)
