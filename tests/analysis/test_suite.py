"""Tests for suite-level subsetting."""

import pytest

from repro.analysis.suite import subset_suite
from repro.errors import ValidationError
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


@pytest.fixture(scope="module")
def corpus():
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
        )
    )
    traces = {}
    for game in ("bioshock1_like", "bioshock2_like"):
        profile = GameProfile.preset(game).scaled(0.06)
        traces[game] = TraceGenerator(profile, seed=51).generate(script=script)
    return traces


class TestSubsetSuite:
    @pytest.fixture(scope="class")
    def result(self, corpus):
        return subset_suite(corpus, CFG)

    def test_per_game_results(self, result, corpus):
        assert set(result.game_results) == set(corpus)
        assert set(result.validations) == set(corpus)

    def test_cost_reduction_substantial(self, result):
        assert 0.5 < result.suite_cost_reduction < 1.0
        assert result.total_subset_draws < result.total_parent_draws

    def test_validations_pass(self, result):
        assert result.all_validations_passed

    def test_report_renders(self, result):
        text = result.report()
        assert "Suite subsetting" in text
        assert "reduction" in text
        assert "bioshock1_like" in text

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValidationError, match="non-empty"):
            subset_suite({}, CFG)

    def test_accounting_consistent(self, result):
        total = sum(
            r.subset.parent_num_draws for r in result.game_results.values()
        )
        assert result.total_parent_draws == total
