"""Tests for the canned experiment runners E1-E8."""

import math

import pytest

from repro.analysis import experiments as ex
from repro.analysis.report import ExperimentResult
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


def tiny_trace(game="bioshock1_like", seed=6, frames=12):
    profile = GameProfile.preset(game).scaled(0.06)
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, frames // 2),
            Segment(SegmentKind.COMBAT, 0, frames // 4),
            Segment(SegmentKind.EXPLORE, 0, frames - frames // 2 - frames // 4),
        )
    )
    return TraceGenerator(profile, seed=seed).generate(script=script)


@pytest.fixture(scope="module")
def tiny_corpus():
    return {
        "bioshock1_like": tiny_trace("bioshock1_like"),
        "bioshock2_like": tiny_trace("bioshock2_like"),
    }


class TestClusteringMetrics:
    def test_per_frame_rows(self, tiny_corpus):
        trace = tiny_corpus["bioshock1_like"]
        metrics = ex.clustering_metrics(trace, CFG)
        assert len(metrics) == trace.num_frames
        for m in metrics:
            assert 0.0 <= m.error < 1.0
            assert 0.0 <= m.efficiency < 1.0
            assert 0.0 <= m.outlier_rate <= 1.0
            assert m.num_clusters >= 1

    def test_feature_columns_subset(self, tiny_corpus):
        trace = tiny_corpus["bioshock1_like"]
        metrics = ex.clustering_metrics(trace, CFG, feature_columns=[0, 1, 2])
        assert len(metrics) == trace.num_frames


class TestE1E2:
    def test_e1_structure(self, tiny_corpus):
        result = ex.e1_clustering_accuracy(tiny_corpus, CFG)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "E1"
        games = result.column("game")
        assert games[-1] == "AVERAGE"
        assert len(games) == len(tiny_corpus) + 1
        for err in result.column("pred error %"):
            assert 0.0 <= err < 50.0

    def test_e2_structure(self, tiny_corpus):
        result = ex.e2_cluster_outliers(tiny_corpus, CFG)
        rates = result.column("outlier rate %")
        assert all(0.0 <= r <= 100.0 for r in rates)

    def test_render_contains_paper_refs(self, tiny_corpus):
        text = ex.e1_clustering_accuracy(tiny_corpus, CFG).render()
        assert "65.8%" in text
        assert "1.0%" in text


class TestE3:
    def test_efficiency_monotone_in_radius(self, tiny_corpus):
        result = ex.e3_error_efficiency_tradeoff(
            tiny_corpus["bioshock1_like"], CFG, radii=(0.05, 0.3, 1.0)
        )
        effs = result.column("efficiency %")
        assert effs[0] < effs[-1]


class TestE4:
    def test_phases_exist_in_each_game(self, tiny_corpus):
        result = ex.e4_phase_detection(tiny_corpus)
        assert all(result.column("has phases"))
        for factor in result.column("repeat factor"):
            assert factor > 1.0

    def test_purity_reported(self, tiny_corpus):
        result = ex.e4_phase_detection(tiny_corpus)
        for purity in result.column("purity %"):
            assert math.isnan(purity) or 0.0 <= purity <= 100.0


class TestE5:
    def test_fraction_shrinks_with_length(self):
        result = ex.e5_subset_size(
            "bioshock1_like", CFG, lengths=(40, 160), scale=0.06
        )
        fractions = result.column("combined subset draws %")
        assert fractions[-1] < fractions[0]


class TestE6:
    def test_correlation_above_paper_bar(self, tiny_corpus):
        result = ex.e6_frequency_correlation(
            tiny_corpus, CFG, clocks_mhz=(600.0, 1000.0, 1400.0)
        )
        for r in result.column("correlation r"):
            assert r > 0.99


class TestE7:
    def test_all_variants_present(self, tiny_corpus):
        result = ex.e7_ablations(tiny_corpus["bioshock1_like"], CFG)
        variants = result.column("variant")
        assert any("leader (default)" in v for v in variants)
        assert any("kmeans" in v for v in variants)
        assert any("agglomerative" in v for v in variants)
        for group in ex.FEATURE_GROUPS:
            assert any(group in v for v in variants)

    def test_feature_groups_cover_all_features(self):
        from repro.core.features import FEATURE_NAMES

        covered = set()
        for names in ex.FEATURE_GROUPS.values():
            covered.update(names)
        assert covered == set(FEATURE_NAMES)


class TestE8:
    def test_clustering_beats_naive_baselines(self, tiny_corpus):
        result = ex.e8_baselines(tiny_corpus["bioshock1_like"], CFG)
        errors = dict(zip(result.column("method"), result.column("error %")))
        assert errors["clustering (paper)"] < errors["first_n"]
        assert errors["clustering (paper)"] < errors["random"]

    def test_frame_block_present(self, tiny_corpus):
        result = ex.e8_baselines(tiny_corpus["bioshock1_like"], CFG)
        methods = result.column("method")
        assert any("phase subset" in m for m in methods)
        assert any("simpoint" in m for m in methods)


class TestReport:
    def test_column_lookup(self, tiny_corpus):
        result = ex.e1_clustering_accuracy(tiny_corpus, CFG)
        with pytest.raises(ValueError):
            result.column("nonexistent")

    def test_as_dict(self, tiny_corpus):
        data = ex.e2_cluster_outliers(tiny_corpus, CFG).as_dict()
        assert data["experiment"] == "E2"
        assert isinstance(data["rows"], list)
