"""Tests for the holistic subset-validation API."""

import pytest

from repro.analysis.validation import (
    CORRELATION_THRESHOLD,
    validate_subset,
)
from repro.baselines.framesample import every_nth_frame_subset
from repro.core.subsetting import build_subset
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")
CLOCKS = (600.0, 1000.0, 1400.0)


@pytest.fixture(scope="module")
def game_trace():
    profile = GameProfile.preset("bioshock1_like").scaled(0.06)
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
        )
    )
    return TraceGenerator(profile, seed=41).generate(script=script)


class TestValidateSubset:
    def test_phase_subset_passes(self, game_trace):
        subset = build_subset(game_trace)
        validation = validate_subset(game_trace, subset, CFG, CLOCKS)
        assert validation.passed, validation.report()
        assert len(validation.checks) == 3

    def test_checks_have_thresholds(self, game_trace):
        subset = build_subset(game_trace)
        validation = validate_subset(game_trace, subset, CFG, CLOCKS)
        names = [c.name for c in validation.checks]
        assert "frequency-scaling correlation" in names
        assert "cross-architecture transfer error" in names
        assert "candidate-ranking agreement" in names
        corr = validation.checks[0]
        assert corr.threshold == CORRELATION_THRESHOLD

    def test_report_renders_with_verdict(self, game_trace):
        subset = build_subset(game_trace)
        validation = validate_subset(game_trace, subset, CFG, CLOCKS)
        text = validation.report()
        assert "VERDICT: PASS" in text
        assert game_trace.name in text

    def test_terrible_subset_fails(self, game_trace):
        # A single-frame periodic subset (first frame stands for everything)
        # generally misestimates the mixed workload.
        subset = every_nth_frame_subset(game_trace, stride=game_trace.num_frames)
        validation = validate_subset(game_trace, subset, CFG, CLOCKS)
        transfer = next(
            c for c in validation.checks if "transfer" in c.name
        )
        # One explore frame cannot represent explore+combat mixes well.
        assert transfer.measured > 0.0
        assert "VERDICT" in validation.report()

    def test_good_periodic_subset_also_passes(self, game_trace):
        # Dense periodic sampling is a legitimate subset; the validator is
        # method-agnostic.
        subset = every_nth_frame_subset(game_trace, stride=2)
        validation = validate_subset(game_trace, subset, CFG, CLOCKS)
        assert validation.passed
