"""Suite runs with non-default pipelines and mixed validation outcomes."""

from repro.analysis.suite import subset_suite
from repro.core.pipeline import SubsettingPipeline
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


def corpus_of_one():
    profile = GameProfile.preset("bioshock1_like").scaled(0.06)
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
        )
    )
    return {"b1": TraceGenerator(profile, seed=91).generate(script=script)}


class TestSuiteCustomPipeline:
    def test_custom_pipeline_respected(self):
        tight = SubsettingPipeline(radius=0.05)
        loose = SubsettingPipeline(radius=1.0)
        tight_result = subset_suite(corpus_of_one(), CFG, pipeline=tight)
        loose_result = subset_suite(corpus_of_one(), CFG, pipeline=loose)
        tight_eff = tight_result.game_results["b1"].mean_efficiency
        loose_eff = loose_result.game_results["b1"].mean_efficiency
        assert loose_eff > tight_eff
        # Looser clustering simulates fewer draws per candidate.
        assert loose_result.total_subset_draws < tight_result.total_subset_draws

    def test_suite_report_verdict_line(self):
        result = subset_suite(corpus_of_one(), CFG)
        text = result.report()
        assert "all subsets validated:" in text
        assert ("yes" in text.rsplit("validated:", 1)[1]) == (
            result.all_validations_passed
        )
