"""Dashboard aggregation: shared run listing, trends, flame tree, bench."""

from __future__ import annotations

import json

import pytest

# bench_trajectory is aliased: pyproject collects bench_* as benchmarks.
from repro.obs.dash import (
    DASH_PAYLOAD_VERSION,
    bench_trajectory as collect_benches,
    find_span_artifact,
    frame_timeline,
    run_detail_payload,
    run_summary,
    runs_payload,
    series_trends,
    span_flame_tree,
    spans_payload,
)
from repro.obs.history import RunRecord, RunStore


def make_record(run_id="abc123def456", created=1000.0, command="simulate",
                **overrides):
    kwargs = dict(
        run_id=run_id,
        created_unix=created,
        command=command,
        argv=("simulate", "t.jsonl"),
        git_sha="deadbeef",
        environment={"python_version": "3.12.0"},
        jobs=2,
        metrics={
            "counter:frames_simulated": 24.0,
            "derived:duration_s": 2.0,
            "derived:frames_per_s": 12.0,
        },
        stages={"simulate": 0.5},
        top_stages={"simulate": 0.5},
    )
    kwargs.update(overrides)
    return RunRecord(**kwargs)


class TestRunListing:
    def test_summary_is_the_flat_listing_row(self):
        summary = run_summary(make_record())
        assert summary["run_id"] == "abc123def456"
        assert summary["command"] == "simulate"
        assert summary["created_iso"] == "1970-01-01T00:16:40Z"
        assert summary["duration_s"] == 2.0
        assert summary["frames_per_s"] == 12.0
        assert summary["frames_simulated"] == 24.0
        assert summary["num_stages"] == 1
        # Absent derived metrics surface as null, not KeyError.
        assert run_summary(make_record(metrics={}))["duration_s"] is None

    def test_summary_carries_precomp_kernels_and_artifacts(self):
        bare = run_summary(make_record())
        assert bare["precomp_store_hits"] is None
        assert bare["kernels_backend"] is None
        assert bare["artifact_sections"] == []

        rich = run_summary(make_record(
            metrics={
                "counter:precomp_store_hits": 7.0,
                "counter:precomp_store_misses": 1.0,
                "counter:precomp_store_publishes": 1.0,
            },
            environment={"kernels_backend": "cext"},
            extra={"artifacts": {
                "dir": "abc123def456.artifacts",
                "sections": ["clusters", "fidelity"],
                "index_sha256": "f" * 64,
            }},
        ))
        assert rich["precomp_store_hits"] == 7.0
        assert rich["precomp_store_misses"] == 1.0
        assert rich["precomp_store_publishes"] == 1.0
        assert rich["kernels_backend"] == "cext"
        assert rich["artifact_sections"] == ["clusters", "fidelity"]

    def test_runs_payload_lists_store_wide_commands(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(make_record(run_id="sim0sim0sim0", created=1.0))
        store.append(make_record(
            run_id="sweep0sweep0", created=2.0, command="sweep"
        ))
        payload = runs_payload(store, command="simulate")
        assert payload["version"] == DASH_PAYLOAD_VERSION
        assert payload["commands"] == ["simulate", "sweep"]
        assert payload["count"] == 1
        assert payload["runs"][0]["run_id"] == "sim0sim0sim0"

    def test_detail_payload_carries_record_and_summary(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(make_record())
        payload = run_detail_payload(store, "abc1")
        assert payload["run_id"] == "abc123def456"
        assert payload["summary"]["command"] == "simulate"
        assert payload["span_artifact"] is None


class TestFindSpanArtifact:
    def test_both_argv_spellings_resolve(self, tmp_path):
        spans = tmp_path / "spans.jsonl"
        spans.write_text("")
        for argv in (
            ("simulate", "t.json", "--trace-out", str(spans)),
            ("simulate", "t.json", f"--trace-out={spans}"),
        ):
            record = make_record(argv=argv)
            assert find_span_artifact(record) == str(spans)

    def test_missing_or_foreign_files_yield_none(self, tmp_path):
        gone = make_record(argv=("x", "--trace-out", str(tmp_path / "no.jsonl")))
        assert find_span_artifact(gone) is None
        chrome = tmp_path / "trace.json"
        chrome.write_text("{}")
        # A chrome-trace export is not the JSONL shape the rollup reads.
        assert find_span_artifact(
            make_record(argv=("x", "--trace-out", str(chrome)))
        ) is None
        assert find_span_artifact(make_record(argv=())) is None


class TestSeriesTrends:
    def _window(self, values, run_id="run{i}00000000"):
        return [
            make_record(
                run_id=run_id.format(i=i),
                created=1000.0 + i,
                metrics={"counter:frames_simulated": value},
            )
            for i, value in enumerate(values)
        ]

    def test_points_trail_the_window_in_order(self):
        payload = series_trends(self._window([10.0, 10.0, 10.0]))
        assert payload["command"] == "simulate"
        assert payload["window"] == 3
        (series,) = [
            s for s in payload["series"]
            if s["name"] == "counter:frames_simulated"
        ]
        assert [p["value"] for p in series["points"]] == [10.0, 10.0, 10.0]
        assert series["direction"] == "both"

    def test_gate_verdict_matches_compare_to_baseline(self):
        records = self._window([10.0, 10.0, 10.0, 10.0, 99.0])
        payload = series_trends(records, select=["counter:*"])
        (series,) = payload["series"]
        assert series["gate"] is not None
        assert series["gate"]["verdict"] == "regression"
        assert series["gate"]["rel_delta"] == pytest.approx(8.9)

    def test_single_record_has_no_gate(self):
        payload = series_trends(self._window([10.0]))
        for series in payload["series"]:
            assert series["gate"] is None

    def test_missing_values_are_skipped_not_nulled(self):
        records = self._window([10.0, 10.0])
        records.append(make_record(
            run_id="bare00000000", created=2000.0, metrics={}
        ))
        payload = series_trends(records, select=["counter:frames_simulated"])
        (series,) = payload["series"]
        assert len(series["points"]) == 2

    def test_empty_window(self):
        payload = series_trends([])
        assert payload["command"] is None
        assert payload["series"] == []


FRAME_NS = 1_000_000


def _tree_spans():
    """A two-stage pipeline: each stage simulates one frame."""
    return [
        {"span_id": "root", "parent_id": None, "name": "cli:simulate",
         "category": "cli", "start_ns": 0, "duration_ns": 10 * FRAME_NS},
        {"span_id": "s1", "parent_id": "root", "name": "ground_truth",
         "category": "stage", "start_ns": 0, "duration_ns": 6 * FRAME_NS},
        {"span_id": "s2", "parent_id": "root", "name": "representatives",
         "category": "stage", "start_ns": 6 * FRAME_NS,
         "duration_ns": 3 * FRAME_NS},
        {"span_id": "f1", "parent_id": "s1", "name": "simulate_frame",
         "category": "simgpu", "start_ns": 1 * FRAME_NS,
         "duration_ns": 4 * FRAME_NS,
         "args": {"frame": 0, "draws": 100, "time_ns": 5000,
                  "raster_cycles": 40, "shade_cycles": 60}},
        {"span_id": "f2", "parent_id": "s2", "name": "simulate_frame",
         "category": "simgpu", "start_ns": 7 * FRAME_NS,
         "duration_ns": 2 * FRAME_NS,
         "args": {"frame": 3, "draws": 50, "time_ns": 2500}},
    ]


class TestFlameTree:
    def test_merges_by_name_and_category(self):
        spans = _tree_spans()
        spans.append({
            "span_id": "f3", "parent_id": "s1", "name": "simulate_frame",
            "category": "simgpu", "start_ns": 5 * FRAME_NS,
            "duration_ns": 1 * FRAME_NS, "args": {"frame": 1},
        })
        (root,) = span_flame_tree(spans)
        assert root["name"] == "cli:simulate"
        ground = [c for c in root["children"] if c["name"] == "ground_truth"][0]
        (frames,) = ground["children"]
        assert frames["count"] == 2
        assert frames["total_s"] == pytest.approx(0.005)

    def test_self_time_is_total_minus_children(self):
        (root,) = span_flame_tree(_tree_spans())
        assert root["total_s"] == pytest.approx(0.010)
        assert root["self_s"] == pytest.approx(0.001)  # 10 - (6 + 3)

    def test_orphans_root_at_top_instead_of_vanishing(self):
        spans = _tree_spans()
        spans.append({
            "span_id": "lost", "parent_id": "never-exported",
            "name": "stray", "category": "task",
            "start_ns": 0, "duration_ns": FRAME_NS,
        })
        roots = {node["name"] for node in span_flame_tree(spans)}
        assert "stray" in roots

    def test_tiny_nodes_fold_into_other(self):
        spans = _tree_spans()
        for i in range(3):
            spans.append({
                "span_id": f"dust{i}", "parent_id": None,
                "name": f"dust_{i}", "category": "task",
                "start_ns": 0, "duration_ns": 10,
            })
        nodes = span_flame_tree(spans, min_fraction=0.01)
        names = [node["name"] for node in nodes]
        assert "(other)" in names
        assert not any(name.startswith("dust_") for name in names)
        other = [n for n in nodes if n["name"] == "(other)"][0]
        assert other["count"] == 3


class TestFrameTimeline:
    def test_rows_carry_phase_and_cycles(self):
        rows = frame_timeline(_tree_spans())
        assert [row["frame"] for row in rows] == [0, 3]
        assert rows[0]["phase"] == "ground_truth"
        assert rows[1]["phase"] == "representatives"
        assert rows[0]["cycles"] == {"raster": 40, "shade": 60}
        assert rows[1]["cycles"] == {}
        assert rows[0]["draws"] == 100

    def test_orphaned_frame_gets_empty_phase(self):
        rows = frame_timeline([{
            "span_id": "f", "parent_id": "gone", "name": "simulate_frame",
            "category": "simgpu", "start_ns": 0, "duration_ns": 1,
            "args": {"frame": 7},
        }])
        assert rows == [{
            "frame": 7, "phase": "", "start_ns": 0, "duration_ns": 1,
            "draws": None, "time_ns": None, "cycles": {},
        }]

    def test_parent_cycle_terminates(self):
        # A malformed export where two spans parent each other must not
        # hang the phase walk.
        rows = frame_timeline([
            {"span_id": "a", "parent_id": "b", "name": "simulate_frame",
             "category": "simgpu", "start_ns": 0, "duration_ns": 1,
             "args": {"frame": 0}},
            {"span_id": "b", "parent_id": "a", "name": "loop",
             "category": "task", "start_ns": 0, "duration_ns": 1},
        ])
        assert rows[0]["phase"] == ""


class TestSpansPayload:
    def test_payload_over_a_jsonl_export(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            "\n".join(json.dumps(s) for s in _tree_spans()) + "\n"
        )
        payload = spans_payload(path)
        assert payload["num_spans"] == 5
        assert payload["flame"][0]["name"] == "cli:simulate"
        assert len(payload["frames"]) == 2
        rollup_names = {row["name"] for row in payload["rollup"]}
        assert "simulate_frame" in rollup_names


class TestBenchTrajectory:
    def test_collects_by_stem_and_reports_problems(self, tmp_path):
        (tmp_path / "BENCH_SWEEP.json").write_text('{"speedup": 3.0}')
        (tmp_path / "BENCH_BROKEN.json").write_text("{nope")
        (tmp_path / "NOT_A_BENCH.json").write_text("{}")
        payload = collect_benches(tmp_path)
        assert payload["benches"] == {"BENCH_SWEEP": {"speedup": 3.0}}
        assert len(payload["problems"]) == 1
        assert "BENCH_BROKEN.json" in payload["problems"][0]

    def test_empty_root(self, tmp_path):
        payload = collect_benches(tmp_path / "nothing")
        assert payload["benches"] == {}
        assert payload["problems"] == []
