"""Run manifests: digests match the cache's, seeds survive round trips."""

import json

from repro import __version__
from repro.obs.manifest import MANIFEST_VERSION, RunManifest, load_manifest
from repro.obs.metrics import Metrics
from repro.runtime.keys import config_digest, trace_digest
from repro.simgpu.config import GpuConfig


class TestCollect:
    def test_reproduces_cache_digests(self, simple_trace):
        config = GpuConfig.preset("mainstream")
        manifest = RunManifest.collect(
            "subset",
            configs={config.name: config},
            traces={simple_trace.name: simple_trace},
        )
        assert manifest.config_digests[config.name] == config_digest(config)
        assert manifest.trace_digests[simple_trace.name] == trace_digest(
            simple_trace
        )

    def test_records_seeds_and_environment(self):
        manifest = RunManifest.collect(
            "subset",
            argv=["subset", "t.json"],
            seeds={"pipeline": 7, "corpus": 42},
            jobs=4,
            duration_s=1.5,
        )
        assert manifest.seeds == {"pipeline": 7, "corpus": 42}
        assert manifest.argv == ("subset", "t.json")
        assert manifest.jobs == 4
        assert manifest.package_version == __version__
        assert manifest.host_cpu_count >= 1

    def test_metrics_snapshot_flattens(self):
        metrics = Metrics()
        metrics.inc("frames_simulated", 9, phase="ground")
        manifest = RunManifest.collect("simulate", metrics=metrics.snapshot())
        assert manifest.metrics["counters"][0]["value"] == 9


class TestRoundTrip:
    def test_write_and_load(self, tmp_path, simple_trace):
        config = GpuConfig.preset("lowpower")
        path = tmp_path / "run.json"
        RunManifest.collect(
            "validate",
            argv=["validate", "t.json", "s.json"],
            seeds={"pipeline": 0},
            configs={config.name: config},
            traces={simple_trace.name: simple_trace},
            cache_dir=tmp_path / "cache",
        ).write(path)

        loaded = load_manifest(path)
        assert loaded["manifest_version"] == MANIFEST_VERSION
        assert loaded["command"] == "validate"
        assert loaded["seeds"] == {"pipeline": 0}
        assert loaded["config_digests"][config.name] == config_digest(config)
        assert loaded["trace_digests"][simple_trace.name] == trace_digest(
            simple_trace
        )
        # The file is plain JSON, stable under re-serialization.
        assert json.loads(path.read_text()) == loaded
