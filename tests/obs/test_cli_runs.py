"""The run-store CLI: recording hooks, runs list/show/diff/regress, trace report."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.history import RunStore


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-runs") / "t.json"
    assert (
        main(
            [
                "generate", "--game", "bioshock1_like", "--frames", "5",
                "--scale", "0.05", "-o", str(path),
            ]
        )
        == 0
    )
    return path


def simulate(trace_file, store, *extra):
    return main(
        [
            "simulate", str(trace_file), "--no-cache",
            "--run-store", str(store), *extra,
        ]
    )


class TestRecordingHook:
    def test_simulate_appends_a_record(self, trace_file, tmp_path, capsys):
        store = tmp_path / "runs"
        assert simulate(trace_file, store) == 0
        capsys.readouterr()
        records = RunStore(store).records()
        assert len(records) == 1
        record = records[0]
        assert record.command == "simulate"
        assert record.metrics["counter:frames_simulated"] == 5.0
        assert record.stages  # stage rollups captured
        assert record.config_digests and record.trace_digests
        assert record.metrics["derived:duration_s"] > 0

    def test_consecutive_runs_append_never_overwrite(
        self, trace_file, tmp_path, capsys
    ):
        store = tmp_path / "runs"
        assert simulate(trace_file, store) == 0
        assert simulate(trace_file, store) == 0
        capsys.readouterr()
        assert len(RunStore(store).paths()) == 2

    def test_no_run_store_flag_disables(self, trace_file, tmp_path, capsys):
        store = tmp_path / "runs"
        assert simulate(trace_file, store, "--no-run-store") == 0
        capsys.readouterr()
        assert RunStore(store).paths() == []

    def test_env_var_disables_when_empty(
        self, trace_file, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_RUN_STORE", "")
        assert main(["simulate", str(trace_file), "--no-cache"]) == 0
        capsys.readouterr()

    def test_progress_flag_emits_lines(self, trace_file, tmp_path, capsys):
        store = tmp_path / "runs"
        assert simulate(trace_file, store, "--progress") == 0
        captured = capsys.readouterr()
        assert "[progress]" in captured.err
        assert "[progress]" not in captured.out


class TestRunsCommands:
    @pytest.fixture(scope="class")
    def store(self, trace_file, tmp_path_factory):
        store = tmp_path_factory.mktemp("store") / "runs"
        for _ in range(6):
            assert simulate(trace_file, store) == 0
        return store

    def test_list(self, store, capsys):
        capsys.readouterr()
        assert main(["runs", "list", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "simulate" in out
        assert out.count("\n") >= 6

    def test_list_json_shares_the_dashboard_contract(self, store, capsys):
        # `runs list --format json` and GET /v1/dash/runs are the same
        # payload builder; a script can swap one for the other.
        from repro.obs.dash import runs_payload

        capsys.readouterr()
        assert main(
            ["runs", "list", "--store", str(store), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == runs_payload(RunStore(store))
        assert payload["count"] == 6
        assert payload["commands"] == ["simulate"]
        row = payload["runs"][0]
        assert row["command"] == "simulate"
        assert row["frames_simulated"] == 5.0
        assert row["duration_s"] > 0

    def test_list_json_respects_filters(self, store, capsys):
        capsys.readouterr()
        assert main(
            [
                "runs", "list", "--store", str(store),
                "--format", "json", "--limit", "2",
            ]
        ) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 2

    def test_list_command_filter(self, store, capsys):
        capsys.readouterr()
        assert main(
            ["runs", "list", "--store", str(store), "--command", "sweep"]
        ) == 0
        assert "no run records" in capsys.readouterr().out

    def test_show_newest(self, store, capsys):
        capsys.readouterr()
        assert main(["runs", "show", "--store", str(store), "--", "-1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "simulate"
        assert payload["metrics"]["counter:frames_simulated"] == 5.0

    def test_diff(self, store, capsys):
        capsys.readouterr()
        assert main(
            ["runs", "diff", "--store", str(store), "--", "-2", "-1"]
        ) == 0
        out = capsys.readouterr().out
        assert "counter:frames_simulated" in out
        assert "+0.0%" in out  # deterministic counter: no drift

    def test_regress_clean_passes(self, store, capsys):
        # Gate the deterministic counter series only (the CI
        # invocation): six identical runs of a tiny trace have genuinely
        # noisy wall-times, so the timing prongs can fire for real.
        capsys.readouterr()
        assert main(
            ["runs", "regress", "--store", str(store), "--window", "5",
             "--select", "counter:*"]
        ) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regress_detects_counter_drift(self, store, tmp_path, capsys):
        # Copy the store, then append a record with a counter that
        # drifted: the gate must fail and name the series.
        import shutil

        drifted = tmp_path / "drifted"
        shutil.copytree(store, drifted)
        newest = RunStore(drifted).records()[-1]
        bad_metrics = dict(newest.metrics)
        bad_metrics["counter:frames_simulated"] = 999.0
        from dataclasses import replace

        # Bump created_unix: records() orders by (created_unix, run_id),
        # and reusing the newest stamp makes the tiebreak depend on how
        # "driftrun0001" sorts against a random hex id — the drifted
        # record must be the gated "current" run every time.
        RunStore(drifted).append(
            replace(
                newest,
                run_id="driftrun0001",
                created_unix=newest.created_unix + 1.0,
                metrics=bad_metrics,
            )
        )
        capsys.readouterr()
        assert main(
            [
                "runs", "regress", "--store", str(drifted),
                "--window", "5", "--select", "counter:*",
            ]
        ) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "counter:frames_simulated" in out

    def test_regress_github_format(self, store, tmp_path, capsys):
        capsys.readouterr()
        assert main(
            [
                "runs", "regress", "--store", str(store),
                "--window", "5", "--format", "github",
                "--select", "counter:*",
            ]
        ) == 0
        assert "::error" not in capsys.readouterr().out

    def test_regress_json_format(self, store, capsys):
        capsys.readouterr()
        assert main(
            [
                "runs", "regress", "--store", str(store),
                "--window", "5", "--format", "json",
                "--select", "counter:*",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["checked"] >= 1

    def test_regress_needs_enough_runs(self, trace_file, tmp_path, capsys):
        store = tmp_path / "thin"
        assert simulate(trace_file, store) == 0
        capsys.readouterr()
        assert main(["runs", "regress", "--store", str(store)]) == 1
        assert "need more than" in capsys.readouterr().err

    def test_empty_store_errors_cleanly(self, tmp_path, capsys):
        assert main(
            ["runs", "list", "--store", str(tmp_path / "none")]
        ) == 0
        assert "no run records" in capsys.readouterr().out
        assert main(
            ["runs", "show", "--store", str(tmp_path / "none"), "--", "-1"]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestTraceReport:
    def test_report_from_cli_export(self, trace_file, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        assert main(
            [
                "simulate", str(trace_file), "--no-cache",
                "--no-run-store", "--trace-out", str(spans),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "report", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "span hotspots" in out
        assert "cli:simulate" in out
        assert "self s" in out

    def test_sort_and_limit(self, trace_file, tmp_path, capsys):
        spans = tmp_path / "spans.jsonl"
        assert main(
            [
                "simulate", str(trace_file), "--no-cache",
                "--no-run-store", "--trace-out", str(spans),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["trace", "report", str(spans), "--sort", "total", "--limit", "1"]
        ) == 0
        out = capsys.readouterr().out
        # Sorted by total time: the CLI root span dominates.
        assert "cli:simulate" in out

    def test_bad_file_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{broken\n")
        assert main(["trace", "report", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_json_format_is_the_dash_spans_payload(
        self, trace_file, tmp_path, capsys
    ):
        # `trace report --format json` and GET /v1/dash/runs/{ref}/spans
        # share spans_payload; scripts can consume either identically.
        from repro.obs.dash import spans_payload

        spans = tmp_path / "spans.jsonl"
        assert main(
            [
                "simulate", str(trace_file), "--no-cache",
                "--no-run-store", "--trace-out", str(spans),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["trace", "report", str(spans), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == spans_payload(spans)
        assert payload["num_spans"] > 0
        assert payload["flame"] and payload["rollup"]


class TestRunsShowArtifacts:
    def test_subset_run_records_and_lists_sidecar(
        self, trace_file, tmp_path, capsys
    ):
        store = tmp_path / "runs"
        assert main(
            [
                "subset", str(trace_file), "--preset", "mainstream",
                "--run-store", str(store),
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["runs", "show", "-1", "--store", str(store), "--artifacts"]
        ) == 0
        out = capsys.readouterr().out
        assert "artifacts:" in out
        for section in ("clusters", "fidelity", "subset"):
            assert section in out

    def test_simulate_run_reports_no_sidecar(self, trace_file, tmp_path, capsys):
        store = tmp_path / "runs"
        assert simulate(trace_file, store) == 0
        capsys.readouterr()
        assert main(
            ["runs", "show", "-1", "--store", str(store), "--artifacts"]
        ) == 0
        assert "artifacts: none" in capsys.readouterr().out
