"""The append-only run store: round-trips, append semantics, queries."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.obs.history import (
    RUN_STORE_VERSION,
    RunRecord,
    RunStore,
    collect_record,
    default_store_dir,
    flatten_metrics,
    record_run,
)
from repro.obs.metrics import Metrics
from repro.runtime.telemetry import Telemetry


def make_record(run_id="abc123def456", created=1000.0, command="simulate",
                **overrides):
    kwargs = dict(
        run_id=run_id,
        created_unix=created,
        command=command,
        argv=("simulate", "t.jsonl"),
        git_sha="deadbeef",
        environment={"python_version": "3.12.0"},
        jobs=2,
        seeds={"pipeline": 1234},
        config_digests={"mainstream": "aa" * 32},
        trace_digests={"t": "bb" * 32},
        metrics={"counter:frames_simulated": 24.0, "stage:simulate": 0.5},
        stages={"simulate": 0.5},
        top_stages={"simulate": 0.5},
    )
    kwargs.update(overrides)
    return RunRecord(**kwargs)


class TestRecordRoundTrip:
    def test_to_from_dict_round_trips(self):
        record = make_record()
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record

    def test_version_mismatch_rejected(self):
        data = make_record().to_dict()
        data["run_store_version"] = RUN_STORE_VERSION + 1
        with pytest.raises(ValidationError, match="version"):
            RunRecord.from_dict(data)

    def test_all_series_merges_stage_prefix(self):
        record = make_record(
            metrics={"counter:x": 1.0}, stages={"cluster": 2.0}
        )
        series = record.all_series()
        assert series == {"counter:x": 1.0, "stage:cluster": 2.0}


class TestAppendOnly:
    def test_two_appends_never_overwrite(self, tmp_path):
        # Identical timestamps and run ids — the worst case — must still
        # land in two distinct files.
        store = RunStore(tmp_path / "runs")
        record = make_record()
        path_a = store.append(record)
        path_b = store.append(record)
        assert path_a != path_b
        assert len(store.paths()) == 2

    def test_consecutive_record_run_calls_append(self, tmp_path):
        # The acceptance-criteria shape: two invocations of the shared
        # hook grow the store, never replace.
        store_dir = tmp_path / "runs"
        for _ in range(2):
            path = record_run(
                "bench:overhead",
                store=store_dir,
                metrics={"gauge:overhead_pct": 1.0},
            )
            assert path is not None
        records = RunStore(store_dir).records()
        assert len(records) == 2
        assert records[0].run_id != records[1].run_id

    def test_filenames_sort_by_creation_time(self, tmp_path):
        store = RunStore(tmp_path)
        store.append(make_record(run_id="late", created=2000.0))
        store.append(make_record(run_id="early", created=1000.0))
        loaded = store.records()
        assert [r.run_id for r in loaded] == ["early", "late"]


class TestQueries:
    def _store(self, tmp_path):
        store = RunStore(tmp_path)
        for i in range(5):
            store.append(
                make_record(run_id=f"sim{i}sim{i}", created=1000.0 + i)
            )
        store.append(make_record(
            run_id="sweeprun0000", created=2000.0, command="sweep"
        ))
        return store

    def test_command_filter(self, tmp_path):
        store = self._store(tmp_path)
        assert len(store.records(command="simulate")) == 5
        assert len(store.records(command="sweep")) == 1

    def test_limit_keeps_newest(self, tmp_path):
        store = self._store(tmp_path)
        window = store.records(command="simulate", limit=2)
        assert [r.run_id for r in window] == ["sim3sim3", "sim4sim4"]

    def test_limit_larger_than_store_returns_all(self, tmp_path):
        store = self._store(tmp_path)
        assert len(store.records(command="sweep", limit=10)) == 1

    def test_resolve_by_index_and_prefix(self, tmp_path):
        store = self._store(tmp_path)
        assert store.resolve("-1").run_id == "sweeprun0000"
        assert store.resolve("sim2").run_id == "sim2sim2"

    def test_resolve_errors(self, tmp_path):
        store = self._store(tmp_path)
        with pytest.raises(ValidationError, match="no run record"):
            store.resolve("zzz")
        with pytest.raises(ValidationError, match="ambiguous"):
            store.resolve("sim")
        with pytest.raises(ValidationError, match="out of range"):
            store.resolve("-100")
        with pytest.raises(ValidationError, match="empty"):
            RunStore(tmp_path / "nothing").resolve("-1")

    def test_ambiguous_prefix_names_the_candidates(self, tmp_path):
        # The error must show which runs matched, so the caller can
        # extend the prefix without a second listing round-trip.
        store = self._store(tmp_path)
        with pytest.raises(ValidationError, match="sim0sim0") as info:
            store.resolve("sim")
        message = str(info.value)
        assert "5 matches" in message
        for i in range(5):
            assert f"sim{i}sim{i}" in message

    def test_ambiguous_prefix_truncates_long_candidate_lists(self, tmp_path):
        store = RunStore(tmp_path)
        for i in range(12):
            store.append(make_record(run_id=f"aa{i:02d}aa{i:02d}aaaa"))
        with pytest.raises(ValidationError, match=r"\.\.\. \+4 more"):
            store.resolve("aa")

    def test_foreign_json_skipped(self, tmp_path):
        store = self._store(tmp_path)
        (tmp_path / "zz-not-a-record.json").write_text("{\"x\": 1}")
        (tmp_path / "zz-not-json.json").write_text("not json at all")
        assert len(store.records()) == 6


class TestCollection:
    def test_flatten_metrics_naming_scheme(self):
        metrics = Metrics()
        metrics.inc("frames_simulated", 3, phase="a")
        metrics.inc("frames_simulated", 4, phase="b")
        metrics.gauge("subset_error", 0.02)
        metrics.observe("task_wall_s", 0.5)
        flat = flatten_metrics(metrics.snapshot())
        assert flat["counter:frames_simulated"] == 7.0
        assert flat["counter:frames_simulated{phase=a}"] == 3.0
        assert flat["gauge:subset_error"] == 0.02
        assert flat["hist:task_wall_s:count"] == 1.0
        assert flat["hist:task_wall_s:mean"] == 0.5

    def test_flatten_metrics_labeled_histograms(self):
        # Labeled histogram series flatten to one mean/count pair per
        # label set — the shape the dashboard's requests-by-route table
        # reads off service_request_duration_s{route,status}.
        metrics = Metrics()
        metrics.observe("req_s", 0.2, route="/v1/dash/runs", status="200")
        metrics.observe("req_s", 0.4, route="/v1/dash/runs", status="200")
        metrics.observe("req_s", 0.1, route="/v1/jobs", status="503")
        flat = flatten_metrics(metrics.snapshot())
        key = "hist:req_s{route=/v1/dash/runs,status=200}"
        assert flat[f"{key}:count"] == 2.0
        assert flat[f"{key}:mean"] == pytest.approx(0.3)
        other = "hist:req_s{route=/v1/jobs,status=503}"
        assert flat[f"{other}:count"] == 1.0
        assert flat[f"{other}:mean"] == pytest.approx(0.1)
        # Label order is canonical: no duplicate series under reordering.
        metrics.observe("req_s", 0.6, status="200", route="/v1/dash/runs")
        flat = flatten_metrics(metrics.snapshot())
        assert flat[f"{key}:count"] == 3.0

    def test_collect_record_derives_rates(self):
        telemetry = Telemetry()
        telemetry.count("cache_hits", 3)
        telemetry.count("cache_misses", 1)
        telemetry.count("frames_simulated", 100)
        record = collect_record(
            "simulate", telemetry=telemetry, duration_s=2.0
        )
        assert record.metrics["derived:cache_hit_rate"] == 0.75
        assert record.metrics["derived:frames_per_s"] == 50.0
        assert record.metrics["derived:duration_s"] == 2.0

    def test_collect_record_stage_rollups(self):
        telemetry = Telemetry()
        with telemetry.timer("outer"):
            with telemetry.timer("inner"):
                pass
        record = collect_record("simulate", telemetry=telemetry)
        assert set(record.stages) == {"outer", "inner"}
        assert set(record.top_stages) == {"outer"}
        assert record.all_series()["stage:outer"] == record.stages["outer"]

    def test_explicit_metrics_win_over_telemetry(self):
        telemetry = Telemetry()
        telemetry.count("frames_simulated", 5)
        record = collect_record(
            "bench", telemetry=telemetry,
            metrics={"counter:frames_simulated": 99.0},
        )
        assert record.metrics["counter:frames_simulated"] == 99.0


class TestEnvOverride:
    def test_env_set_but_empty_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_STORE", "  ")
        assert default_store_dir() is None
        assert record_run("simulate", metrics={}) is None

    def test_env_points_store_elsewhere(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_STORE", str(tmp_path / "alt"))
        path = record_run("simulate", metrics={"counter:x": 1.0})
        assert path is not None
        assert path.parent == tmp_path / "alt"

    def test_store_write_failure_is_swallowed(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the store dir should go")
        assert record_run("simulate", store=blocker, metrics={}) is None

    def test_record_files_are_valid_json(self, tmp_path):
        path = record_run(
            "simulate", store=tmp_path, metrics={"counter:x": 1.0}
        )
        data = json.loads(path.read_text())
        assert data["run_store_version"] == RUN_STORE_VERSION
        assert data["command"] == "simulate"
        assert "python_version" in data["environment"]
