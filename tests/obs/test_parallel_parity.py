"""Parallel runs must observe the same workload the serial run does.

The chunking differs (serial submits one task per stage, ``jobs=N``
submits many), but the *workload* counters and the per-frame simulator
spans are chunk-independent: same frames simulated, same frames
clustered, same ``simulate_frame`` span count — and every worker span
stitches into the parent hierarchy via its shipped parent span id.
"""

import os

import pytest

from repro.core.pipeline import SubsettingPipeline
from repro.obs.spans import Tracer
from repro.runtime.engine import Runtime
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.profiles import GameProfile

SMALL = GameProfile.preset("bioshock1_like").scaled(0.05)
WORKLOAD_COUNTERS = ("frames_simulated", "frames_clustered")


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(SMALL, seed=17).generate(num_frames=8)


@pytest.fixture(scope="module")
def config():
    return GpuConfig.preset("mainstream")


def _run(trace, config, jobs):
    runtime = Runtime(jobs=jobs, tracer=Tracer())
    SubsettingPipeline().run(trace, config, runtime=runtime)
    return runtime


class TestParallelObservabilityParity:
    def test_workload_counters_and_span_counts_match(self, trace, config):
        serial = _run(trace, config, jobs=1)
        parallel = _run(trace, config, jobs=4)

        serial_counts = serial.snapshot().counters
        parallel_counts = parallel.snapshot().counters
        for name in WORKLOAD_COUNTERS:
            assert parallel_counts[name] == serial_counts[name], name

        def count(runtime, name):
            return sum(1 for s in runtime.tracer.spans() if s.name == name)

        for name in ("simulate_frame", "pipeline", "ground_truth"):
            assert count(parallel, name) == count(serial, name), name

    def test_labeled_phase_totals_match(self, trace, config):
        serial = _run(trace, config, jobs=1)
        parallel = _run(trace, config, jobs=4)
        for phase in ("ground_truth", "representatives"):
            assert parallel.metrics.counter_value(
                "frames_simulated", phase=phase
            ) == serial.metrics.counter_value("frames_simulated", phase=phase)

    def test_worker_spans_ship_and_stitch(self, trace, config):
        parallel = _run(trace, config, jobs=4)
        spans = parallel.tracer.spans()
        parent_pid = os.getpid()
        worker_spans = [s for s in spans if s.pid != parent_pid]
        assert worker_spans, "jobs=4 must record spans in worker processes"
        known_ids = {s.span_id for s in spans}
        for span in worker_spans:
            if span.category == "task":
                # Worker task roots point at a parent-process span.
                assert span.parent_id in known_ids
                assert span.parent_id.split("-")[0] == str(parent_pid)

    def test_serial_records_no_foreign_pids(self, trace, config):
        serial = _run(trace, config, jobs=1)
        assert {s.pid for s in serial.tracer.spans()} == {os.getpid()}
