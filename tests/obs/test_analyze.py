"""Regression gates: sensitivity, zero false positives, span rollups."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs.analyze import (
    compare_to_baseline,
    diff_records,
    load_spans_jsonl,
    render_regressions,
    render_rollup,
    rollup_spans,
    series_direction,
)
from repro.obs.history import RunRecord
from repro.util.stats import mann_whitney_u

#: Realistic run-to-run timing noise: ~2% relative sigma.
NOISE_SIGMA = 0.02


def synth_record(rng, run_id, *, stage_scale=1.0, fps_scale=1.0,
                 frames=2400.0, command="simulate"):
    """A synthetic run record with noisy stage times around a nominal."""
    def noisy(nominal):
        return float(nominal * rng.normal(1.0, NOISE_SIGMA))

    stages = {
        "simulate": noisy(2.0) * stage_scale,
        "cluster": noisy(0.8),
    }
    metrics = {
        "counter:frames_simulated": frames,
        "counter:cache_hits": 3.0,
        "counter:cache_misses": 1.0,
        "derived:cache_hit_rate": 0.75,
        "derived:frames_per_s": noisy(800.0) * fps_scale,
        "gauge:subset_error": abs(noisy(0.02)),
    }
    return RunRecord(
        run_id=run_id,
        created_unix=1000.0,
        command=command,
        metrics=metrics,
        stages=stages,
        top_stages=stages,
    )


def baseline_window(rng, n=5):
    return [synth_record(rng, f"base{i:08d}") for i in range(n)]


class TestAcceptanceCriteria:
    """ISSUE acceptance: 1.5x slowdown detected, zero FP in 20 clean runs."""

    def test_injected_1_5x_stage_slowdown_detected(self):
        rng = np.random.default_rng(42)
        baseline = baseline_window(rng, n=5)
        slow = synth_record(rng, "slowrun00001", stage_scale=1.5)
        report = compare_to_baseline(slow, baseline)
        regressed = {r.metric for r in report.regressions}
        assert "stage:simulate" in regressed
        assert not report.passed

    def test_zero_false_positives_across_20_clean_reruns(self):
        rng = np.random.default_rng(42)
        baseline = baseline_window(rng, n=5)
        for i in range(20):
            clean = synth_record(rng, f"clean{i:07d}")
            report = compare_to_baseline(clean, baseline)
            assert report.passed, (
                f"clean re-run {i} tripped the gate: "
                f"{[r.metric for r in report.regressions]}"
            )

    def test_detection_holds_across_seeds(self):
        # The gate's sensitivity is not an artifact of one lucky seed.
        for seed in range(10):
            rng = np.random.default_rng(seed)
            baseline = baseline_window(rng, n=5)
            slow = synth_record(rng, "slowrun00001", stage_scale=1.5)
            report = compare_to_baseline(slow, baseline)
            assert "stage:simulate" in {
                r.metric for r in report.regressions
            }, f"seed {seed} missed the 1.5x slowdown"


class TestGateMechanics:
    def test_throughput_drop_detected_as_worse_low(self):
        rng = np.random.default_rng(7)
        baseline = baseline_window(rng, n=5)
        slow = synth_record(rng, "slowfps00001", fps_scale=0.6)
        report = compare_to_baseline(slow, baseline)
        assert "derived:frames_per_s" in {
            r.metric for r in report.regressions
        }

    def test_counter_drift_detected_both_directions(self):
        rng = np.random.default_rng(7)
        baseline = baseline_window(rng, n=5)
        fewer = synth_record(rng, "fewframes001", frames=1200.0)
        report = compare_to_baseline(fewer, baseline)
        assert "counter:frames_simulated" in {
            r.metric for r in report.regressions
        }

    def test_within_threshold_shift_passes(self):
        rng = np.random.default_rng(7)
        baseline = baseline_window(rng, n=5)
        mild = synth_record(rng, "mildrun00001", stage_scale=1.05)
        report = compare_to_baseline(mild, baseline)
        assert report.passed

    def test_over_threshold_inside_noise_band_passes(self):
        # Threshold prong fires but the extreme-rank prong holds it back:
        # current is over threshold yet not beyond every baseline sample.
        baseline_vals = [1.0, 1.0, 1.0, 1.0, 2.0]
        baseline = [
            RunRecord(
                run_id=f"b{i:011d}", created_unix=0.0, command="x",
                stages={"s": v},
            )
            for i, v in enumerate(baseline_vals)
        ]
        current = RunRecord(
            run_id="c00000000001", created_unix=1.0, command="x",
            stages={"s": 1.5},
        )
        report = compare_to_baseline(current, baseline)
        (result,) = report.results
        assert result.verdict == "ok"
        assert "noise" in result.reason

    def test_small_baseline_skipped_not_gated(self):
        rng = np.random.default_rng(3)
        baseline = baseline_window(rng, n=2)
        current = synth_record(rng, "current00001", stage_scale=3.0)
        report = compare_to_baseline(current, baseline)
        assert report.passed
        assert all(r.verdict == "skipped" for r in report.results)

    def test_current_window_upgrades_to_mann_whitney(self):
        rng = np.random.default_rng(11)
        baseline = baseline_window(rng, n=5)
        current = [
            synth_record(rng, f"cur{i:09d}", stage_scale=1.5)
            for i in range(3)
        ]
        report = compare_to_baseline(current, baseline)
        by_name = {r.metric: r for r in report.results}
        result = by_name["stage:simulate"]
        assert result.verdict == "regression"
        assert result.p_value is not None
        assert result.p_value <= 0.05

    def test_select_globs_restrict_gating(self):
        rng = np.random.default_rng(5)
        baseline = baseline_window(rng, n=5)
        slow = synth_record(rng, "slowrun00001", stage_scale=1.5)
        report = compare_to_baseline(slow, baseline, select=["counter:*"])
        assert all(r.metric.startswith("counter:") for r in report.results)
        assert report.passed

    def test_progress_gauges_never_gated(self):
        record = RunRecord(
            run_id="p0000000001", created_unix=0.0, command="x",
            metrics={"gauge:progress_eta_s": 5.0},
        )
        baseline = [
            RunRecord(
                run_id=f"b{i:011d}", created_unix=0.0, command="x",
                metrics={"gauge:progress_eta_s": 100.0},
            )
            for i in range(5)
        ]
        report = compare_to_baseline(record, baseline)
        assert not report.results

    def test_zero_baseline_appearance_regresses(self):
        baseline = [
            RunRecord(
                run_id=f"b{i:011d}", created_unix=0.0, command="x",
                metrics={"counter:cache_misses": 0.0},
            )
            for i in range(5)
        ]
        current = RunRecord(
            run_id="c00000000001", created_unix=1.0, command="x",
            metrics={"counter:cache_misses": 4.0},
        )
        report = compare_to_baseline(current, baseline)
        (result,) = report.results
        assert result.verdict == "regression"

    def test_empty_current_window_rejected(self):
        with pytest.raises(ValidationError, match="at least one"):
            compare_to_baseline([], [])

    def test_direction_table(self):
        assert series_direction("stage:simulate") == "worse_high"
        assert series_direction("derived:frames_per_s") == "worse_low"
        assert series_direction("derived:cache_hit_rate") == "worse_low"
        assert series_direction("gauge:subset_error") == "worse_high"
        assert series_direction("counter:tasks_run") == "both"
        assert series_direction("gauge:progress_eta_s") is None
        assert series_direction("hist:task_wall_s:count") is None
        assert series_direction("gauge:unknown_thing") is None


class TestMannWhitney:
    def test_matches_known_value(self):
        # Worked example: clearly separated samples.
        xs = [10.0, 11.0, 12.0, 13.0, 14.0]
        ys = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = mann_whitney_u(xs, ys, alternative="greater")
        assert result.u_statistic == 25.0
        assert result.p_value < 0.01

    def test_identical_samples_not_significant(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = mann_whitney_u(xs, xs, alternative="two-sided")
        assert result.p_value > 0.5

    def test_alternative_validated(self):
        with pytest.raises(ValidationError):
            mann_whitney_u([1.0], [2.0], alternative="sideways")


class TestDiffAndRender:
    def _report(self):
        rng = np.random.default_rng(1)
        baseline = baseline_window(rng, n=5)
        slow = synth_record(rng, "slowrun00001", stage_scale=1.5)
        return compare_to_baseline(slow, baseline)

    def test_diff_records_rows(self):
        rng = np.random.default_rng(1)
        a = synth_record(rng, "a00000000001")
        b = synth_record(rng, "b00000000001")
        rows = diff_records(a, b)
        names = [name for name, *_ in rows]
        assert names == sorted(names)
        by_name = dict((name, rest) for name, *rest in rows)
        va, vb, delta = by_name["counter:frames_simulated"]
        assert va == vb == 2400.0
        assert delta == 0.0

    def test_diff_handles_one_sided_series(self):
        a = RunRecord(run_id="a" * 12, created_unix=0.0, command="x",
                      metrics={"counter:only_a": 1.0})
        b = RunRecord(run_id="b" * 12, created_unix=0.0, command="x",
                      metrics={"counter:only_b": 2.0})
        rows = dict((name, (va, vb, d)) for name, va, vb, d in
                    diff_records(a, b))
        assert rows["counter:only_a"] == (1.0, None, None)
        assert rows["counter:only_b"] == (None, 2.0, None)

    def test_text_format(self):
        text = render_regressions("text", self._report())
        assert "FAIL" in text
        assert "stage:simulate" in text

    def test_json_format_parses(self):
        payload = json.loads(render_regressions("json", self._report()))
        assert payload["passed"] is False
        metrics = [r["metric"] for r in payload["results"]
                   if r["verdict"] == "regression"]
        assert "stage:simulate" in metrics

    def test_github_format(self):
        out = render_regressions("github", self._report())
        assert "::error title=perf regression::" in out

    def test_unknown_format_rejected(self):
        with pytest.raises(ValidationError, match="unknown format"):
            render_regressions("yaml", self._report())


class TestSpanRollup:
    def _spans(self):
        return [
            {"span_id": "root", "parent_id": None, "name": "pipeline",
             "category": "cli", "duration_ns": 1_000_000_000},
            {"span_id": "c1", "parent_id": "root", "name": "simulate",
             "category": "stage", "duration_ns": 600_000_000},
            {"span_id": "c2", "parent_id": "root", "name": "cluster",
             "category": "stage", "duration_ns": 300_000_000},
            {"span_id": "g1", "parent_id": "c1", "name": "frame",
             "category": "task", "duration_ns": 250_000_000},
            {"span_id": "g2", "parent_id": "c1", "name": "frame",
             "category": "task", "duration_ns": 250_000_000},
        ]

    def test_self_time_subtracts_direct_children(self):
        rollups = {r.name: r for r in rollup_spans(self._spans())}
        assert rollups["pipeline"].self_s == pytest.approx(0.1)
        assert rollups["simulate"].self_s == pytest.approx(0.1)
        assert rollups["cluster"].self_s == pytest.approx(0.3)
        assert rollups["frame"].count == 2
        assert rollups["frame"].total_s == pytest.approx(0.5)

    def test_child_overshoot_floors_at_zero(self):
        spans = [
            {"span_id": "p", "parent_id": None, "name": "parent",
             "category": "", "duration_ns": 100},
            {"span_id": "c", "parent_id": "p", "name": "child",
             "category": "", "duration_ns": 150},
        ]
        rollups = {r.name: r for r in rollup_spans(spans)}
        assert rollups["parent"].self_s == 0.0

    def test_sorted_by_self_time_desc(self):
        names = [r.name for r in rollup_spans(self._spans())]
        assert names[0] == "frame"  # 0.5s self (no children)

    def test_render_rollup_table(self):
        text = render_rollup(rollup_spans(self._spans()), limit=2)
        assert "span" in text
        assert "frame" in text
        assert "pipeline" not in text  # beyond the limit
        with pytest.raises(ValidationError, match="unknown sort"):
            render_rollup([], sort="name")

    def test_load_spans_jsonl(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        lines = [json.dumps(s) for s in self._spans()]
        path.write_text("\n".join(lines) + "\n\n")
        assert len(load_spans_jsonl(path)) == 5

        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_spans_jsonl(bad)

        nospan = tmp_path / "nospan.jsonl"
        nospan.write_text('{"name": "x"}\n')
        with pytest.raises(ValidationError, match="span_id"):
            load_spans_jsonl(nospan)


class TestSpanRollupPathological:
    """Malformed exports must degrade, never crash or go negative."""

    def test_zero_duration_parent_with_real_children_floors(self):
        # A zero-duration parent whose children report time anyway (a
        # worker-clock artifact): self time floors at 0, totals keep
        # the children's view.
        spans = [
            {"span_id": "p", "parent_id": None, "name": "parent",
             "category": "", "duration_ns": 0},
            {"span_id": "c1", "parent_id": "p", "name": "child",
             "category": "", "duration_ns": 500},
            {"span_id": "c2", "parent_id": "p", "name": "child",
             "category": "", "duration_ns": 0},
        ]
        rollups = {r.name: r for r in rollup_spans(spans)}
        assert rollups["parent"].self_s == 0.0
        assert rollups["parent"].total_s == 0.0
        assert rollups["child"].count == 2
        assert rollups["child"].min_s == 0.0
        assert rollups["child"].total_s == pytest.approx(5e-7)

    def test_all_zero_duration_trace(self):
        spans = [
            {"span_id": f"s{i}", "parent_id": None, "name": "tick",
             "category": "", "duration_ns": 0}
            for i in range(4)
        ]
        (rollup,) = rollup_spans(spans)
        assert rollup.count == 4
        assert rollup.total_s == rollup.self_s == rollup.mean_s == 0.0

    def test_orphaned_parent_charges_no_one(self):
        # The child's parent_id names a span the export dropped: its
        # duration must not be subtracted from any surviving span, and
        # every span still lands in exactly one rollup row.
        spans = [
            {"span_id": "root", "parent_id": None, "name": "root",
             "category": "", "duration_ns": 1000},
            {"span_id": "lost", "parent_id": "never-exported",
             "name": "stray", "category": "", "duration_ns": 400},
        ]
        rollups = {r.name: r for r in rollup_spans(spans)}
        assert rollups["root"].self_s == pytest.approx(1e-6)
        assert rollups["stray"].self_s == pytest.approx(4e-7)

    def test_orphans_are_what_validate_chrome_trace_flags(self):
        # The same pathology, seen end to end: an export that drops a
        # parent produces exactly the orphan warning the validator
        # documents, while the rollup still accounts for the span.
        from repro.obs.export import chrome_trace_document, validate_chrome_trace
        from repro.obs.spans import Span

        orphan = Span(
            span_id="lost", parent_id="never-exported", name="stray",
            category="task", start_ns=0, duration_ns=400, pid=1, tid=1,
        )
        document = chrome_trace_document([orphan])
        problems = validate_chrome_trace(document)
        assert len(problems) == 1
        assert "orphaned span" in problems[0]
        assert rollup_spans([orphan.to_dict()])[0].self_s == pytest.approx(4e-7)
