"""Chrome trace validation edge cases and JSON-safe argument export."""

from __future__ import annotations

import json

import numpy as np

from repro.obs.export import (
    chrome_trace_document,
    validate_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.spans import Span


def make_span(span_id="s1", parent_id=None, start_ns=1000, duration_ns=500,
              **args):
    return Span(
        span_id=span_id,
        parent_id=parent_id,
        name=f"span-{span_id}",
        category="test",
        start_ns=start_ns,
        duration_ns=duration_ns,
        pid=100,
        tid=1,
        args=dict(args),
    )


class TestValidatorShape:
    def test_valid_document_has_no_problems(self):
        document = chrome_trace_document(
            [make_span("a"), make_span("b", parent_id="a")]
        )
        assert validate_chrome_trace(document) == []

    def test_non_dict_document(self):
        assert validate_chrome_trace([1, 2, 3]) == [
            "document must be a JSON object, got list"
        ]

    def test_missing_trace_events(self):
        assert validate_chrome_trace({"other": 1}) == [
            "document must contain a 'traceEvents' list"
        ]

    def test_empty_span_list_flagged(self):
        document = chrome_trace_document([])
        problems = validate_chrome_trace(document)
        assert problems == ["'traceEvents' is empty"]

    def test_non_object_event(self):
        problems = validate_chrome_trace({"traceEvents": ["zap"]})
        assert any("not an object" in p for p in problems)

    def test_missing_phase(self):
        problems = validate_chrome_trace({"traceEvents": [{"name": "x"}]})
        assert any("missing 'ph'" in p for p in problems)


class TestValidatorTimestamps:
    def test_negative_timestamp_flagged(self):
        document = chrome_trace_document([make_span("a", start_ns=-5_000)])
        problems = validate_chrome_trace(document)
        assert any("'ts'" in p and "non-negative" in p for p in problems)

    def test_non_numeric_duration_flagged(self):
        document = chrome_trace_document([make_span("a")])
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                event["dur"] = "fast"
        problems = validate_chrome_trace(document)
        assert any("'dur'" in p for p in problems)

    def test_non_integer_pid_tid_flagged(self):
        document = chrome_trace_document([make_span("a")])
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                event["pid"] = "one hundred"
        problems = validate_chrome_trace(document)
        assert any("'pid'" in p for p in problems)


class TestValidatorOrphans:
    def test_orphaned_parent_id_flagged(self):
        # Child points at a span id no event in the document carries —
        # the export dropped the parent.
        document = chrome_trace_document(
            [make_span("child", parent_id="vanished")]
        )
        problems = validate_chrome_trace(document)
        assert any("orphaned span" in p for p in problems)
        assert any("vanished" in p for p in problems)

    def test_root_spans_are_not_orphans(self):
        document = chrome_trace_document([make_span("root", parent_id=None)])
        assert validate_chrome_trace(document) == []

    def test_cross_process_parent_resolves(self):
        # Worker spans carry parents recorded by the coordinating process;
        # as long as the parent event is in the same document it resolves.
        parent = make_span("coord")
        child = make_span("wrk", parent_id="coord")
        child.pid = 999  # simulate a worker-process span
        document = chrome_trace_document([parent, child])
        assert validate_chrome_trace(document) == []


class TestJsonSafety:
    def test_numpy_args_coerced(self, tmp_path):
        span = make_span(
            "np",
            radius=np.float64(0.16),
            frames=np.int32(24),
            vector=np.arange(3),
            flags={"full": np.bool_(True)},
        )
        document = chrome_trace_document([span])
        # The whole document must survive a strict JSON round-trip.
        payload = json.loads(json.dumps(document))
        args = [e for e in payload["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["radius"] == 0.16
        assert args["frames"] == 24
        assert args["vector"] == [0.0, 1.0, 2.0]
        assert args["flags"]["full"] in (True, 1.0)

        path = tmp_path / "spans.jsonl"
        write_spans_jsonl([span], path)
        line = json.loads(path.read_text().splitlines()[0])
        assert line["args"]["radius"] == 0.16

    def test_unconvertible_objects_become_strings(self):
        class Opaque:
            def __repr__(self):
                return "<opaque thing>"

        document = chrome_trace_document([make_span("o", thing=Opaque())])
        payload = json.loads(json.dumps(document))
        args = [e for e in payload["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["thing"] == "<opaque thing>"
        assert validate_chrome_trace(payload) == []
