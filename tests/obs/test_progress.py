"""Progress telemetry: reporter lines, gauges, engine integration."""

from __future__ import annotations

import io

from repro.obs.metrics import Metrics
from repro.obs.progress import NULL_PROGRESS, NullProgress, ProgressReporter
from repro.runtime.engine import Runtime, TaskEngine
from repro.runtime.tasks import Task, TaskResult, task_function
from repro.runtime.telemetry import Telemetry


@task_function("progress.noop")
def _noop(context, payload, deps):
    if context is not None:
        context.telemetry.count("frames_simulated", int(payload))
    return TaskResult(payload)


class TestNullProgress:
    def test_disabled_and_blocking(self):
        assert NULL_PROGRESS.enabled is False
        # None timeout keeps the pool wait blocking exactly as before.
        assert NULL_PROGRESS.heartbeat_interval_s is None

    def test_callbacks_are_noops(self):
        null = NullProgress()
        null.begin(10)
        null.task_done(1, 10, 100)
        null.heartbeat(1, 10, 100)
        null.finish(10, 10, 100)


class TestProgressReporter:
    def _reporter(self, **kwargs):
        stream = io.StringIO()
        metrics = Metrics()
        kwargs.setdefault("interval_s", 0.0)
        reporter = ProgressReporter(stream=stream, metrics=metrics, **kwargs)
        return reporter, stream, metrics

    def test_line_shape(self):
        reporter, stream, _ = self._reporter()
        reporter.begin(4)
        reporter.task_done(1, 4, 600)
        line = stream.getvalue().splitlines()[0]
        assert line.startswith("[progress] tasks 1/4 (25%)")
        assert "frames 600" in line
        assert "elapsed" in line
        assert "eta" in line

    def test_final_task_always_emits(self):
        reporter, stream, _ = self._reporter(interval_s=3600.0)
        reporter.begin(2)
        reporter.task_done(1, 2, 10)  # throttled: first emit window open
        reporter.task_done(2, 2, 20)  # final: must emit regardless
        lines = stream.getvalue().splitlines()
        assert any("tasks 2/2 (100%)" in line for line in lines)
        # No eta on the final line — the run is over.
        final = [line for line in lines if "2/2" in line][0]
        assert "eta" not in final

    def test_throttling_limits_lines(self):
        reporter, stream, _ = self._reporter(interval_s=3600.0)
        reporter.begin(100)
        for i in range(1, 100):
            reporter.task_done(i, 100, i * 10)
        # First due emit plus nothing else (none final, window never due).
        assert reporter.lines_emitted <= 1
        assert len(stream.getvalue().splitlines()) == reporter.lines_emitted

    def test_heartbeat_lines_are_labeled(self):
        reporter, stream, _ = self._reporter()
        reporter.begin(4)
        reporter.heartbeat(0, 4, 0)
        assert stream.getvalue().startswith("[heartbeat] tasks 0/4")

    def test_gauges_recorded(self):
        reporter, _, metrics = self._reporter()
        reporter.begin(4)
        reporter.task_done(2, 4, 100)
        gauges = {
            name: value
            for (name, _labels), value in metrics.snapshot().gauges.items()
        }
        assert gauges["progress_tasks_done"] == 2.0
        assert gauges["progress_tasks_total"] == 4.0
        assert gauges["progress_frames_per_s"] >= 0.0
        assert gauges["progress_eta_s"] > 0.0

    def test_metrics_optional(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval_s=0.0)
        reporter.begin(1)
        reporter.task_done(1, 1, 5)
        assert stream.getvalue()


class TestEngineIntegration:
    def _tasks(self, n=3):
        return [
            Task(f"t{i}", "progress.noop", payload=10) for i in range(n)
        ]

    def test_serial_engine_reports_each_task(self):
        stream = io.StringIO()
        telemetry = Telemetry()
        reporter = ProgressReporter(
            stream=stream, metrics=telemetry.metrics, interval_s=0.0
        )
        engine = TaskEngine(jobs=1, telemetry=telemetry, progress=reporter)
        engine.run(self._tasks(3))
        lines = stream.getvalue().splitlines()
        assert any("tasks 3/3 (100%)" in line for line in lines)
        gauges = {
            name: value
            for (name, _l), value in telemetry.metrics.snapshot().gauges.items()
        }
        assert gauges["progress_tasks_done"] == 3.0

    def test_pool_engine_reports_completion(self):
        stream = io.StringIO()
        telemetry = Telemetry()
        reporter = ProgressReporter(
            stream=stream, metrics=telemetry.metrics, interval_s=0.0
        )
        engine = TaskEngine(jobs=2, telemetry=telemetry, progress=reporter)
        engine.run(self._tasks(4))
        assert any(
            "tasks 4/4 (100%)" in line
            for line in stream.getvalue().splitlines()
        )

    def test_engine_without_progress_stays_silent(self, capsys):
        engine = TaskEngine(jobs=1, telemetry=Telemetry())
        engine.run(self._tasks(2))
        captured = capsys.readouterr()
        assert "[progress]" not in captured.err
        assert "[progress]" not in captured.out

    def test_runtime_threads_progress_through(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream, interval_s=0.0)
        runtime = Runtime(jobs=1, progress=reporter)
        assert runtime.progress is reporter

    def test_runtime_defaults_to_null_progress(self):
        assert Runtime(jobs=1).progress is NULL_PROGRESS
