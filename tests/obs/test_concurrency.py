"""Thread-safety: many threads hammering one Metrics/Tracer instance."""

import threading

from repro.obs.metrics import Metrics
from repro.obs.spans import Tracer

THREADS = 8
ROUNDS = 400


def _run_in_threads(target):
    threads = [
        threading.Thread(target=target, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestMetricsUnderContention:
    def test_counter_increments_are_lossless(self):
        metrics = Metrics()

        def work(thread_index):
            for _ in range(ROUNDS):
                metrics.inc("shared")
                metrics.inc("per_thread", thread=thread_index)

        _run_in_threads(work)
        assert metrics.counter_value("shared") == THREADS * ROUNDS
        assert metrics.counter_total("per_thread") == THREADS * ROUNDS
        for i in range(THREADS):
            assert metrics.counter_value("per_thread", thread=i) == ROUNDS

    def test_histogram_observations_are_lossless(self):
        metrics = Metrics()

        def work(thread_index):
            for r in range(ROUNDS):
                metrics.observe("values", float(r % 10) + 0.5)

        _run_in_threads(work)
        hist = metrics.snapshot().histogram("values")
        assert hist.count == THREADS * ROUNDS
        assert sum(hist.counts) == THREADS * ROUNDS


class TestTracerUnderContention:
    def test_all_spans_recorded_with_unique_ids(self):
        tracer = Tracer()

        def work(thread_index):
            for _ in range(ROUNDS // 4):
                with tracer.span("outer", thread=thread_index):
                    with tracer.span("inner", thread=thread_index):
                        pass

        _run_in_threads(work)
        spans = tracer.spans()
        assert len(spans) == THREADS * (ROUNDS // 4) * 2
        assert len({s.span_id for s in spans}) == len(spans)

    def test_nesting_is_per_thread(self):
        tracer = Tracer()
        barrier = threading.Barrier(THREADS)

        def work(thread_index):
            barrier.wait()  # maximize interleaving
            for _ in range(50):
                with tracer.span("outer") as outer:
                    with tracer.span("inner") as inner:
                        # The parent must be THIS thread's outer span,
                        # not whichever span another thread opened last.
                        assert inner.parent_id == outer.span_id
                        assert inner.tid == outer.tid

        _run_in_threads(work)
        by_id = {s.span_id: s for s in tracer.spans()}
        for span in by_id.values():
            if span.name == "inner":
                assert by_id[span.parent_id].tid == span.tid
