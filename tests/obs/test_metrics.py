"""Metrics registry: labels, histograms, merge, snapshots."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Metrics,
    label_key,
)


class TestLabels:
    def test_label_order_is_canonical(self):
        assert label_key({"a": 1, "b": 2}) == label_key({"b": 2, "a": 1})

    def test_values_stringified(self):
        assert label_key({"worker": 7}) == label_key({"worker": "7"})

    def test_distinct_labels_are_distinct_series(self):
        metrics = Metrics()
        metrics.inc("frames", 3, phase="ground")
        metrics.inc("frames", 5, phase="reps")
        assert metrics.counter_value("frames", phase="ground") == 3
        assert metrics.counter_value("frames", phase="reps") == 5
        assert metrics.counter_value("frames") == 0  # unlabeled is its own series
        assert metrics.counter_total("frames") == 8


class TestCountersAndGauges:
    def test_inc_accumulates(self):
        metrics = Metrics()
        metrics.inc("n")
        metrics.inc("n", 4)
        assert metrics.counter_value("n") == 5

    def test_gauge_last_write_wins(self):
        metrics = Metrics()
        metrics.gauge("workers", 4)
        metrics.gauge("workers", 8)
        assert metrics.snapshot().gauge("workers") == 8.0

    def test_missing_counter_reads_zero(self):
        assert Metrics().counter_value("nope") == 0
        assert Metrics().snapshot().counter("nope") == 0


class TestHistograms:
    def test_observations_land_in_decade_buckets(self):
        metrics = Metrics()
        for value in (0.5, 0.7, 5.0):
            metrics.observe("lat", value)
        hist = metrics.snapshot().histogram("lat")
        assert hist.count == 3
        assert hist.total == pytest.approx(6.2)
        assert hist.min == 0.5
        assert hist.max == 5.0
        assert hist.mean == pytest.approx(6.2 / 3)
        assert sum(hist.counts) == 3
        # 0.5 and 0.7 share the (0.1, 1.0] bucket; 5.0 is one up.
        bucket_of = lambda v: next(
            i for i, bound in enumerate(DEFAULT_BUCKETS) if v <= bound
        )
        assert hist.counts[bucket_of(0.5)] == 2
        assert hist.counts[bucket_of(5.0)] == 1

    def test_custom_buckets_fixed_at_first_observe(self):
        metrics = Metrics()
        metrics.observe("sz", 2.0, buckets=(1.0, 10.0))
        metrics.observe("sz", 20.0)  # reuses registered buckets
        hist = metrics.snapshot().histogram("sz")
        assert hist.buckets == (1.0, 10.0)
        assert hist.counts == (0, 1, 1)  # underflow, (1,10], overflow

    def test_merge_rejects_mismatched_buckets(self):
        a, b = Metrics(), Metrics()
        a.observe("h", 1.0, buckets=(1.0, 2.0))
        b.observe("h", 1.0, buckets=(5.0,))
        with pytest.raises(ValueError, match="different buckets"):
            a.merge(b.dump())


class TestMerge:
    def test_dump_merge_round_trip(self):
        worker = Metrics()
        worker.inc("frames", 6, phase="ground")
        worker.gauge("depth", 3)
        worker.observe("wall_s", 0.25, worker="123")

        parent = Metrics()
        parent.inc("frames", 2, phase="ground")
        parent.merge(worker.dump())

        assert parent.counter_value("frames", phase="ground") == 8
        assert parent.snapshot().gauge("depth") == 3.0
        hist = parent.snapshot().histogram("wall_s", worker="123")
        assert hist.count == 1

    def test_merge_none_is_noop(self):
        metrics = Metrics()
        metrics.inc("n")
        metrics.merge(None)
        metrics.merge({})
        assert metrics.counter_value("n") == 1

    def test_dump_is_picklable_and_json_independent(self):
        import pickle

        metrics = Metrics()
        metrics.inc("n", 2, phase="x")
        metrics.observe("h", 1.5)
        restored = Metrics()
        restored.merge(pickle.loads(pickle.dumps(metrics.dump())))
        assert restored.counter_total("n") == 2
        assert restored.snapshot().histogram("h").count == 1


class TestSnapshot:
    def test_snapshot_is_immutable_copy(self):
        metrics = Metrics()
        metrics.inc("n", 1)
        snap = metrics.snapshot()
        metrics.inc("n", 10)
        assert snap.counter("n") == 1
        assert metrics.counter_value("n") == 11

    def test_counter_totals_aggregate_over_labels(self):
        metrics = Metrics()
        metrics.inc("frames", 1, phase="a")
        metrics.inc("frames", 2, phase="b")
        metrics.inc("tasks", 5)
        assert metrics.snapshot().counter_totals() == {
            "frames": 3,
            "tasks": 5,
        }

    def test_as_dict_is_json_serializable(self):
        metrics = Metrics()
        metrics.inc("frames", 3, phase="ground")
        metrics.gauge("workers", 4)
        metrics.observe("wall_s", 0.5)
        payload = json.loads(json.dumps(metrics.snapshot().as_dict()))
        assert payload["counters"] == [
            {"name": "frames", "labels": {"phase": "ground"}, "value": 3}
        ]
        assert payload["gauges"][0]["value"] == 4.0
        assert payload["histograms"][0]["count"] == 1
