"""Tracer behaviour: nesting, parent ids, merge, export formats."""

import json

from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.spans import NULL_TRACER, NullTracer, Tracer


class TestNesting:
    def test_child_points_at_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.start_ns <= inner.start_ns
        assert inner.duration_ns <= outer.duration_ns
        assert (
            inner.start_ns + inner.duration_ns
            <= outer.start_ns + outer.duration_ns
        )

    def test_current_span_id_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span_id() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span_id() == outer.span_id
            with tracer.span("inner") as inner:
                assert tracer.current_span_id() == inner.span_id
            assert tracer.current_span_id() == outer.span_id
        assert tracer.current_span_id() is None

    def test_root_parent_id_roots_new_spans(self):
        tracer = Tracer(root_parent_id="1234-7")
        with tracer.span("remote"):
            pass
        assert tracer.spans()[0].parent_id == "1234-7"

    def test_span_args_via_set(self):
        tracer = Tracer()
        with tracer.span("s", frame=3) as span:
            span.set(cycles=99)
        record = tracer.spans()[0]
        assert record.args == {"frame": 3, "cycles": 99}


class TestMergeAndDrain:
    def test_merge_adopts_foreign_spans(self):
        parent = Tracer()
        with parent.span("local"):
            pass
        worker = Tracer(root_parent_id=None)
        with worker.span("remote"):
            pass
        parent.merge(worker.drain())
        assert len(parent) == 2
        assert {s.name for s in parent.spans()} == {"local", "remote"}

    def test_drain_empties(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        drained = tracer.drain()
        assert len(drained) == 1
        assert len(tracer) == 0


class TestNullTracer:
    def test_is_disabled_and_recordless(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", huge_arg=object()) as span:
            span.set(more=1)
        assert NULL_TRACER.spans() == ()
        assert NULL_TRACER.current_span_id() is None

    def test_singleton_reuse(self):
        assert NullTracer() is not None
        cm1 = NULL_TRACER.span("a")
        cm2 = NULL_TRACER.span("b")
        assert cm1 is cm2  # shared no-op context manager


class TestChromeExport:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("pipeline", category="pipeline", trace="t"):
            with tracer.span("stagework", category="stage"):
                pass
        return tracer.spans()

    def test_document_is_valid(self):
        doc = chrome_trace_document(self._spans())
        assert validate_chrome_trace(doc) == []

    def test_events_carry_hierarchy_in_args(self):
        events = [
            e for e in chrome_trace_events(self._spans()) if e["ph"] == "X"
        ]
        by_name = {e["name"]: e for e in events}
        assert (
            by_name["stagework"]["args"]["parent_id"]
            == by_name["pipeline"]["args"]["span_id"]
        )
        assert by_name["pipeline"]["cat"] == "pipeline"

    def test_timestamps_are_microseconds(self):
        span = self._spans()[0]
        event = [
            e
            for e in chrome_trace_events([span])
            if e["ph"] == "X" and e["name"] == span.name
        ][0]
        assert event["ts"] == span.start_ns / 1000.0

    def test_write_chrome_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._spans(), path)
        doc = json.loads(path.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_validate_flags_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        assert (
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        )  # missing required keys


class TestJsonlExport:
    def test_one_record_per_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        write_spans_jsonl(tracer.spans(), path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        # Spans land in completion order: the inner span finishes first.
        assert [r["name"] for r in records] == ["b", "a"]
        assert records[0]["parent_id"] == records[1]["span_id"]
