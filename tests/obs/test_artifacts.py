"""Artifact sidecars: content-addressed writes, readers, record linking."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.obs.artifacts import (
    ARTIFACTS_VERSION,
    artifact_link,
    artifacts_dir_for,
    load_artifacts,
    load_section,
    read_index,
    write_artifacts,
)
from repro.obs.history import RunStore, record_run

SECTIONS = {
    "clusters": {"frames": [{"frame": 0, "labels": [0, 0, 1]}]},
    "fidelity": {"summary": {"mean_prediction_error": 0.01}},
}


class TestWriteAndRead:
    def test_roundtrip(self, tmp_path):
        link = write_artifacts(tmp_path, "abc123", SECTIONS)
        assert link["dir"] == "abc123.artifacts"
        assert link["sections"] == ["clusters", "fidelity"]
        directory = artifacts_dir_for(tmp_path, "abc123")
        assert load_artifacts(directory) == SECTIONS
        assert load_section(directory, "fidelity") == SECTIONS["fidelity"]

    def test_index_names_content_addressed_bodies(self, tmp_path):
        write_artifacts(tmp_path, "abc123", SECTIONS)
        index = read_index(artifacts_dir_for(tmp_path, "abc123"))
        assert index["artifacts_version"] == ARTIFACTS_VERSION
        assert index["run_id"] == "abc123"
        for name, entry in index["sections"].items():
            assert entry["file"].startswith(name + "-")
            assert entry["file"].endswith(".json")
            assert len(entry["sha256"]) == 64

    def test_rewrite_same_content_is_idempotent(self, tmp_path):
        first = write_artifacts(tmp_path, "abc123", SECTIONS)
        second = write_artifacts(tmp_path, "abc123", SECTIONS)
        assert first == second
        directory = artifacts_dir_for(tmp_path, "abc123")
        bodies = [p for p in directory.iterdir() if p.name != "index.json"]
        assert len(bodies) == len(SECTIONS)  # dedup: no duplicate bodies

    def test_changed_section_gets_a_new_body_file(self, tmp_path):
        write_artifacts(tmp_path, "abc123", SECTIONS)
        changed = dict(SECTIONS, fidelity={"summary": {"x": 2.0}})
        write_artifacts(tmp_path, "abc123", changed)
        directory = artifacts_dir_for(tmp_path, "abc123")
        fidelity_bodies = list(directory.glob("fidelity-*.json"))
        assert len(fidelity_bodies) == 2  # old body kept, never overwritten
        # the index points at the new content
        assert load_section(directory, "fidelity") == {"summary": {"x": 2.0}}

    def test_missing_sidecar_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError, match="no artifact sidecar"):
            read_index(tmp_path / "nope.artifacts")

    def test_unknown_section_lists_what_exists(self, tmp_path):
        write_artifacts(tmp_path, "abc123", SECTIONS)
        with pytest.raises(ValidationError, match="have: clusters, fidelity"):
            load_section(artifacts_dir_for(tmp_path, "abc123"), "sweep")

    def test_corrupted_body_fails_digest_check(self, tmp_path):
        write_artifacts(tmp_path, "abc123", SECTIONS)
        directory = artifacts_dir_for(tmp_path, "abc123")
        body = next(directory.glob("clusters-*.json"))
        body.write_text('{"tampered": true}\n')
        with pytest.raises(ValidationError, match="digest mismatch"):
            load_section(directory, "clusters")

    def test_foreign_version_refused(self, tmp_path):
        write_artifacts(tmp_path, "abc123", SECTIONS)
        directory = artifacts_dir_for(tmp_path, "abc123")
        index = json.loads((directory / "index.json").read_text())
        index["artifacts_version"] = 999
        (directory / "index.json").write_text(json.dumps(index))
        with pytest.raises(ValidationError, match="version 999"):
            read_index(directory)

    def test_artifact_link_reader(self):
        assert artifact_link({}) is None
        assert artifact_link({"artifacts": "garbage"}) is None
        link = {"dir": "x.artifacts", "sections": ["a"], "index_sha256": "f" * 64}
        assert artifact_link({"artifacts": link}) == link


class TestRecordRunIntegration:
    def test_record_run_links_sidecar(self, tmp_path):
        store_dir = tmp_path / "runs"
        path = record_run(
            command="subset",
            argv=("subset", "t.jsonl"),
            duration_s=0.5,
            store=store_dir,
            artifacts=SECTIONS,
        )
        assert path is not None
        store = RunStore(store_dir)
        (record,) = store.records()
        link = record.extra["artifacts"]
        assert link["sections"] == ["clusters", "fidelity"]
        assert store.load_artifacts(record) == SECTIONS
        assert store.load_artifact_section(record, "clusters") == SECTIONS[
            "clusters"
        ]
        # sidecar directory sits next to the record, named by run id
        assert (store_dir / f"{record.run_id}.artifacts" / "index.json").exists()

    def test_record_without_artifacts_has_no_link(self, tmp_path):
        store_dir = tmp_path / "runs"
        record_run(
            command="simulate",
            argv=("simulate",),
            duration_s=0.1,
            store=store_dir,
        )
        (record,) = RunStore(store_dir).records()
        assert "artifacts" not in record.extra
        with pytest.raises(ValidationError, match="no artifact sidecar"):
            RunStore(store_dir).artifact_index(record)

    def test_existing_records_are_never_mutated(self, tmp_path):
        store_dir = tmp_path / "runs"
        record_run(
            command="simulate",
            argv=("simulate",),
            duration_s=0.1,
            store=store_dir,
        )
        store = RunStore(store_dir)
        (before_path,) = store.paths()
        before_bytes = before_path.read_bytes()
        record_run(
            command="subset",
            argv=("subset",),
            duration_s=0.2,
            store=store_dir,
            artifacts=SECTIONS,
        )
        assert before_path.read_bytes() == before_bytes
        assert len(store.paths()) == 2
