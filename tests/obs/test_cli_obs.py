"""CLI observability flags: --trace-out/--metrics-out/--manifest-out/--log-json."""

import json

import pytest

from repro.cli import main
from repro.obs.export import validate_chrome_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-obs") / "t.json"
    assert (
        main(
            [
                "generate", "--game", "bioshock1_like", "--frames", "5",
                "--scale", "0.05", "-o", str(path),
            ]
        )
        == 0
    )
    return path


class TestTraceOut:
    def test_chrome_trace_is_valid_and_nested(self, trace_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "simulate", str(trace_file), "--no-cache",
                    "--trace-out", str(out),
                ]
            )
            == 0
        )
        document = json.loads(out.read_text())
        assert validate_chrome_trace(document) == []
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        # Spans from the CLI, stage, task, and simulator layers.
        assert "cli:simulate" in names
        assert "task:simulate_frame_range" in names
        assert "simulate_frame" in names
        by_id = {e["args"]["span_id"]: e for e in events}
        roots = [e for e in events if e["args"]["parent_id"] is None]
        assert [e["name"] for e in roots] == ["cli:simulate"]
        for event in events:
            parent = event["args"]["parent_id"]
            if parent is not None:
                assert parent in by_id

    def test_jsonl_suffix_switches_format(self, trace_file, tmp_path):
        out = tmp_path / "spans.jsonl"
        assert (
            main(
                [
                    "simulate", str(trace_file), "--no-cache",
                    "--trace-out", str(out),
                ]
            )
            == 0
        )
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records
        assert {"span_id", "parent_id", "name", "start_ns"} <= set(records[0])


class TestMetricsAndManifestOut:
    def test_outputs_cover_the_run(self, trace_file, tmp_path):
        metrics_out = tmp_path / "metrics.json"
        manifest_out = tmp_path / "run.json"
        assert (
            main(
                [
                    "subset", str(trace_file), "--no-cache", "--jobs", "2",
                    "--metrics-out", str(metrics_out),
                    "--manifest-out", str(manifest_out),
                ]
            )
            == 0
        )
        metrics = json.loads(metrics_out.read_text())
        frames = {
            c["labels"]["phase"]: c["value"]
            for c in metrics["counters"]
            if c["name"] == "frames_simulated"
        }
        assert frames["ground_truth"] == 5
        assert frames["representatives"] == 5
        assert any(h["name"] == "cluster_size" for h in metrics["histograms"])
        assert any(h["name"] == "task_wall_s" for h in metrics["histograms"])

        manifest = json.loads(manifest_out.read_text())
        assert manifest["command"] == "subset"
        assert manifest["seeds"] == {"pipeline": 0}
        assert manifest["jobs"] == 2
        assert list(manifest["config_digests"]) == ["mainstream"]
        assert len(manifest["trace_digests"]) == 1
        assert manifest["metrics"]["counters"]  # final snapshot embedded

    def test_manifest_digest_matches_cache_key_digest(self, trace_file, tmp_path):
        from repro.gfx.traceio import load_trace_auto
        from repro.runtime.keys import trace_digest

        manifest_out = tmp_path / "run.json"
        assert (
            main(
                [
                    "simulate", str(trace_file), "--no-cache",
                    "--manifest-out", str(manifest_out),
                ]
            )
            == 0
        )
        manifest = json.loads(manifest_out.read_text())
        trace = load_trace_auto(str(trace_file))
        assert manifest["trace_digests"][trace.name] == trace_digest(trace)


class TestLogJson:
    def test_run_start_and_end_events(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--no-cache", "--log-json"]) == 0
        err_lines = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if line.strip()
        ]
        events = [r["event"] for r in err_lines]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        end = err_lines[-1]
        assert end["frames_simulated"] == 5
        assert end["duration_s"] > 0
