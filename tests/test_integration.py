"""Cross-module integration tests: generator -> simulator -> methodology."""

import numpy as np
import pytest

from repro.core.phasedetect import detect_phases
from repro.core.pipeline import SubsettingPipeline
from repro.core.subsetting import build_subset
from repro.gfx.traceio import trace_from_string, trace_to_string
from repro.gfx.validate import validate_trace
from repro.simgpu.batch import simulate_trace_batch
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator
from repro.synth.generator import TraceGenerator
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


@pytest.fixture(scope="module", params=["bioshock1_like", "bioshock_infinite_like"])
def generated_trace(request):
    profile = GameProfile.preset(request.param).scaled(0.06)
    return TraceGenerator(profile, seed=13).generate(num_frames=20)


class TestGeneratedTracesAreSimulable:
    def test_validate_and_simulate(self, generated_trace):
        validate_trace(generated_trace)
        result = simulate_trace_batch(generated_trace, CFG)
        assert result.total_time_ns > 0
        assert all(t > 0 for t in result.frame_times_ns)

    def test_sequential_batch_agree_on_generated(self, generated_trace):
        seq = GpuSimulator(CFG).simulate_trace(generated_trace)
        bat = simulate_trace_batch(generated_trace, CFG)
        assert bat.total_time_ns == pytest.approx(seq.total_time_ns, rel=1e-9)

    def test_serialization_roundtrip_preserves_simulation(self, generated_trace):
        back = trace_from_string(trace_to_string(generated_trace))
        a = simulate_trace_batch(generated_trace, CFG).total_time_ns
        b = simulate_trace_batch(back, CFG).total_time_ns
        assert a == pytest.approx(b, rel=1e-12)


class TestPipelineOnBothRenderers:
    def test_full_run(self, generated_trace):
        result = SubsettingPipeline().run(generated_trace, CFG)
        assert result.mean_prediction_error < 0.05
        assert result.subset_time_error < 0.15
        assert 0.0 < result.combined_draw_fraction < 1.0

    def test_pipeline_deterministic(self, generated_trace):
        a = SubsettingPipeline().run(generated_trace, CFG)
        b = SubsettingPipeline().run(generated_trace, CFG)
        assert a.mean_prediction_error == b.mean_prediction_error
        assert a.subset.frame_positions == b.subset.frame_positions


class TestSubsetTransfersAcrossArchitectures:
    def test_subset_built_once_validates_everywhere(self, generated_trace):
        # The whole point of micro-architecture-independent features: a
        # subset extracted once works on other architecture points.
        subset = build_subset(generated_trace)
        for preset in ("lowpower", "mainstream", "highend"):
            config = GpuConfig.preset(preset)
            actual = simulate_trace_batch(generated_trace, config).total_time_ns
            estimate = subset.estimate_on_config(generated_trace, config)
            assert abs(estimate - actual) / actual < 0.12, preset


class TestPhaseDetectionMatchesScriptLoops:
    def test_looped_script_reuses_phases(self):
        from repro.synth.phasescript import PhaseScript, Segment, SegmentKind

        profile = GameProfile.preset("bioshock1_like").scaled(0.06)
        generator = TraceGenerator(profile, seed=21)
        script = PhaseScript(
            (
                Segment(SegmentKind.EXPLORE, 0, 16),
                Segment(SegmentKind.COMBAT, 0, 16),
                Segment(SegmentKind.EXPLORE, 1, 8),
            )
        )
        short = generator.generate(num_frames=40, script=script)
        looped = generator.generate(num_frames=80, script=script)  # 2 loops
        d_short = detect_phases(short, interval_length=4)
        d_looped = detect_phases(looped, interval_length=4)
        # The second loop revisits the same gameplay: phase count must not
        # double (boundary intervals may add a phase or two).
        assert d_looped.num_phases <= d_short.num_phases + 2
        # And the subset fraction must drop.
        assert (
            build_subset(looped, d_looped).frame_fraction
            < build_subset(short, d_short).frame_fraction + 1e-9
        )


class TestNoiseAmplitudeControlsOutliers:
    def test_quieter_model_fewer_outliers(self):
        from repro.analysis.experiments import clustering_metrics

        profile = GameProfile.preset("bioshock1_like").scaled(0.08)
        trace = TraceGenerator(profile, seed=3).generate(num_frames=8)
        noisy = clustering_metrics(trace, CFG.scaled(noise_amplitude=0.2))
        quiet = clustering_metrics(trace, CFG.scaled(noise_amplitude=0.0))
        assert np.mean([m.outlier_rate for m in quiet]) <= np.mean(
            [m.outlier_rate for m in noisy]
        )
