"""Tests for sampling baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.draw_sampling import (
    first_n_draw_sample,
    random_draw_sample,
    systematic_draw_sample,
)
from repro.baselines.framesample import every_nth_frame_subset
from repro.baselines.simpoint_like import frame_shader_matrix, simpoint_frames_subset
from repro.errors import SubsetError
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

SMALL = GameProfile.preset("bioshock1_like").scaled(0.06)


@pytest.fixture(scope="module")
def game_trace():
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 6),
            Segment(SegmentKind.COMBAT, 0, 6),
            Segment(SegmentKind.EXPLORE, 0, 6),
        )
    )
    return TraceGenerator(SMALL, seed=9).generate(script=script)


class TestDrawSampling:
    def test_random_sample_properties(self):
        sample = random_draw_sample(100, 10, seed=1)
        assert sample.budget == 10
        assert len(set(sample.indices)) == 10
        assert all(0 <= i < 100 for i in sample.indices)
        assert sum(sample.weights) == pytest.approx(100.0)

    def test_random_deterministic_by_seed(self):
        a = random_draw_sample(100, 10, seed=1)
        b = random_draw_sample(100, 10, seed=1)
        c = random_draw_sample(100, 10, seed=2)
        assert a.indices == b.indices
        assert a.indices != c.indices

    def test_systematic_even_coverage(self):
        sample = systematic_draw_sample(100, 4)
        assert sample.indices == (0, 25, 50, 75)

    def test_first_n(self):
        sample = first_n_draw_sample(100, 3)
        assert sample.indices == (0, 1, 2)

    def test_full_budget_is_exact(self):
        times = np.arange(1.0, 11.0)
        for build in (
            lambda: random_draw_sample(10, 10, seed=0),
            lambda: systematic_draw_sample(10, 10),
            lambda: first_n_draw_sample(10, 10),
        ):
            sample = build()
            assert sample.predict_time_ns(times) == pytest.approx(times.sum())

    def test_bad_budget_rejected(self):
        for bad in (0, 101):
            with pytest.raises(SubsetError):
                random_draw_sample(100, bad)
            with pytest.raises(SubsetError):
                systematic_draw_sample(100, bad)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        frac=st.floats(min_value=0.01, max_value=1.0),
    )
    def test_estimates_unbiased_on_uniform_times(self, n, frac):
        budget = max(1, int(n * frac))
        times = np.full(n, 3.0)
        sample = systematic_draw_sample(n, budget)
        assert sample.predict_time_ns(times) == pytest.approx(3.0 * n)


class TestFrameSample:
    def test_weights_cover_parent(self, game_trace):
        subset = every_nth_frame_subset(game_trace, stride=4)
        assert sum(subset.frame_weights) == pytest.approx(game_trace.num_frames)

    def test_positions_are_periodic(self, game_trace):
        subset = every_nth_frame_subset(game_trace, stride=5)
        assert subset.frame_positions == (0, 5, 10, 15)

    def test_stride_one_keeps_everything(self, game_trace):
        subset = every_nth_frame_subset(game_trace, stride=1)
        assert subset.num_frames == game_trace.num_frames
        assert subset.frame_fraction == 1.0

    def test_bad_stride_rejected(self, game_trace):
        with pytest.raises(SubsetError):
            every_nth_frame_subset(game_trace, stride=0)

    def test_tail_window_weight(self, game_trace):
        # 18 frames, stride 4 -> windows 4,4,4,4,2
        subset = every_nth_frame_subset(game_trace, stride=4)
        assert subset.frame_weights[-1] == 2.0


class TestSimPointLike:
    def test_shader_matrix_shape(self, game_trace):
        matrix = frame_shader_matrix(game_trace)
        assert matrix.shape == (
            game_trace.num_frames,
            len(game_trace.shaders),
        )
        # Row sums equal per-frame draw counts.
        for i, frame in enumerate(game_trace.frames):
            assert matrix[i].sum() == frame.num_draws

    def test_subset_valid(self, game_trace):
        subset = simpoint_frames_subset(game_trace, seed=0)
        assert 1 <= subset.num_frames <= game_trace.num_frames
        assert sum(subset.frame_weights) == pytest.approx(game_trace.num_frames)
        assert subset.method == "simpoint_frames"

    def test_finds_repetition(self, game_trace):
        # Two explore segments out of three: fewer kept frames than frames.
        subset = simpoint_frames_subset(game_trace, seed=0)
        assert subset.num_frames < game_trace.num_frames

    def test_estimate_reasonable(self, game_trace):
        from repro.simgpu.batch import simulate_trace_batch
        from repro.simgpu.config import GpuConfig

        config = GpuConfig.preset("mainstream")
        subset = simpoint_frames_subset(game_trace, seed=0)
        actual = simulate_trace_batch(game_trace, config).total_time_ns
        estimate = subset.estimate_on_config(game_trace, config)
        assert abs(estimate - actual) / actual < 0.25

    def test_single_frame_rejected(self, simple_trace):
        single = simple_trace.subset_frames([0])
        with pytest.raises(SubsetError, match="two frames"):
            simpoint_frames_subset(single)
