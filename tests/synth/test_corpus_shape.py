"""Corpus-level shape checks: the regenerated corpus matches the paper's."""

import pytest

from repro import datasets
from repro.gfx.enums import PassType


class TestCorpusShape:
    @pytest.fixture(scope="class")
    def small_corpus(self):
        return datasets.corpus(frames=24, scale=0.1)

    def test_three_games(self, small_corpus):
        assert len(small_corpus) == 3

    def test_all_engine_pass_types_present(self, small_corpus):
        seen = set()
        for trace in small_corpus.values():
            for frame in trace.frames:
                seen.update(rp.pass_type for rp in frame.passes)
        expected = {
            PassType.SHADOW,
            PassType.FORWARD,
            PassType.GBUFFER,
            PassType.LIGHTING,
            PassType.TRANSPARENT,
            PassType.POST,
            PassType.UI,
        }
        assert expected <= seen

    def test_generational_draw_count_growth(self, small_corpus):
        dpf = {
            name: trace.num_draws / trace.num_frames
            for name, trace in small_corpus.items()
        }
        assert (
            dpf["bioshock1_like"]
            < dpf["bioshock2_like"]
            < dpf["bioshock_infinite_like"]
        )

    def test_corpus_stats_rows(self, small_corpus):
        rows = datasets.corpus_stats(small_corpus)
        assert len(rows) == 4
        assert rows[-1]["draws"] == sum(r["draws"] for r in rows[:-1])

    def test_paper_scale_constants(self):
        # The full corpus is too heavy for unit tests; its shape is pinned
        # by the constants and verified by the full-scale benchmark run
        # (see EXPERIMENTS.md: 717 frames / 823,063 draws vs paper 828K).
        assert datasets.PAPER_FRAMES_PER_GAME * 3 == 717

    def test_reload_same_seed_identical(self):
        a = datasets.load("bioshock1_like", frames=6, scale=0.05, seed=9)
        b = datasets.load("bioshock1_like", frames=6, scale=0.05, seed=9)
        assert a.frames == b.frames

    def test_different_games_different_tables(self, small_corpus):
        shader_sets = [
            frozenset(
                (s.name, s.pixel.alu_ops) for s in trace.shaders.values()
            )
            for trace in small_corpus.values()
        ]
        assert len(set(shader_sets)) == 3
