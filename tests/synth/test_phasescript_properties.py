"""Property-based tests for phase scripts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.phasescript import PhaseScript, Segment, SegmentKind

segments = st.builds(
    Segment,
    kind=st.sampled_from(list(SegmentKind)),
    zone=st.integers(min_value=0, max_value=3),
    frames=st.integers(min_value=1, max_value=30),
)

scripts = st.builds(
    PhaseScript, st.lists(segments, min_size=1, max_size=8).map(tuple)
)


class TestPhaseScriptProperties:
    @given(scripts)
    def test_boundaries_partition_frames(self, script):
        table = script.boundaries()
        assert table[0]["start"] == 0
        assert table[-1]["end"] == script.total_frames
        for prev, cur in zip(table, table[1:]):
            assert cur["start"] == prev["end"]

    @given(scripts)
    def test_frame_segments_enumerates_every_frame_once(self, script):
        indices = [index for index, _, _ in script.frame_segments()]
        assert indices == list(range(script.total_frames))

    @given(scripts, st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_truncated_exact_length(self, script, target):
        truncated = script.truncated(target)
        assert truncated.total_frames == target

    @given(scripts, st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_truncated_preserves_phase_vocabulary(self, script, target):
        truncated = script.truncated(target)
        original_labels = {s.phase_label for s in script.segments}
        truncated_labels = {s.phase_label for s in truncated.segments}
        assert truncated_labels <= original_labels

    @given(scripts)
    def test_truncated_to_own_length_is_equivalent(self, script):
        same = script.truncated(script.total_frames)
        assert same.total_frames == script.total_frames
        # Per-frame phase labels are identical.
        original = [seg.phase_label for _, seg, _ in script.frame_segments()]
        rebuilt = [seg.phase_label for _, seg, _ in same.frame_segments()]
        assert rebuilt == original

    @given(scripts, st.integers(min_value=2, max_value=4))
    @settings(max_examples=30)
    def test_looping_repeats_labels_cyclically(self, script, loops):
        target = script.total_frames * loops
        looped = script.truncated(target)
        base = [seg.phase_label for _, seg, _ in script.frame_segments()]
        full = [seg.phase_label for _, seg, _ in looped.frame_segments()]
        assert full == base * loops
