"""Tests for material-table synthesis and scene population."""

import pytest

from repro.synth.materials import (
    GBUFFER_TARGET_COUNT,
    MAX_SHADOWED_LIGHTS,
    RT_BACKBUFFER,
    RT_DEPTH,
    RT_SHADOW_BASE,
    build_tables,
)
from repro.synth.profiles import GameProfile
from repro.synth.scene import (
    build_zone,
    coverage_factor,
    mesh_class_vertices,
    visible_objects,
)

B1 = GameProfile.preset("bioshock1_like")
BINF = GameProfile.preset("bioshock_infinite_like")


class TestBuildTables:
    def test_deterministic(self):
        a = build_tables(B1, seed=3)
        b = build_tables(B1, seed=3)
        assert a.shaders == b.shaders
        assert a.textures == b.textures
        assert a.material_shader == b.material_shader

    def test_seed_changes_tables(self):
        a = build_tables(B1, seed=3)
        b = build_tables(B1, seed=4)
        assert a.shaders != b.shaders or a.textures != b.textures

    def test_every_material_has_shader_and_textures(self):
        tables = build_tables(B1, seed=0)
        for material in range(B1.material_classes):
            assert tables.material_shader[material] in tables.shaders
            variants = tables.material_texture_sets[material]
            assert len(variants) >= 2  # at least two albedo variants
            for binding in variants:
                assert len(binding) >= 2  # albedo + normal at minimum
                for tid in binding:
                    assert tid in tables.textures

    def test_variants_feature_identical_cache_distinct(self):
        tables = build_tables(B1, seed=0)
        for material in range(B1.material_classes):
            variants = tables.material_texture_sets[material]
            footprints = set()
            albedos = set()
            for binding in variants:
                footprints.add(
                    sum(tables.textures[tid].byte_size for tid in binding)
                )
                albedos.add(binding[0])
            assert len(footprints) == 1  # features cannot distinguish variants
            assert len(albedos) == len(variants)  # the cache can

    def test_variant_lookup_wraps(self):
        tables = build_tables(B1, seed=0)
        variants = tables.material_texture_sets[0]
        assert tables.material_textures_for(0, len(variants)) == variants[0]

    def test_forward_has_no_gbuffer(self):
        tables = build_tables(B1, seed=0)
        assert tables.gbuffer_texture_ids == ()

    def test_deferred_has_gbuffer(self):
        tables = build_tables(BINF, seed=0)
        assert len(tables.gbuffer_texture_ids) == GBUFFER_TARGET_COUNT
        for i in range(GBUFFER_TARGET_COUNT):
            assert (20 + i) in tables.render_targets  # RT_GBUFFER_BASE

    def test_shadowed_lights_capped(self):
        tables = build_tables(BINF, seed=0)
        assert tables.shadowed_lights == MAX_SHADOWED_LIGHTS
        for light in range(tables.shadowed_lights):
            rt = tables.render_targets[RT_SHADOW_BASE + light]
            assert rt.format.is_depth

    def test_core_targets_present(self):
        tables = build_tables(B1, seed=0)
        assert RT_BACKBUFFER in tables.render_targets
        assert tables.render_targets[RT_DEPTH].format.is_depth

    def test_zone_materials_are_subsets(self):
        tables = build_tables(B1, seed=0)
        assert len(tables.zone_materials) == B1.num_zones
        for palette in tables.zone_materials.values():
            assert 0 < len(palette) < B1.material_classes
            assert all(0 <= m < B1.material_classes for m in palette)

    def test_zones_have_different_palettes(self):
        tables = build_tables(BINF, seed=0)
        palettes = set(tables.zone_materials.values())
        assert len(palettes) > 1

    def test_texture_sizes_within_profile_range(self):
        tables = build_tables(B1, seed=0)
        for material, variants in tables.material_texture_sets.items():
            for binding in variants:
                for tid in binding:
                    tex = tables.textures[tid]
                    assert (
                        B1.texture_size_min // 2 <= tex.width <= B1.texture_size_max
                    )


class TestScene:
    def test_mesh_ladder_monotone(self):
        ladder = mesh_class_vertices(B1)
        assert len(ladder) == B1.mesh_classes
        assert list(ladder) == sorted(ladder)
        assert ladder[0] >= 3

    def test_build_zone_deterministic(self):
        tables = build_tables(B1, seed=5)
        a = build_zone(B1, tables, 0, seed=5)
        b = build_zone(B1, tables, 0, seed=5)
        assert a == b

    def test_zones_differ(self):
        tables = build_tables(B1, seed=5)
        a = build_zone(B1, tables, 0, seed=5)
        b = build_zone(B1, tables, 1, seed=5)
        assert a != b

    def test_zone_materials_respected(self):
        tables = build_tables(B1, seed=5)
        objects = build_zone(B1, tables, 0, seed=5)
        palette = set(tables.zone_materials[0])
        assert {o.material for o in objects} <= palette

    def test_bad_zone_rejected(self):
        tables = build_tables(B1, seed=5)
        with pytest.raises(ValueError, match="zone"):
            build_zone(B1, tables, 99, seed=5)

    def test_small_props_dominate(self):
        tables = build_tables(B1, seed=5)
        objects = build_zone(B1, tables, 0, seed=5)
        ladder = mesh_class_vertices(B1)
        # Vertex counts are jittered around their class budget, so compare
        # against a mid-ladder cutoff with headroom for the jitter.
        cutoff = ladder[3] * 2
        small = sum(1 for o in objects if o.mesh_vertices <= cutoff)
        assert small > len(objects) / 2

    def test_visibility_stable_subset(self):
        tables = build_tables(B1, seed=5)
        objects = build_zone(B1, tables, 0, seed=5)
        at_60 = {o.object_id for o in visible_objects(objects, 0.60)}
        at_62 = {o.object_id for o in visible_objects(objects, 0.62)}
        # Raising the fraction only adds objects (smooth churn).
        assert at_60 <= at_62
        assert len(at_62) - len(at_60) < len(objects) * 0.1

    def test_visibility_bounds(self):
        tables = build_tables(B1, seed=5)
        objects = build_zone(B1, tables, 0, seed=5)
        assert visible_objects(objects, 0.0) == []
        assert len(visible_objects(objects, 1.0)) == len(objects)
        with pytest.raises(ValueError):
            visible_objects(objects, 1.5)

    def test_coverage_factor_bounded_and_smooth(self):
        tables = build_tables(B1, seed=5)
        obj = build_zone(B1, tables, 0, seed=5)[0]
        values = [coverage_factor(obj, f) for f in range(100)]
        assert all(0.5 < v < 1.5 for v in values)
        deltas = [abs(b - a) for a, b in zip(values, values[1:])]
        assert max(deltas) < 0.1  # smooth frame to frame
