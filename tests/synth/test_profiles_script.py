"""Tests for game profiles and phase scripts."""

import pytest

from repro.errors import ConfigError, ValidationError
from repro.synth.phasescript import (
    PhaseScript,
    Segment,
    SegmentKind,
    default_script,
)
from repro.synth.profiles import BIOSHOCK_SERIES, GameProfile


class TestGameProfile:
    def test_presets_valid(self):
        for name in GameProfile.preset_names():
            profile = GameProfile.preset(name)
            assert profile.name == name

    def test_bioshock_series_complete(self):
        assert len(BIOSHOCK_SERIES) == 3
        for name in BIOSHOCK_SERIES:
            GameProfile.preset(name)

    def test_series_reflects_generational_growth(self):
        b1 = GameProfile.preset("bioshock1_like")
        b2 = GameProfile.preset("bioshock2_like")
        binf = GameProfile.preset("bioshock_infinite_like")
        assert b1.renderer == "forward"
        assert binf.renderer == "deferred"
        assert b1.objects_per_zone < b2.objects_per_zone < binf.objects_per_zone
        assert binf.num_lights > b1.num_lights

    def test_unknown_preset(self):
        with pytest.raises(ConfigError, match="bioshock1_like"):
            GameProfile.preset("halo_like")

    def test_bad_renderer_rejected(self):
        with pytest.raises(ValidationError):
            GameProfile(name="x", renderer="raytraced")

    def test_texture_range_validated(self):
        with pytest.raises(ConfigError, match="texture_size_min"):
            GameProfile(name="x", texture_size_min=1024, texture_size_max=256)

    def test_scaled_shrinks_content(self):
        base = GameProfile.preset("bioshock1_like")
        small = base.scaled(0.1)
        assert small.objects_per_zone < base.objects_per_zone
        assert small.renderer == base.renderer
        assert small.width == base.width

    def test_scaled_never_empty(self):
        tiny = GameProfile.preset("bioshock1_like").scaled(0.0001)
        assert tiny.objects_per_zone >= 8
        assert tiny.ui_draws >= 2

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            GameProfile.preset("bioshock1_like").scaled(0.0)


class TestSegment:
    def test_phase_label(self):
        seg = Segment(SegmentKind.COMBAT, zone=2, frames=10)
        assert seg.phase_label == "combat/z2"

    def test_zero_frames_rejected(self):
        with pytest.raises(ValidationError):
            Segment(SegmentKind.MENU, zone=0, frames=0)


class TestPhaseScript:
    def test_total_frames(self):
        script = PhaseScript(
            (
                Segment(SegmentKind.MENU, 0, 5),
                Segment(SegmentKind.EXPLORE, 0, 10),
            )
        )
        assert script.total_frames == 15

    def test_frame_segments_enumeration(self):
        script = PhaseScript(
            (
                Segment(SegmentKind.MENU, 0, 2),
                Segment(SegmentKind.EXPLORE, 1, 3),
            )
        )
        rows = list(script.frame_segments())
        assert len(rows) == 5
        assert rows[0][0] == 0 and rows[0][1].kind is SegmentKind.MENU
        assert rows[2][0] == 2 and rows[2][1].kind is SegmentKind.EXPLORE
        assert rows[2][2] == 0  # local index resets at segment boundary
        assert rows[4][2] == 2

    def test_truncated_shorter(self):
        script = default_script([0, 1])
        short = script.truncated(10)
        assert short.total_frames == 10

    def test_truncated_longer_loops(self):
        script = PhaseScript((Segment(SegmentKind.EXPLORE, 0, 4),))
        longer = script.truncated(10)
        assert longer.total_frames == 10
        # Looping repeats the same phase label.
        labels = {s.phase_label for s in longer.segments}
        assert labels == {"explore/z0"}

    def test_boundaries_cover_exactly(self):
        script = default_script([0, 1, 2])
        table = script.boundaries()
        assert table[0]["start"] == 0
        assert table[-1]["end"] == script.total_frames
        for prev, cur in zip(table, table[1:]):
            assert cur["start"] == prev["end"]

    def test_default_script_revisits_phases(self):
        script = default_script([0])
        labels = [s.phase_label for s in script.segments]
        # explore/z0 appears at least twice (backtracking).
        assert labels.count("explore/z0") >= 2

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            PhaseScript(())
