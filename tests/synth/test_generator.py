"""Tests for frame/trace generation: structure, determinism, phases."""

from collections import Counter

import pytest

from repro.errors import ValidationError
from repro.gfx.enums import PassType
from repro.gfx.validate import validate_trace
from repro.synth.camera import camera_state
from repro.synth.generator import TraceGenerator, generate_trace
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

SMALL = GameProfile.preset("bioshock1_like").scaled(0.06)
SMALL_DEFERRED = GameProfile.preset("bioshock_infinite_like").scaled(0.04)


@pytest.fixture(scope="module")
def small_trace():
    return TraceGenerator(SMALL, seed=11).generate(num_frames=24)


class TestCamera:
    def test_all_kinds_have_states(self):
        for kind in SegmentKind:
            state = camera_state(kind, 0)
            assert 0.0 <= state.visibility_fraction <= 1.0
            assert state.zoom > 0
            assert state.overdraw >= 1.0

    def test_vista_sees_more_smaller(self):
        vista = camera_state(SegmentKind.VISTA, 0)
        explore = camera_state(SegmentKind.EXPLORE, 0)
        assert vista.visibility_fraction > explore.visibility_fraction
        assert vista.zoom < explore.zoom

    def test_smooth_over_frames(self):
        values = [
            camera_state(SegmentKind.COMBAT, f).visibility_fraction
            for f in range(64)
        ]
        deltas = [abs(b - a) for a, b in zip(values, values[1:])]
        assert max(deltas) < 0.05


class TestGenerate:
    def test_trace_is_valid(self, small_trace):
        validate_trace(small_trace)

    def test_deterministic(self):
        a = TraceGenerator(SMALL, seed=11).generate(num_frames=6)
        b = TraceGenerator(SMALL, seed=11).generate(num_frames=6)
        assert a.frames == b.frames
        assert a.metadata["segments"] == b.metadata["segments"]

    def test_seed_changes_trace(self):
        a = TraceGenerator(SMALL, seed=11).generate(num_frames=6)
        b = TraceGenerator(SMALL, seed=12).generate(num_frames=6)
        assert a.frames != b.frames

    def test_frame_count_honoured(self, small_trace):
        assert small_trace.num_frames == 24

    def test_segment_metadata_covers_frames(self, small_trace):
        table = small_trace.metadata["segments"]
        assert table[0]["start"] == 0
        assert table[-1]["end"] == small_trace.num_frames

    def test_frames_tagged_with_phase(self, small_trace):
        for frame in small_trace.frames:
            assert "segment" in frame.metadata
            assert "/z" in frame.metadata["segment"]

    def test_menu_frames_are_light(self):
        script = PhaseScript(
            (
                Segment(SegmentKind.MENU, 0, 2),
                Segment(SegmentKind.EXPLORE, 0, 2),
            )
        )
        trace = TraceGenerator(SMALL, seed=1).generate(script=script)
        menu, explore = trace.frames[0], trace.frames[2]
        assert menu.num_draws < explore.num_draws / 2
        kinds = {rp.pass_type for rp in menu.passes}
        assert PassType.SHADOW not in kinds
        assert PassType.UI in kinds

    def test_forward_vs_deferred_structure(self):
        fwd = TraceGenerator(SMALL, seed=1).generate(num_frames=10)
        dfr = TraceGenerator(SMALL_DEFERRED, seed=1).generate(num_frames=10)
        fwd_passes = {p for f in fwd.frames for p in (rp.pass_type for rp in f.passes)}
        dfr_passes = {p for f in dfr.frames for p in (rp.pass_type for rp in f.passes)}
        assert PassType.FORWARD in fwd_passes
        assert PassType.GBUFFER not in fwd_passes
        assert PassType.GBUFFER in dfr_passes
        assert PassType.LIGHTING in dfr_passes

    def test_combat_heavier_than_explore(self):
        script = PhaseScript(
            (
                Segment(SegmentKind.EXPLORE, 0, 4),
                Segment(SegmentKind.COMBAT, 0, 4),
            )
        )
        trace = TraceGenerator(SMALL, seed=1).generate(script=script)
        explore_draws = sum(f.num_draws for f in trace.frames[:4]) / 4
        combat_draws = sum(f.num_draws for f in trace.frames[4:]) / 4
        assert combat_draws > explore_draws

    def test_script_zone_out_of_range_rejected(self):
        script = PhaseScript((Segment(SegmentKind.EXPLORE, 99, 2),))
        with pytest.raises(ValidationError, match="zone 99"):
            TraceGenerator(SMALL, seed=1).generate(script=script)

    def test_generate_trace_shortcut(self):
        trace = generate_trace("bioshock1_like", num_frames=4, seed=2, scale=0.05)
        assert trace.num_frames == 4
        assert trace.metadata["renderer"] == "forward"


class TestWorkloadShape:
    def test_intra_frame_redundancy(self, small_trace):
        # Many draws share their shader: the clustering precondition.
        frame = next(
            f for f in small_trace.frames if f.metadata["kind"] == "explore"
        )
        counts = Counter(d.shader_id for d in frame.draws())
        most_common = counts.most_common(1)[0][1]
        assert most_common >= 5

    def test_phase_repetition_in_shader_mix(self):
        # Two explore segments in the same zone expose the same shader set.
        script = PhaseScript(
            (
                Segment(SegmentKind.EXPLORE, 0, 3),
                Segment(SegmentKind.COMBAT, 0, 3),
                Segment(SegmentKind.EXPLORE, 0, 3),
            )
        )
        trace = TraceGenerator(SMALL, seed=3).generate(script=script)
        def shader_counts(frame):
            return Counter(d.shader_id for d in frame.draws())
        first_explore = shader_counts(trace.frames[0])
        second_explore = shader_counts(trace.frames[6])
        combat = shader_counts(trace.frames[3])
        # Same phase: same shader population (sets equal, counts close).
        assert set(first_explore) == set(second_explore)
        # Combat fires twice the particles: the shader-count vector moves
        # even though the shader *set* can stay the same.
        assert combat != first_explore

    def test_zones_have_distinct_shader_mix(self):
        profile = GameProfile.preset("bioshock2_like").scaled(0.06)
        script = PhaseScript(
            (
                Segment(SegmentKind.EXPLORE, 0, 2),
                Segment(SegmentKind.EXPLORE, 1, 2),
            )
        )
        trace = TraceGenerator(profile, seed=3).generate(script=script)
        z0 = frozenset(d.shader_id for d in trace.frames[0].draws())
        z1 = frozenset(d.shader_id for d in trace.frames[2].draws())
        assert z0 != z1

    def test_consecutive_frames_similar_draw_counts(self, small_trace):
        by_segment = {}
        for frame in small_trace.frames:
            by_segment.setdefault(frame.metadata["segment"], []).append(
                frame.num_draws
            )
        for counts in by_segment.values():
            if len(counts) >= 2:
                spread = (max(counts) - min(counts)) / max(counts)
                assert spread < 0.45
