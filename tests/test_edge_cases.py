"""Edge-case and failure-injection tests across module boundaries."""

import dataclasses

import numpy as np
import pytest

from repro.core.cluster_frame import cluster_frame
from repro.core.features import FeatureExtractor
from repro.core.phasedetect import detect_phases
from repro.core.pipeline import SubsettingPipeline
from repro.core.subsetting import build_subset
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator
from repro.simgpu.batch import simulate_trace_batch

from tests.conftest import make_draw, make_world

CFG = GpuConfig.preset("mainstream")


class TestSingleElementWorlds:
    def test_single_frame_single_draw_pipeline(self):
        trace = make_world([[make_draw()]])
        result = SubsettingPipeline().run(trace, CFG)
        assert result.mean_efficiency == 0.0  # one draw = one cluster
        assert result.subset.num_frames == 1
        assert result.subset_time_error == pytest.approx(0.0, abs=1e-12)

    def test_single_draw_clustering(self):
        trace = make_world([[make_draw()]])
        features = FeatureExtractor(trace).frame_matrix(trace.frames[0])
        clustering = cluster_frame(features)
        assert clustering.num_clusters == 1
        assert clustering.weights[0] == 1

    def test_interval_longer_than_trace(self):
        trace = make_world([[make_draw()], [make_draw()]])
        detection = detect_phases(trace, interval_length=10)
        assert detection.num_intervals == 1
        assert detection.retained_frame_fraction == 1.0

    def test_subset_of_unrepetitive_trace_is_everything(self):
        # Frames with wildly different shader mixes: no merging possible.
        frames = [
            [make_draw(shader_id=i + 1) for _ in range(3)] for i in range(4)
        ]
        trace = make_world(frames)
        subset = build_subset(trace, interval_length=1, tolerance=0.01)
        assert subset.num_frames == trace.num_frames
        assert subset.frame_fraction == 1.0


class TestDegenerateDraws:
    def test_zero_pixel_draw_simulates(self):
        # A fully occluded draw still costs vertex work and overhead.
        draw = make_draw(pixels=0, shaded_fraction=0.0)
        trace = make_world([[draw]])
        result = GpuSimulator(CFG).simulate_trace(trace)
        assert result.total_time_ns > 0

    def test_textureless_draw(self):
        draw = make_draw(texture_ids=())
        trace = make_world([[draw]])
        result = GpuSimulator(CFG).simulate_frame(
            trace.frames[0], trace, keep_draw_costs=True
        )
        assert result.draw_costs[0].traffic.texture_bytes == 0.0

    def test_huge_instance_count(self):
        draw = make_draw(vertex_count=4, instance_count=100000, pixels=1000)
        trace = make_world([[draw]])
        result = simulate_trace_batch(trace, CFG)
        assert np.isfinite(result.total_time_ns)

    def test_identical_draws_cluster_to_one(self):
        draws = [make_draw() for _ in range(50)]
        trace = make_world([draws])
        features = FeatureExtractor(trace).frame_matrix(trace.frames[0])
        clustering = cluster_frame(features, radius=1e-9)
        assert clustering.num_clusters == 1
        assert clustering.weights[0] == 50


class TestExtremeConfigs:
    def test_tiny_gpu_still_monotone(self):
        tiny = GpuConfig(
            name="tiny",
            num_shader_cores=1,
            simd_width=4,
            core_clock_mhz=50.0,
            memory_clock_mhz=100.0,
            dram_bytes_per_mem_cycle=4.0,
            rop_units=1,
            tex_units_per_core=1,
        )
        small = make_world([[make_draw(pixels=1000)]])
        large = make_world([[make_draw(pixels=100000)]])
        t_small = simulate_trace_batch(small, tiny).total_time_ns
        t_large = simulate_trace_batch(large, tiny).total_time_ns
        assert t_large > t_small

    def test_giant_cache_eliminates_capacity_misses(self):
        huge_cache = CFG.scaled(tex_cache_kb=1 << 20)  # 1 GiB
        draw = make_draw(pixels=2000)
        trace = make_world([[draw]])
        normal = GpuSimulator(CFG).simulate_frame(
            trace.frames[0], trace, keep_draw_costs=True
        )
        cached = GpuSimulator(huge_cache).simulate_frame(
            trace.frames[0], trace, keep_draw_costs=True
        )
        assert (
            cached.draw_costs[0].traffic.texture_bytes
            <= normal.draw_costs[0].traffic.texture_bytes
        )

    def test_metadata_does_not_affect_simulation(self):
        draw = make_draw()
        noisy = dataclasses.replace(draw)
        noisy.metadata["comment"] = "hello"
        a = simulate_trace_batch(make_world([[draw]]), CFG).total_time_ns
        b = simulate_trace_batch(make_world([[noisy]]), CFG).total_time_ns
        assert a == b
