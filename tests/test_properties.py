"""Property-based tests on cross-module invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster_frame import cluster_frame
from repro.core.features import FeatureExtractor
from repro.core.predict import predict_time_ns, rep_times_from_draw_times
from repro.core.shadervector import quantize_count
from repro.gfx.enums import PrimitiveTopology
from repro.gfx.state import (
    ADDITIVE_STATE,
    FULLSCREEN_STATE,
    OPAQUE_STATE,
    TRANSPARENT_STATE,
)
from repro.gfx.traceio import trace_from_string, trace_to_string
from repro.simgpu.batch import simulate_trace_batch
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator

from tests.conftest import make_draw, make_world

CFG = GpuConfig.preset("mainstream")

draw_strategy = st.builds(
    make_draw,
    shader_id=st.integers(min_value=1, max_value=4),
    vertex_count=st.integers(min_value=1, max_value=50000),
    pixels=st.integers(min_value=0, max_value=400000),
    shaded_fraction=st.floats(min_value=0.0, max_value=1.0),
    texture_ids=st.sampled_from([(), (10,), (11, 12)]),
    state=st.sampled_from(
        [OPAQUE_STATE, TRANSPARENT_STATE, ADDITIVE_STATE, FULLSCREEN_STATE]
    ),
    topology=st.sampled_from(list(PrimitiveTopology)),
    instance_count=st.integers(min_value=1, max_value=4),
)

frame_lists = st.lists(
    st.lists(draw_strategy, min_size=1, max_size=8), min_size=1, max_size=3
)


class TestTraceRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(frame_lists)
    def test_serialization_is_lossless(self, draw_lists):
        trace = make_world(draw_lists)
        back = trace_from_string(trace_to_string(trace))
        assert back.frames == trace.frames
        assert back.shaders == trace.shaders
        assert back.textures == trace.textures


class TestSimulatorInvariants:
    @settings(max_examples=20, deadline=None)
    @given(frame_lists)
    def test_times_positive_and_additive(self, draw_lists):
        trace = make_world(draw_lists)
        result = simulate_trace_batch(trace, CFG)
        assert result.total_time_ns > 0
        assert result.total_time_ns == pytest.approx(
            sum(result.frame_times_ns)
        )

    @settings(max_examples=15, deadline=None)
    @given(frame_lists, st.floats(min_value=1.1, max_value=4.0))
    def test_higher_clock_never_slower(self, draw_lists, factor):
        trace = make_world(draw_lists)
        slow = simulate_trace_batch(trace, CFG.with_core_clock(500.0))
        fast = simulate_trace_batch(trace, CFG.with_core_clock(500.0 * factor))
        assert fast.total_time_ns <= slow.total_time_ns + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(frame_lists)
    def test_speedup_bounded_by_clock_ratio(self, draw_lists):
        # Scaling only the core clock cannot speed up more than the ratio.
        trace = make_world(draw_lists)
        t1 = simulate_trace_batch(trace, CFG.with_core_clock(500.0)).total_time_ns
        t2 = simulate_trace_batch(trace, CFG.with_core_clock(2000.0)).total_time_ns
        assert t1 / t2 <= 4.0 + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(st.lists(draw_strategy, min_size=2, max_size=8))
    def test_adding_a_draw_never_cheapens_a_frame(self, draws):
        shorter = make_world([draws[:-1]])
        longer = make_world([draws])
        quiet = CFG.scaled(noise_amplitude=0.0)
        t_short = simulate_trace_batch(shorter, quiet).total_time_ns
        t_long = simulate_trace_batch(longer, quiet).total_time_ns
        assert t_long >= t_short - 1e-9


class TestClusteringInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(draw_strategy, min_size=2, max_size=16),
        st.floats(min_value=0.05, max_value=2.0),
    )
    def test_weighted_reps_cover_all_draws(self, draws, radius):
        trace = make_world([draws])
        features = FeatureExtractor(trace).frame_matrix(trace.frames[0])
        clustering = cluster_frame(features, radius=radius)
        assert int(clustering.weights.sum()) == len(draws)
        assert set(clustering.labels) == set(range(clustering.num_clusters))

    @settings(max_examples=15, deadline=None)
    @given(st.lists(draw_strategy, min_size=2, max_size=12))
    def test_singleton_clustering_predicts_exactly(self, draws):
        # With every draw its own cluster, prediction equals ground truth.
        trace = make_world([draws])
        features = FeatureExtractor(trace).frame_matrix(trace.frames[0])
        clustering = cluster_frame(features, radius=1e-12)
        if clustering.num_clusters != len(draws):
            return  # duplicate feature rows legitimately collapse
        result = GpuSimulator(CFG).simulate_frame(
            trace.frames[0], trace, keep_draw_costs=True
        )
        times = result.draw_times_ns()
        predicted = predict_time_ns(
            rep_times_from_draw_times(clustering, times), clustering.weights
        )
        assert predicted == pytest.approx(result.time_ns, rel=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(draw_strategy, min_size=1, max_size=12))
    def test_duplicated_frame_doubles_population_not_clusters(self, draws):
        trace = make_world([draws + draws])
        features = FeatureExtractor(trace).frame_matrix(trace.frames[0])
        single = cluster_frame(
            FeatureExtractor(make_world([draws])).frame_matrix(
                make_world([draws]).frames[0]
            )
        )
        doubled = cluster_frame(features)
        assert doubled.num_clusters == single.num_clusters
        np.testing.assert_array_equal(doubled.weights, 2 * single.weights)


class TestFormatRoundTrips:
    @settings(max_examples=20, deadline=None)
    @given(frame_lists)
    def test_binary_format_lossless(self, draw_lists):
        import io

        from repro.gfx.tracebin import read_trace_binary, write_trace_binary

        trace = make_world(draw_lists)
        buffer = io.BytesIO()
        write_trace_binary(trace, buffer)
        buffer.seek(0)
        back = read_trace_binary(buffer)
        assert back.frames == trace.frames

    @settings(max_examples=20, deadline=None)
    @given(frame_lists)
    def test_command_stream_preserves_draw_sequence(self, draw_lists):
        from repro.gfx.commandstream import frames_to_commands, interpret_commands

        trace = make_world(draw_lists)
        back = interpret_commands(frames_to_commands(trace.frames))
        original = [d for f in trace.frames for d in f.draws()]
        rebuilt = [d for f in back for d in f.draws()]
        assert rebuilt == original


class TestQuantizeMonotone:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_monotone_in_count(self, a, b, tolerance):
        qa, qb = quantize_count(a, tolerance), quantize_count(b, tolerance)
        if a <= b:
            assert qa <= qb
        else:
            assert qa >= qb
