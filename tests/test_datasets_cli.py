"""Tests for the dataset registry and the command-line interface."""

import pytest

from repro import datasets
from repro.cli import main
from repro.errors import ValidationError


class TestDatasets:
    def test_available_names(self):
        names = datasets.available()
        assert len(names) == 3
        for name in names:
            assert "bioshock" in name

    def test_load_reproducible(self):
        a = datasets.load("bioshock1_like", frames=4, scale=0.05)
        b = datasets.load("bioshock1_like", frames=4, scale=0.05)
        assert a.frames == b.frames

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="bioshock"):
            datasets.load("doom_like")

    def test_bench_corpus_scale_switch(self, monkeypatch):
        monkeypatch.delenv(datasets.FULL_SCALE_ENV, raising=False)
        assert not datasets.full_scale_requested()
        monkeypatch.setenv(datasets.FULL_SCALE_ENV, "1")
        assert datasets.full_scale_requested()

    def test_corpus_stats_totals(self):
        traces = datasets.corpus(frames=4, scale=0.05)
        rows = datasets.corpus_stats(traces)
        assert rows[-1]["game"] == "TOTAL"
        assert rows[-1]["frames"] == sum(r["frames"] for r in rows[:-1])

    def test_paper_corpus_shape_documented(self):
        # The constants define the paper's 717-frame corpus.
        assert 3 * datasets.PAPER_FRAMES_PER_GAME == 717


class TestCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        code = main(
            [
                "generate",
                "--game",
                "bioshock1_like",
                "--frames",
                "8",
                "--scale",
                "0.05",
                "-o",
                str(path),
            ]
        )
        assert code == 0
        return path

    def test_generate_writes_file(self, trace_file):
        assert trace_file.exists()

    def test_info(self, trace_file, capsys):
        assert main(["info", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "frames" in out and "draws" in out

    def test_simulate(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--preset", "lowpower"]) == 0
        out = capsys.readouterr().out
        assert "fps" in out

    def test_subset_and_save(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "subset.jsonl"
        code = main(
            ["subset", str(trace_file), "--save-subset", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "prediction error" in out

    def test_subset_save_def_and_estimate(self, trace_file, tmp_path, capsys):
        def_path = tmp_path / "subset.json"
        assert main(["subset", str(trace_file), "--save-def", str(def_path)]) == 0
        assert def_path.exists()
        capsys.readouterr()
        assert main(["estimate", str(trace_file), str(def_path)]) == 0
        out = capsys.readouterr().out
        assert "subset estimate" in out and "% error" in out

    def test_estimate_mismatched_subset_fails_cleanly(
        self, trace_file, tmp_path, capsys
    ):
        other = tmp_path / "other.jsonl"
        main(
            [
                "generate",
                "--game",
                "bioshock2_like",
                "--frames",
                "6",
                "--scale",
                "0.05",
                "-o",
                str(other),
            ]
        )
        def_path = tmp_path / "subset.json"
        main(["subset", str(trace_file), "--save-def", str(def_path)])
        capsys.readouterr()
        assert main(["estimate", str(other), str(def_path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_characterize(self, trace_file, capsys):
        assert main(["characterize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "Workload profile" in out
        assert "bottleneck" in out

    def test_validate_command(self, trace_file, tmp_path, capsys):
        def_path = tmp_path / "subset.json"
        main(["subset", str(trace_file), "--save-def", str(def_path)])
        capsys.readouterr()
        code = main(["validate", str(trace_file), str(def_path)])
        out = capsys.readouterr().out
        assert "VERDICT" in out
        assert code in (0, 2)

    def test_sweep(self, trace_file, capsys):
        assert main(["sweep", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "ranking agreement" in out

    def test_missing_file_is_clean_error(self, capsys):
        assert main(["info", "/nonexistent/trace.jsonl"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_subcommand_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_simulate_jobs_matches_serial(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--no-cache"]) == 0
        serial = capsys.readouterr().out.splitlines()[0]
        assert (
            main(["simulate", str(trace_file), "--no-cache", "--jobs", "2"])
            == 0
        )
        parallel = capsys.readouterr().out.splitlines()[0]
        assert parallel == serial

    def test_simulate_cache_dir_warm_rerun(self, trace_file, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = ["simulate", str(trace_file), "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "frames_simulated=8" in cold
        assert cache_dir.exists()
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "frames_simulated=0" in warm
        assert warm.splitlines()[0] == cold.splitlines()[0]

    def test_no_cache_writes_nothing(self, trace_file, tmp_path, monkeypatch):
        cache_dir = tmp_path / "untouched"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        assert main(["simulate", str(trace_file), "--no-cache"]) == 0
        assert not cache_dir.exists()

    def test_subset_jobs_matches_serial(self, trace_file, capsys):
        assert main(["subset", str(trace_file), "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["subset", str(trace_file), "--no-cache", "--jobs", "4"]) == 0
        )
        parallel = capsys.readouterr().out

        def report_lines(text):
            # Drop the telemetry line: wall-clock stage times differ.
            return [l for l in text.splitlines() if not l.startswith("[runtime]")]

        assert report_lines(parallel) == report_lines(serial)

    def test_bad_jobs_is_clean_error(self, trace_file, capsys):
        assert main(["simulate", str(trace_file), "--jobs", "0"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_experiment_e4_small(self, capsys, monkeypatch):
        # Shrink the corpus so the CLI experiment path stays fast.
        monkeypatch.setattr(datasets, "CI_FRAMES_PER_GAME", 8)
        monkeypatch.setattr(datasets, "CI_SCALE", 0.05)
        assert main(["experiment", "e4"]) == 0
        out = capsys.readouterr().out
        assert "[E4]" in out
