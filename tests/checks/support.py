"""Shared helpers for the checks test suite.

Fixture files declare their own expected findings inline: a
``# expect: RULE`` comment on a violating line means "exactly one
finding with that rule id anchors here" (``# expect: KEY003, KEY003``
declares two).  Tests compare the marker multiset against what
:func:`repro.checks.engine.run_checks` actually reports — as
``(rule_id, fixture-relative path, line)`` triples — so a rule that
drifts by even one line fails loudly.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.checks.engine import CheckReport, run_checks

FIXTURES = Path(__file__).parent / "fixtures"

#: Every built-in rule id, for runs that must not see plugin rules
#: registered by other tests in the same process.
BUILTIN_RULES = (
    "CONC001",
    "CONC002",
    "CONC003",
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DET005",
    "IMP000",
    "IMP001",
    "IMP002",
    "IMP003",
    "KEY001",
    "KEY002",
    "KEY003",
    "OBS001",
    "OBS002",
    "PERF001",
    "SVC001",
    "WRK001",
    "WRK002",
)

_MARKER = "# expect:"

Triple = Tuple[str, str, int]


def fixture_rel(path_str: str) -> str:
    """A finding path reduced to its fixtures-relative tail."""
    normalized = str(path_str).replace("\\", "/")
    token = "fixtures/"
    idx = normalized.rfind(token)
    return normalized[idx + len(token):] if idx >= 0 else normalized


def expected_markers(*paths: Path) -> List[Triple]:
    """``(rule_id, relpath, line)`` multiset declared by ``# expect:``."""
    expected: List[Triple] = []
    for path in paths:
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            rel = fixture_rel(file.as_posix())
            text = file.read_text(encoding="utf-8")
            for lineno, line in enumerate(text.splitlines(), start=1):
                marker = line.partition(_MARKER)[2]
                if marker:
                    for rule_id in marker.split(","):
                        expected.append((rule_id.strip(), rel, lineno))
    return sorted(expected)


def check(
    *paths: Path, select: Optional[Sequence[str]] = None
) -> CheckReport:
    """Run the checker over fixture paths (built-in rules by default)."""
    return run_checks(list(paths), select=select or BUILTIN_RULES)


def observed(report: CheckReport) -> List[Triple]:
    """``(rule_id, relpath, line)`` multiset of a report."""
    return sorted(
        (f.rule_id, fixture_rel(f.path), f.line) for f in report.findings
    )


def assert_matches_markers(report: CheckReport, *paths: Path) -> None:
    """The report's findings are exactly the fixture's declared markers."""
    assert observed(report) == expected_markers(*paths)
