"""WRK rule family: task functions must be picklable and side-effect free."""

from __future__ import annotations

import pytest

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)


@pytest.mark.parametrize("stem", ("wrk001", "wrk002"))
def test_bad_fixture_matches_markers(stem):
    path = FIXTURES / f"{stem}_bad.py"
    assert_matches_markers(check(path), path)


@pytest.mark.parametrize("stem", ("wrk001", "wrk002"))
def test_clean_twin_is_clean(stem):
    path = FIXTURES / f"{stem}_clean.py"
    assert observed(check(path)) == []


def test_wrk001_names_the_nested_function():
    report = check(FIXTURES / "wrk001_bad.py", select=["WRK001"])
    assert [f.message for f in report.findings] == [
        "task function run_nested() is not defined at module level"
    ]


def test_wrk002_reports_global_decl_and_subscript_store():
    report = check(FIXTURES / "wrk002_bad.py", select=["WRK002"])
    messages = sorted(f.message for f in report.findings)
    assert messages == [
        "task function accumulate() declares global CALL_COUNT",
        "task function accumulate() writes through module-level name "
        "'RESULT_CACHE'",
    ]


def test_wrk002_rebinding_a_local_is_not_a_global_write():
    # wrk002_clean assigns `local_cache` inside the task body; a plain
    # local store must never be confused with a module-global write.
    report = check(FIXTURES / "wrk002_clean.py", select=["WRK002"])
    assert report.findings == []
