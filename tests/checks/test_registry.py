"""Registry contract: catalog, selection, plugins, registration errors."""

from __future__ import annotations

import pytest

from repro.checks.engine import run_checks
from repro.checks.registry import all_rules, get_rule, load_plugin, rule
from repro.errors import CheckError

from tests.checks.support import BUILTIN_RULES, FIXTURES

PLUGIN = "tests.checks.plugin_example"


def test_catalog_contains_every_builtin_rule_in_order():
    ids = [r.rule_id for r in all_rules()]
    assert ids == sorted(ids)
    assert set(BUILTIN_RULES) <= set(ids)


def test_every_rule_has_metadata_and_rationale():
    for a_rule in all_rules():
        assert a_rule.name
        assert a_rule.severity in ("warning", "error")
        assert a_rule.scope in ("module", "project")
        assert a_rule.hint
        if a_rule.rule_id.startswith(("DET", "IMP", "KEY", "WRK")):
            assert a_rule.doc, f"{a_rule.rule_id} has no rationale docstring"


def test_rule_finding_prefills_metadata_and_hint():
    det001 = get_rule("DET001")
    finding = det001.finding("a.py", 3, 0, "boom")
    assert finding.rule_id == "DET001"
    assert finding.severity == det001.severity
    assert finding.hint == det001.hint
    assert det001.finding("a.py", 3, 0, "boom", hint="custom").hint == "custom"


def test_get_rule_unknown_id_raises():
    with pytest.raises(CheckError, match="unknown rule id"):
        get_rule("ZZZ999")


def test_plugin_rules_load_and_run():
    report = run_checks(
        [FIXTURES / "plugin_target.py"],
        select=["TST901"],
        plugins=[PLUGIN],
    )
    assert [(f.rule_id, f.line, f.severity) for f in report.findings] == [
        ("TST901", 3, "warning")
    ]


def test_plugin_rule_does_not_fire_without_its_marker():
    report = run_checks(
        [FIXTURES / "det001_clean.py"], select=["TST901"], plugins=[PLUGIN]
    )
    assert report.findings == []


def test_duplicate_rule_id_is_rejected():
    load_plugin(PLUGIN)  # idempotent: module import is cached
    with pytest.raises(CheckError, match="already registered"):

        @rule("TST901", name="duplicate")
        def duplicate(ctx):
            return iter(())


def test_bad_severity_and_scope_are_rejected():
    with pytest.raises(CheckError, match="severity"):
        rule("TST998", name="bad", severity="fatal")
    with pytest.raises(CheckError, match="scope"):
        rule("TST999", name="bad", scope="galaxy")


def test_unimportable_plugin_raises():
    with pytest.raises(CheckError, match="cannot import rule plugin"):
        load_plugin("tests.checks.no_such_plugin_module")
