"""CONC001–003: lock-discipline race detection over the call graph."""

from __future__ import annotations

from pathlib import Path

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)

CONC = ["CONC001", "CONC002", "CONC003"]

REPO_ROOT = Path(__file__).resolve().parents[2]
EXECUTOR = REPO_ROOT / "src" / "repro" / "service" / "executor.py"
PRECOMP_STORE = REPO_ROOT / "src" / "repro" / "simgpu" / "precomp_store.py"


def test_conc_fixtures_match_markers() -> None:
    report = check(FIXTURES / "conc", select=CONC)
    assert_matches_markers(report, FIXTURES / "conc")


def test_clean_twin_has_no_findings() -> None:
    report = check(FIXTURES / "conc" / "clean.py", select=CONC)
    assert observed(report) == []


def test_store_alone_is_not_threaded() -> None:
    # Without xspawn.py in the analyzed set, nothing marks SharedIndex
    # as running on multiple threads — the CONC001 finding on xstore
    # exists only because the call graph links the spawn site to it.
    report = check(FIXTURES / "conc" / "xstore.py", select=CONC)
    assert observed(report) == []


def test_precomp_store_publisher_stays_conc_clean() -> None:
    # The shared precompute store is reached from executor worker
    # threads (via the sweep layers) as well as the request path, so
    # its publisher/loader class must keep the lock discipline: mmap
    # handles and index snapshots are taken under the lock, file I/O
    # (exclusive-create publish, os.replace) happens outside it.
    # Analyzing it together with the executor gives the call graph the
    # thread entry points; any new CONC finding here is a real race.
    report = check(EXECUTOR, PRECOMP_STORE, select=CONC)
    findings = [
        triple for triple in observed(report) if "precomp_store" in triple[1]
    ]
    assert findings == []


def test_blocking_fixture_names_the_lock_holder() -> None:
    report = check(FIXTURES / "conc" / "blocking_bad.py", select=["CONC003"])
    messages = [f.message for f in report.findings]
    assert any("Flusher.stop holds self._lock" in m for m in messages)
    assert any("join() waits for a thread" in m for m in messages)
    assert any("queue get() with no timeout" in m for m in messages)


def _mutate_submit_lock(source: str) -> str:
    """Replace the ``with self._lock:`` inside submit() with ``if True:``.

    Keeps the block syntactically intact so the only change is that the
    critical section no longer holds the lock — the mutation the
    detector exists to catch.
    """
    lines = source.splitlines(keepends=True)
    in_submit = False
    for index, line in enumerate(lines):
        if line.lstrip().startswith("def submit("):
            in_submit = True
        elif in_submit and line.strip() == "with self._lock:":
            indent = line[: len(line) - len(line.lstrip())]
            lines[index] = f"{indent}if True:\n"
            return "".join(lines)
    raise AssertionError("executor.py submit() lost its lock block")


def test_executor_mutation_lock_deletion_fires(tmp_path: Path) -> None:
    # The real executor passes: every guarded access holds the lock and
    # the intentional I/O-under-lock sites carry justified noqa.
    source = EXECUTOR.read_text(encoding="utf-8")
    clean_copy = tmp_path / "clean" / "executor.py"
    clean_copy.parent.mkdir()
    clean_copy.write_text(source, encoding="utf-8")
    assert observed(check(clean_copy.parent, select=CONC)) == []

    # Deleting submit()'s lock must light the detector up: the reads
    # become CONC001 and the writes racing the still-locked mutations
    # elsewhere become CONC002.
    mutated_copy = tmp_path / "mutated" / "executor.py"
    mutated_copy.parent.mkdir()
    mutated_copy.write_text(_mutate_submit_lock(source), encoding="utf-8")
    report = check(mutated_copy.parent, select=CONC)
    fired = {f.rule_id for f in report.findings}
    assert "CONC001" in fired
    assert "CONC002" in fired
    assert all(f.path.endswith("executor.py") for f in report.findings)


def test_threadsafe_attributes_are_exempt(tmp_path: Path) -> None:
    target = tmp_path / "qsafe.py"
    target.write_text(
        "import queue\n"
        "import threading\n"
        "\n"
        "\n"
        "class Pump:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._jobs = queue.Queue()\n"
        "        self._count = 0\n"
        "\n"
        "    def start(self):\n"
        "        threading.Thread(target=self._loop, daemon=True).start()\n"
        "\n"
        "    def _loop(self):\n"
        "        with self._lock:\n"
        "            self._count += 1\n"
        "\n"
        "    def put(self, item):\n"
        "        self._jobs.put(item)\n",
        encoding="utf-8",
    )
    # _jobs is a queue.Queue: accessing it unlocked is the point of the
    # type, so only a _count access outside the lock could ever fire.
    assert observed(check(target, select=CONC)) == []


def test_init_writes_never_fire(tmp_path: Path) -> None:
    target = tmp_path / "ctor.py"
    target.write_text(
        "import threading\n"
        "\n"
        "\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._value = 0\n"
        "\n"
        "    def start(self):\n"
        "        threading.Thread(target=self._bump, daemon=True).start()\n"
        "\n"
        "    def _bump(self):\n"
        "        with self._lock:\n"
        "            self._value += 1\n",
        encoding="utf-8",
    )
    # The __init__ write to _value happens before the object escapes;
    # it must not count as an unguarded write.
    assert observed(check(target, select=CONC)) == []


def test_unthreaded_class_is_ignored(tmp_path: Path) -> None:
    target = tmp_path / "serial.py"
    target.write_text(
        "import threading\n"
        "\n"
        "\n"
        "class Tally:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._n = 0\n"
        "\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._n += 1\n"
        "\n"
        "    def value(self):\n"
        "        return self._n\n",
        encoding="utf-8",
    )
    # Tally takes a lock but no thread ever runs its methods: the
    # unlocked read in value() is single-threaded and must not fire.
    assert observed(check(target, select=CONC)) == []
