"""A ``--load-rules`` extension module exercised by the registry tests.

Registered ids must not collide with built-ins; the TST9xx namespace is
reserved for the test suite.  The rule only fires on an explicit marker
token so its registration (which persists for the rest of the pytest
process) cannot disturb unrelated fixture runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.checks.findings import Finding
from repro.checks.registry import get_rule, rule

if TYPE_CHECKING:
    from repro.checks.engine import ModuleContext


@rule(
    "TST901",
    name="plugin-marker",
    severity="warning",
    hint="remove the marker token",
)
def plugin_marker(ctx: "ModuleContext") -> Iterator[Finding]:
    """Flags lines carrying the literal PLUGIN-MARKER token."""
    this = get_rule("TST901")
    for lineno, line in enumerate(ctx.module.lines, start=1):
        if "PLUGIN-MARKER" in line:
            yield this.finding(
                ctx.module.relpath, lineno, 0, "plugin marker token"
            )
