"""Scope-analysis corner cases that keep IMP001 false-positive free."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.checks.astutils import infer_module_name, parse_noqa
from repro.checks.engine import run_checks


def _imp001(tmp_path: Path, source: str):
    target = tmp_path / "sample.py"
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    report = run_checks([target], select=["IMP001"])
    return [(f.message, f.line) for f in report.findings]


def test_comprehension_and_walrus_bindings_are_visible(tmp_path):
    findings = _imp001(
        tmp_path,
        """
        def shape(rows):
            widths = [len(row) for row in rows]
            if (longest := max(widths, default=0)) > 8:
                return longest
            return sum(widths)
        """,
    )
    assert findings == []


def test_class_scope_is_invisible_to_nested_functions(tmp_path):
    # Python semantics: methods cannot see class-body names directly.
    findings = _imp001(
        tmp_path,
        """
        class Config:
            DEFAULT_RADIUS = 3

            def radius(self):
                return DEFAULT_RADIUS
        """,
    )
    assert findings == [("undefined name 'DEFAULT_RADIUS'", 6)]


def test_flow_free_forward_reference_is_allowed(tmp_path):
    # Bound anywhere in the scope counts everywhere: mutual recursion
    # and helper-after-caller layouts must not be flagged.
    findings = _imp001(
        tmp_path,
        """
        def caller(n):
            return helper(n) + 1


        def helper(n):
            return n
        """,
    )
    assert findings == []


def test_star_import_disables_the_rule_for_the_module(tmp_path):
    findings = _imp001(
        tmp_path,
        """
        from os.path import *

        def anything():
            return could_be_from_the_star(1)
        """,
    )
    assert findings == []


def test_except_and_with_bindings_are_visible(tmp_path):
    findings = _imp001(
        tmp_path,
        """
        import io


        def read(path):
            try:
                with io.open(path) as handle:
                    return handle.read()
            except OSError as exc:
                return str(exc)
        """,
    )
    assert findings == []


def test_parse_noqa_targeted_bare_and_absent():
    noqa = parse_noqa(
        [
            "x = 1  # repro: noqa[DET001]",
            "y = 2  # repro: noqa[DET001, IMP002]",
            "z = 3  # repro: noqa",
            "plain = 4",
        ]
    )
    assert noqa[1] == frozenset({"DET001"})
    assert noqa[2] == frozenset({"DET001", "IMP002"})
    assert noqa[3] is None  # bare noqa: every rule
    assert 4 not in noqa


def test_infer_module_name_walks_packages(tmp_path):
    pkg = tmp_path / "outer" / "inner"
    pkg.mkdir(parents=True)
    (tmp_path / "outer" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "leaf.py").write_text("x = 1\n")
    assert infer_module_name(pkg / "leaf.py") == "outer.inner.leaf"
    assert infer_module_name(pkg / "__init__.py") == "outer.inner"
    # A module outside any package is just its stem.
    lone = tmp_path / "lone.py"
    lone.write_text("x = 1\n")
    assert infer_module_name(lone) == "lone"


# -- import-map resolution (feeds the call graph) ---------------------------


def _import_map(source: str, module_name=None, is_package=False):
    import ast

    from repro.checks.astutils import build_import_map

    tree = ast.parse(textwrap.dedent(source))
    return build_import_map(
        tree, module_name=module_name, is_package=is_package
    )


def test_from_import_aliasing_maps_the_local_name():
    mapping = _import_map("from os.path import join as j\n")
    assert mapping == {"j": "os.path.join"}


def test_plain_import_with_alias():
    mapping = _import_map("import numpy.linalg as la\n")
    assert mapping == {"la": "numpy.linalg"}


def test_relative_import_resolves_against_the_module_name():
    mapping = _import_map(
        "from . import jobs\nfrom ..obs import history\n",
        module_name="repro.service.http",
    )
    assert mapping["jobs"] == "repro.service.jobs"
    assert mapping["history"] == "repro.obs.history"


def test_relative_import_inside_a_package_init_anchors_on_itself():
    mapping = _import_map(
        "from .engine import run_checks\n",
        module_name="repro.checks",
        is_package=True,
    )
    assert mapping["run_checks"] == "repro.checks.engine.run_checks"


def test_relative_import_without_module_name_stays_unmapped():
    mapping = _import_map("from . import jobs\n")
    assert "jobs" not in mapping


def test_relative_import_climbing_past_the_top_stays_unmapped():
    mapping = _import_map(
        "from ... import impossible\n", module_name="repro.cli"
    )
    assert "impossible" not in mapping
