"""PERF rule family: sweep-scale anti-patterns stay out of the tree."""

from __future__ import annotations

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)


def test_bad_fixture_matches_markers():
    path = FIXTURES / "perf001_bad.py"
    assert_matches_markers(check(path), path)


def test_clean_twin_is_clean():
    path = FIXTURES / "perf001_clean.py"
    assert observed(check(path)) == []


def test_perf001_names_the_call():
    report = check(FIXTURES / "perf001_bad.py", select=["PERF001"])
    messages = sorted({f.message for f in report.findings})
    assert messages == [
        "simulate_trace() runs once per config in a loop over candidate "
        "configs",
        "simulate_trace_batch() runs once per config in a loop over "
        "candidate configs",
    ]


def test_perf001_is_a_warning():
    report = check(FIXTURES / "perf001_bad.py", select=["PERF001"])
    assert report.findings
    assert all(f.severity == "warning" for f in report.findings)
