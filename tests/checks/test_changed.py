"""``--changed``: git-restricted analysis for the edit loop."""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.checks.changed import changed_files, restrict_to_changed
from repro.cli import main
from repro.errors import CheckError


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ["git", *args],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.invalid",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.invalid",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture()
def repo(tmp_path: Path) -> Path:
    _git(tmp_path, "init", "-q", "-b", "main")
    (tmp_path / "steady.py").write_text(
        "def steady():\n    return 1\n", encoding="utf-8"
    )
    (tmp_path / "edited.py").write_text(
        "def edited():\n    return 2\n", encoding="utf-8"
    )
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "base")
    return tmp_path


def test_changed_files_sees_edits_and_untracked(repo: Path):
    (repo / "edited.py").write_text(
        "import random\n\n\ndef edited():\n    return random.random()\n",
        encoding="utf-8",
    )
    (repo / "fresh.py").write_text(
        "def fresh():\n    return 3\n", encoding="utf-8"
    )
    changed = changed_files("HEAD", cwd=repo)
    names = {path.name for path in changed}
    assert names == {"edited.py", "fresh.py"}


def test_deleted_files_are_not_reported(repo: Path):
    (repo / "edited.py").unlink()
    assert changed_files("HEAD", cwd=repo) == set()


def test_restrict_keeps_collection_order(repo: Path):
    (repo / "edited.py").write_text("x = 1\n", encoding="utf-8")
    files = [repo / "steady.py", repo / "edited.py"]
    assert restrict_to_changed(files, "HEAD", cwd=repo) == [
        repo / "edited.py"
    ]


def test_bad_base_rev_is_a_check_error(repo: Path):
    with pytest.raises(CheckError, match="git diff"):
        changed_files("no-such-rev", cwd=repo)


def test_cli_changed_restricts_the_run(repo: Path, monkeypatch, capsys):
    monkeypatch.chdir(repo)
    (repo / "edited.py").write_text(
        "import random\n\n\ndef edited():\n    return random.random()\n",
        encoding="utf-8",
    )
    assert main(["check", str(repo), "--no-baseline", "--no-incremental",
                 "--json", "--changed", "--diff-base", "HEAD"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["files_scanned"] == 1
    assert {f["rule"] for f in payload["findings"]} == {"DET001"}


def test_cli_changed_with_nothing_changed_is_green(repo, monkeypatch, capsys):
    monkeypatch.chdir(repo)
    assert main(["check", str(repo), "--no-baseline", "--no-incremental",
                 "--changed", "--diff-base", "HEAD"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out
