"""OBS rule family: library output goes through structured logging."""

from __future__ import annotations

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)


def test_bad_fixture_matches_markers():
    path = FIXTURES / "obs001_bad.py"
    assert_matches_markers(check(path), path)


def test_clean_twin_is_clean():
    path = FIXTURES / "obs001_clean.py"
    assert observed(check(path, select=["OBS001"])) == []


def test_cli_and_reporting_are_allowlisted():
    # The fixture lives under .../obsallow/repro/cli.py, so the relpath
    # carries the allowlisted "repro/cli.py" tail.
    assert observed(check(FIXTURES / "obsallow", select=["OBS001"])) == []


def test_obs001_is_a_warning():
    report = check(FIXTURES / "obs001_bad.py", select=["OBS001"])
    assert report.findings
    assert all(f.severity == "warning" for f in report.findings)
    assert all(
        f.message == "print() in library code bypasses structured logging"
        for f in report.findings
    )


def test_src_tree_has_no_bare_prints():
    # The rule holds on the real source tree, not just fixtures.
    report = check("src/repro", select=["OBS001"])
    assert observed(report) == []


# -- OBS002: dash data code must not reach the simulator -------------------


def test_obs002_bad_fixture_matches_markers():
    path = FIXTURES / "dash" / "handlers_bad.py"
    assert_matches_markers(check(path, select=["OBS002"]), path)


def test_obs002_clean_twin_is_clean():
    path = FIXTURES / "dash" / "handlers_clean.py"
    assert observed(check(path, select=["OBS002"])) == []


def test_obs002_is_an_error():
    report = check(FIXTURES / "dash" / "handlers_bad.py", select=["OBS002"])
    assert report.findings
    assert all(f.severity == "error" for f in report.findings)


def test_obs002_only_applies_to_dash_paths():
    # The same violations in a non-dash module are out of scope (other
    # rules own those paths); the service fixture has plenty of direct
    # simulation calls and OBS002 must stay silent on it.
    report = check(FIXTURES / "service", select=["OBS002"])
    assert observed(report) == []


def test_real_dash_modules_are_clean():
    report = check(
        "src/repro/obs/dash.py",
        "src/repro/service/dashboard.py",
        select=["OBS002"],
    )
    assert observed(report) == []


def test_obs002_transitive_fixture_matches_markers():
    # trends_bad.py never names a simulation entry point; the finding
    # comes from the call graph chasing quick_estimate into simlib.
    bad = FIXTURES / "dash" / "trends_bad.py"
    report = check(bad, FIXTURES / "simlib.py", select=["OBS002"])
    assert_matches_markers(report, bad)
    assert "transitively runs simulation" in report.findings[0].message


def test_obs002_transitive_needs_the_helper():
    report = check(FIXTURES / "dash" / "trends_bad.py", select=["OBS002"])
    assert observed(report) == []
