"""OBS rule family: library output goes through structured logging."""

from __future__ import annotations

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)


def test_bad_fixture_matches_markers():
    path = FIXTURES / "obs001_bad.py"
    assert_matches_markers(check(path), path)


def test_clean_twin_is_clean():
    path = FIXTURES / "obs001_clean.py"
    assert observed(check(path, select=["OBS001"])) == []


def test_cli_and_reporting_are_allowlisted():
    # The fixture lives under .../obsallow/repro/cli.py, so the relpath
    # carries the allowlisted "repro/cli.py" tail.
    assert observed(check(FIXTURES / "obsallow", select=["OBS001"])) == []


def test_obs001_is_a_warning():
    report = check(FIXTURES / "obs001_bad.py", select=["OBS001"])
    assert report.findings
    assert all(f.severity == "warning" for f in report.findings)
    assert all(
        f.message == "print() in library code bypasses structured logging"
        for f in report.findings
    )


def test_src_tree_has_no_bare_prints():
    # The rule holds on the real source tree, not just fixtures.
    report = check("src/repro", select=["OBS001"])
    assert observed(report) == []
