"""Incremental cache: content-addressed hits, warm runs analyze nothing."""

from __future__ import annotations

from pathlib import Path

from repro.checks import cache as cache_mod
from repro.checks.engine import run_checks

from tests.checks.support import BUILTIN_RULES

SELECT = list(BUILTIN_RULES)


def _project(tmp_path: Path) -> Path:
    src = tmp_path / "proj"
    src.mkdir()
    (src / "store.py").write_text(
        "import json\n"
        "\n"
        "\n"
        "def load(path):\n"
        "    return json.loads(path.read_text())\n",
        encoding="utf-8",
    )
    (src / "handlers.py").write_text(
        "import random\n"
        "\n"
        "\n"
        "def roll():\n"
        "    return random.random()\n",
        encoding="utf-8",
    )
    return src


def _cache(tmp_path: Path) -> cache_mod.CheckCache:
    return cache_mod.open_cache(SELECT, root=tmp_path / "cache")


def test_signature_depends_on_rule_selection() -> None:
    assert cache_mod.ruleset_signature(["DET001"]) != (
        cache_mod.ruleset_signature(["DET001", "DET002"])
    )
    # ...but not on order or duplicates.
    assert cache_mod.ruleset_signature(["DET002", "DET001"]) == (
        cache_mod.ruleset_signature(["DET001", "DET001", "DET002"])
    )


def test_warm_run_analyzes_zero_files_and_is_identical(tmp_path: Path):
    src = _project(tmp_path)
    cold = run_checks([src], select=SELECT, cache=_cache(tmp_path))
    assert cold.files_analyzed == 2
    assert cold.files_cached == 0

    warm = run_checks([src], select=SELECT, cache=_cache(tmp_path))
    assert warm.files_analyzed == 0
    assert warm.files_cached == 2
    assert warm.findings == cold.findings
    assert warm.noqa_suppressed == cold.noqa_suppressed
    assert warm.files_scanned == cold.files_scanned


def test_editing_one_file_reanalyzes_only_that_file(tmp_path: Path):
    src = _project(tmp_path)
    run_checks([src], select=SELECT, cache=_cache(tmp_path))

    (src / "handlers.py").write_text(
        "import random\n"
        "\n"
        "\n"
        "def roll():\n"
        "    return random.random()\n"
        "\n"
        "\n"
        "def roll_twice():\n"
        "    return random.random() + random.random()\n",
        encoding="utf-8",
    )
    incremental = run_checks([src], select=SELECT, cache=_cache(tmp_path))
    assert incremental.files_analyzed == 1
    assert incremental.files_cached == 1

    # The incremental report matches a from-scratch run byte for byte.
    fresh = run_checks([src], select=SELECT)
    assert incremental.findings == fresh.findings
    assert incremental.noqa_suppressed == fresh.noqa_suppressed


def test_cached_noqa_counts_replay(tmp_path: Path):
    src = tmp_path / "proj"
    src.mkdir()
    (src / "mod.py").write_text(
        "import random\n"
        "\n"
        "\n"
        "def roll():\n"
        "    return random.random()  # repro: noqa[DET001]\n",
        encoding="utf-8",
    )
    cold = run_checks([src], select=SELECT, cache=_cache(tmp_path))
    warm = run_checks([src], select=SELECT, cache=_cache(tmp_path))
    assert cold.noqa_suppressed == 1
    assert warm.noqa_suppressed == 1
    assert warm.files_analyzed == 0


def test_corrupt_cache_file_degrades_to_cold_run(tmp_path: Path):
    src = _project(tmp_path)
    cache = _cache(tmp_path)
    run_checks([src], select=SELECT, cache=cache)
    cache.path.write_text("{not json", encoding="utf-8")

    rerun = run_checks([src], select=SELECT, cache=_cache(tmp_path))
    assert rerun.files_analyzed == 2
    assert rerun.findings == run_checks([src], select=SELECT).findings


def test_different_selections_do_not_share_entries(tmp_path: Path):
    src = _project(tmp_path)
    root = tmp_path / "cache"
    run_checks(
        [src], select=["DET001"],
        cache=cache_mod.open_cache(["DET001"], root=root),
    )
    # A different rule set has its own signature file: nothing warm.
    report = run_checks(
        [src], select=["IMP002"],
        cache=cache_mod.open_cache(["IMP002"], root=root),
    )
    assert report.files_analyzed == 2


def test_syntax_error_findings_are_cached(tmp_path: Path):
    src = tmp_path / "proj"
    src.mkdir()
    (src / "broken.py").write_text("def f(:\n", encoding="utf-8")
    cold = run_checks([src], select=SELECT, cache=_cache(tmp_path))
    assert [f.rule_id for f in cold.findings] == ["IMP000"]

    warm = run_checks([src], select=SELECT, cache=_cache(tmp_path))
    assert warm.files_analyzed == 0
    assert warm.findings == cold.findings


def test_project_rules_rerun_when_any_file_changes(tmp_path: Path):
    # estimates.py only violates SVC001 once helper.py is resolvable;
    # editing helper.py must invalidate the cached *project* findings
    # even though estimates.py itself is byte-identical.
    src = tmp_path / "proj"
    service = src / "service"
    service.mkdir(parents=True)
    (src / "helper.py").write_text(
        "def shortcut(runtime, trace, config):\n"
        "    return None\n",
        encoding="utf-8",
    )
    (service / "estimates.py").write_text(
        "from helper import shortcut\n"
        "\n"
        "\n"
        "def handle(runtime, trace, config):\n"
        "    return shortcut(runtime, trace, config)\n",
        encoding="utf-8",
    )
    clean = run_checks([src], select=["SVC001"],
                       cache=cache_mod.open_cache(["SVC001"],
                                                  root=tmp_path / "cache"))
    assert clean.findings == []

    (src / "helper.py").write_text(
        "def shortcut(runtime, trace, config):\n"
        "    return runtime.simulate_trace(trace, config)\n",
        encoding="utf-8",
    )
    dirty = run_checks([src], select=["SVC001"],
                       cache=cache_mod.open_cache(["SVC001"],
                                                  root=tmp_path / "cache"))
    assert [f.rule_id for f in dirty.findings] == ["SVC001"]
    assert dirty.files_analyzed == 1  # only helper.py was re-analyzed
