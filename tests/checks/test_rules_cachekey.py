"""KEY rule family: the cache-key completeness cross-checks.

The last two tests are the subsystem's reason to exist: they copy the
*real* ``src/repro/runtime`` pair into a scratch directory, delete one
field-consumption line from ``task_key``, and require the rules to
fail — the acceptance criterion from the issue, executed on every test
run instead of once by hand.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.checks.engine import run_checks

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)

KEY_RULES = ("KEY001", "KEY002", "KEY003")
REPO_RUNTIME = Path(__file__).resolve().parents[2] / "src" / "repro" / "runtime"


def test_keybad_fixture_matches_markers():
    path = FIXTURES / "keybad"
    assert_matches_markers(check(path), path)


def test_keygood_twin_is_clean():
    assert observed(check(FIXTURES / "keygood")) == []


def test_key001_reports_both_directions_of_drift():
    report = check(FIXTURES / "keybad", select=["KEY001"])
    messages = sorted(f.message for f in report.findings)
    assert any("'priority' has no keying policy" in m for m in messages)
    assert any(
        "TASK_FIELD_KEYING names 'ghost'" in m for m in messages
    )


def test_key002_names_the_dropped_parameter():
    report = check(FIXTURES / "keybad", select=["KEY002"])
    assert [f.message for f in report.findings] == [
        "task_key() parameter 'config' never reaches the key record"
    ]


def test_key003_reports_missing_and_undeclared_fields():
    report = check(FIXTURES / "keybad", select=["KEY003"])
    messages = sorted(f.message for f in report.findings)
    assert messages == [
        "key record carries undeclared field 'surprise'",
        "key record is missing declared field 'version'",
    ]


def _scratch_runtime(tmp_path: Path) -> Path:
    runtime = tmp_path / "runtime"
    runtime.mkdir()
    for name in ("keys.py", "tasks.py"):
        shutil.copy(REPO_RUNTIME / name, runtime / name)
    return runtime


def test_real_runtime_pair_is_clean(tmp_path):
    runtime = _scratch_runtime(tmp_path)
    report = run_checks([runtime], select=KEY_RULES)
    assert report.findings == []


def test_deleting_a_consumption_line_fails_the_key_rules(tmp_path):
    runtime = _scratch_runtime(tmp_path)
    keys = runtime / "keys.py"
    text = keys.read_text(encoding="utf-8")
    target = (
        '        "trace": trace_digest(trace) if trace is not None '
        "else None,\n"
    )
    assert target in text, "keys.py no longer contains the trace line"
    keys.write_text(text.replace(target, ""), encoding="utf-8")

    report = run_checks([runtime], select=KEY_RULES)
    ids = sorted({f.rule_id for f in report.findings})
    assert ids == ["KEY002", "KEY003"]
    messages = {f.message for f in report.findings}
    assert (
        "task_key() parameter 'trace' never reaches the key record"
        in messages
    )
    assert "key record is missing declared field 'trace'" in messages


def test_adding_a_task_field_without_policy_fails_key001(tmp_path):
    runtime = _scratch_runtime(tmp_path)
    tasks = runtime / "tasks.py"
    text = tasks.read_text(encoding="utf-8")
    marker = "    cache_key: Optional[str] = None\n"
    assert marker in text, "tasks.py no longer contains the cache_key field"
    tasks.write_text(
        text.replace(marker, marker + "    shiny_new_input: int = 0\n"),
        encoding="utf-8",
    )

    report = run_checks([runtime], select=["KEY001"])
    assert [f.rule_id for f in report.findings] == ["KEY001"]
    assert "'shiny_new_input' has no keying policy" in report.findings[0].message
