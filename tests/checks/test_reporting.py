"""Renderers: exact text lines, parseable JSON, GitHub annotations."""

from __future__ import annotations

import json

import pytest

from repro.checks.findings import Finding
from repro.checks.reporting import (
    JSON_SCHEMA_VERSION,
    render,
    render_github,
    render_json,
    render_sarif,
    render_text,
    summarize,
)

ERROR = Finding(
    path="src/repro/a.py",
    line=12,
    col=4,
    rule_id="DET001",
    severity="error",
    message="call to global-state RNG random.random()",
    hint="seed it",
)
WARNING = Finding(
    path="src/repro/b.py",
    line=3,
    col=0,
    rule_id="IMP002",
    severity="warning",
    message="unused import 'json'",
    hint="delete the import",
)


def test_text_format_is_exact():
    summary = summarize(
        [ERROR, WARNING], files_scanned=2, noqa_suppressed=1, baselined=4
    )
    text = render_text([ERROR, WARNING], summary)
    assert text.splitlines() == [
        "src/repro/a.py:12:5: DET001 error: "
        "call to global-state RNG random.random()",
        "    hint: seed it",
        "src/repro/b.py:3:1: IMP002 warning: unused import 'json'",
        "    hint: delete the import",
        "",
        "2 finding(s) (1 error(s), 1 warning(s)) in 2 file(s); "
        "4 baselined, 1 suppressed inline",
    ]


def test_text_format_empty_run_is_just_the_footer():
    summary = summarize([], files_scanned=7)
    assert render_text([], summary).splitlines() == [
        "0 finding(s) (0 error(s), 0 warning(s)) in 7 file(s); "
        "0 baselined, 0 suppressed inline"
    ]


def test_json_format_parses_with_stable_schema():
    payload = json.loads(render_json([ERROR, WARNING]))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["summary"]["findings"] == 2
    assert payload["summary"]["errors"] == 1
    assert payload["summary"]["warnings"] == 1
    first = payload["findings"][0]
    assert first == {
        "path": "src/repro/a.py",
        "line": 12,
        "col": 4,
        "rule": "DET001",
        "severity": "error",
        "message": "call to global-state RNG random.random()",
        "hint": "seed it",
    }


def test_github_format_emits_workflow_commands():
    lines = render_github([ERROR, WARNING]).splitlines()
    assert lines[0] == (
        "::error file=src/repro/a.py,line=12,col=5,title=DET001::"
        "call to global-state RNG random.random() (hint: seed it)"
    )
    assert lines[1].startswith("::warning file=src/repro/b.py,line=3,col=1,")


def test_github_format_escapes_control_characters():
    tricky = Finding(
        path="src/repro/c.py",
        line=1,
        col=0,
        rule_id="DET002",
        severity="error",
        message="50% of\nruns drift",
    )
    (line,) = render_github([tricky]).splitlines()
    assert "50%25 of%0Aruns drift" in line
    assert "\n" not in line


def test_render_dispatches_and_rejects_unknown_format():
    assert render("github", [ERROR]) == render_github([ERROR])
    with pytest.raises(ValueError, match="unknown format"):
        render("yaml", [ERROR])


def test_sarif_format_is_valid_minimal_sarif():
    log = json.loads(render_sarif([ERROR, WARNING]))
    assert log["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in log["$schema"]
    (run,) = log["runs"]
    assert run["tool"]["driver"]["name"] == "repro-check"
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == ["DET001", "IMP002"]
    assert rules[0]["defaultConfiguration"]["level"] == "error"
    first, second = run["results"]
    assert first["ruleId"] == "DET001"
    assert first["ruleIndex"] == 0
    assert first["level"] == "error"
    assert first["message"]["text"] == ERROR.message
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/a.py"
    assert location["region"] == {"startLine": 12, "startColumn": 5}
    assert second["level"] == "warning"


def test_sarif_unknown_rule_degrades_gracefully():
    stray = Finding(
        path="x.py", line=1, col=0, rule_id="ZZZ999",
        severity="error", message="ghost rule",
    )
    log = json.loads(render_sarif([stray]))
    (entry,) = log["runs"][0]["tool"]["driver"]["rules"]
    assert entry == {"id": "ZZZ999"}
