"""`repro check` end to end: exit codes, formats, baseline workflow."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

from tests.checks.support import FIXTURES

REPO_ROOT = Path(__file__).resolve().parents[2]
BAD = str(FIXTURES / "det001_bad.py")
CLEAN = str(FIXTURES / "det001_clean.py")


def test_violations_exit_nonzero_with_text_findings(capsys):
    assert main(["check", BAD, "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out
    assert "hint:" in out
    assert "finding(s)" in out  # summary footer


def test_clean_file_exits_zero(capsys):
    assert main(["check", CLEAN, "--no-baseline"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_json_output_parses(capsys):
    assert main(["check", BAD, "--no-baseline", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["findings"] == len(payload["findings"])
    assert {f["rule"] for f in payload["findings"]} == {"DET001"}


def test_github_format_annotates(capsys):
    assert main(["check", BAD, "--no-baseline", "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=")
    assert "title=DET001" in out


def test_select_narrows_the_run(capsys):
    assert main(["check", BAD, "--no-baseline", "--select", "DET004"]) == 0
    assert main(["check", BAD, "--no-baseline", "--select", "det001"]) == 1
    capsys.readouterr()


def test_unknown_select_is_a_clean_cli_error(capsys):
    assert main(["check", BAD, "--no-baseline", "--select", "NOPE1"]) == 1
    assert "unknown rule id" in capsys.readouterr().err


def test_list_rules_prints_the_catalog(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "IMP003", "KEY003", "WRK002"):
        assert rule_id in out


def test_write_baseline_then_rerun_is_green(tmp_path, capsys):
    baseline = tmp_path / "accepted.json"
    assert main(["check", BAD, "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert baseline.exists()
    # Same violations, now grandfathered: the gate passes...
    assert main(["check", BAD, "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "4 baselined" in out
    # ...but a file with violations outside the baseline still fails.
    assert main(["check", BAD, str(FIXTURES / "det002_bad.py"),
                 "--baseline", str(baseline)]) == 1


def test_stale_baseline_entries_are_noted(tmp_path, capsys):
    baseline = tmp_path / "accepted.json"
    assert main(["check", BAD, "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    capsys.readouterr()
    assert main(["check", CLEAN, "--baseline", str(baseline)]) == 0
    assert "stale baseline entr" in capsys.readouterr().out


def test_load_rules_flag_runs_plugin_rules(capsys):
    assert main([
        "check", str(FIXTURES / "plugin_target.py"), "--no-baseline",
        "--load-rules", "tests.checks.plugin_example",
        "--select", "TST901",
    ]) == 1
    assert "TST901" in capsys.readouterr().out


def test_repo_gate_src_repro_is_clean(monkeypatch, capsys):
    # The CI invocation: the shipped tree plus the committed (empty)
    # baseline must be green.
    monkeypatch.chdir(REPO_ROOT)
    assert main(["check", "src/repro"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


# -- incremental cache, SARIF, --changed, --prune-baseline ------------------


def test_sarif_format_via_cli(capsys, tmp_path):
    assert main(["check", BAD, "--no-baseline", "--format", "sarif",
                 "--cache-dir", str(tmp_path / "cache")]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    results = log["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {"DET001"}


def test_output_flag_writes_the_file(capsys, tmp_path):
    target = tmp_path / "findings.sarif"
    assert main(["check", BAD, "--no-baseline", "--format", "sarif",
                 "--output", str(target), "--no-incremental"]) == 1
    out = capsys.readouterr().out
    assert "wrote sarif findings to" in out
    log = json.loads(target.read_text(encoding="utf-8"))
    assert log["runs"][0]["results"]


def test_warm_cli_run_analyzes_zero_files(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    assert main(["check", BAD, "--no-baseline", "--json",
                 "--cache-dir", cache_dir]) == 1
    cold = json.loads(capsys.readouterr().out)
    assert cold["summary"]["files_analyzed"] == 1
    assert cold["summary"]["files_cached"] == 0

    assert main(["check", BAD, "--no-baseline", "--json",
                 "--cache-dir", cache_dir]) == 1
    warm = json.loads(capsys.readouterr().out)
    assert warm["summary"]["files_analyzed"] == 0
    assert warm["summary"]["files_cached"] == 1
    assert warm["findings"] == cold["findings"]


def test_no_incremental_always_analyzes(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    for _ in range(2):
        assert main(["check", BAD, "--no-baseline", "--json",
                     "--no-incremental", "--cache-dir", cache_dir]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["files_analyzed"] == 1


def test_prune_baseline_rewrites_the_file(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / "accepted.json"
    assert main(["check", BAD, "--baseline", str(baseline),
                 "--write-baseline", "--no-incremental"]) == 0
    assert main(["check", CLEAN, "--baseline", str(baseline),
                 "--no-incremental", "--prune-baseline"]) == 0
    out = capsys.readouterr().out
    assert "pruned 4 stale entries" in out
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["entries"] == []


def test_stale_note_lists_the_entries(capsys, tmp_path):
    baseline = tmp_path / "accepted.json"
    assert main(["check", BAD, "--baseline", str(baseline),
                 "--write-baseline", "--no-incremental"]) == 0
    capsys.readouterr()
    assert main(["check", CLEAN, "--baseline", str(baseline),
                 "--no-incremental"]) == 0
    out = capsys.readouterr().out
    assert "stale baseline entr" in out
    assert "  stale: DET001" in out
