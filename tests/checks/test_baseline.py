"""Baseline semantics: round-trip, multiset budget, staleness, validation."""

from __future__ import annotations

import json

import pytest

from repro.checks import baseline
from repro.checks.findings import Finding
from repro.errors import CheckError


def _finding(message: str, line: int = 10, path: str = "src/x.py") -> Finding:
    return Finding(
        path=path,
        line=line,
        col=0,
        rule_id="DET001",
        severity="error",
        message=message,
    )


def test_round_trip_absorbs_every_written_finding(tmp_path):
    findings = [_finding("first"), _finding("second", line=20)]
    target = tmp_path / "baseline.json"
    baseline.write(findings, target)

    entries = baseline.load(target)
    result = baseline.apply(findings, entries)
    assert result.new_findings == []
    assert len(result.baselined) == 2
    assert result.stale_entries == []


def test_written_file_is_sorted_and_versioned(tmp_path):
    target = tmp_path / "baseline.json"
    baseline.write([_finding("zz"), _finding("aa")], target)
    payload = json.loads(target.read_text())
    assert payload["version"] == baseline.BASELINE_VERSION
    messages = [e["message"] for e in payload["entries"]]
    assert messages == sorted(messages)


def test_fingerprint_is_line_independent():
    # The violation moved 40 lines down; the baseline still matches.
    entries = [{"rule": "DET001", "path": "src/x.py", "message": "moved"}]
    result = baseline.apply([_finding("moved", line=50)], entries)
    assert result.new_findings == []
    assert len(result.baselined) == 1


def test_multiset_budget_blocks_violation_growth():
    # One baselined occurrence cannot absorb two findings: growth of a
    # known violation is still a failure.
    entries = [{"rule": "DET001", "path": "src/x.py", "message": "dup"}]
    findings = [_finding("dup", line=5), _finding("dup", line=9)]
    result = baseline.apply(findings, entries)
    assert len(result.baselined) == 1
    assert len(result.new_findings) == 1


def test_stale_entries_are_reported(tmp_path):
    entries = [
        {"rule": "DET001", "path": "src/x.py", "message": "still here"},
        {"rule": "DET001", "path": "src/gone.py", "message": "fixed ages ago"},
    ]
    result = baseline.apply([_finding("still here")], entries)
    assert result.new_findings == []
    assert [e["path"] for e in result.stale_entries] == ["src/gone.py"]


def test_load_rejects_wrong_version(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(CheckError, match="version"):
        baseline.load(target)


def test_load_rejects_malformed_json_and_shape(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text("{not json")
    with pytest.raises(CheckError, match="not valid JSON"):
        baseline.load(target)
    target.write_text(json.dumps({"version": 1}))
    with pytest.raises(CheckError, match="entries"):
        baseline.load(target)
    target.write_text(
        json.dumps({"version": 1, "entries": [{"rule": "DET001"}]})
    )
    with pytest.raises(CheckError, match="missing"):
        baseline.load(target)


def test_find_default_walks_up_from_nested_directories(tmp_path):
    (tmp_path / baseline.DEFAULT_BASELINE_NAME).write_text(
        json.dumps({"version": 1, "entries": []})
    )
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    found = baseline.find_default(start=nested)
    assert found is not None
    assert found.parent == tmp_path


def test_prune_is_multiset_aware():
    from repro.checks.baseline import prune

    twin = {"rule": "KEY003", "path": "a.py", "message": "same"}
    other = {"rule": "DET001", "path": "b.py", "message": "rng"}
    kept = prune([dict(twin), dict(twin), dict(other)], [dict(twin)])
    # Exactly one of the two identical entries goes; the rest stay.
    assert kept == [dict(twin), dict(other)]


def test_write_entries_round_trips_sorted(tmp_path):
    from repro.checks.baseline import load, write_entries

    target = tmp_path / "b.json"
    entries = [
        {"rule": "Z", "path": "z.py", "message": "late"},
        {"rule": "A", "path": "a.py", "message": "early"},
    ]
    write_entries(entries, target)
    assert [e["path"] for e in load(target)] == ["a.py", "z.py"]
