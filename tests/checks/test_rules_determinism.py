"""DET rule family: fixtures match their inline markers exactly."""

from __future__ import annotations

import pytest

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)

DET_STEMS = ("det001", "det002", "det003", "det004", "det005")


@pytest.mark.parametrize("stem", DET_STEMS)
def test_bad_fixture_matches_markers(stem):
    # All built-in rules run: the markers are the *complete* expected
    # finding set, so any other rule misfiring on the file fails too.
    path = FIXTURES / f"{stem}_bad.py"
    assert_matches_markers(check(path), path)


@pytest.mark.parametrize("stem", DET_STEMS)
def test_clean_twin_is_clean(stem):
    path = FIXTURES / f"{stem}_clean.py"
    assert observed(check(path)) == []


def test_det001_message_names_the_qualified_call():
    report = check(FIXTURES / "det001_bad.py", select=["DET001"])
    messages = {f.message for f in report.findings}
    assert "call to global-state RNG random.random()" in messages
    assert "call to global-state RNG numpy.random.rand()" in messages
    # `from random import shuffle` resolves through the import map.
    assert "call to global-state RNG random.shuffle()" in messages


def test_det002_resolves_datetime_through_import_map():
    report = check(FIXTURES / "det002_bad.py", select=["DET002"])
    messages = {f.message for f in report.findings}
    assert (
        "wall-clock read datetime.datetime.now() outside the obs allowlist"
        in messages
    )


def test_det005_flags_both_iteration_and_json_dumps():
    report = check(FIXTURES / "det005_bad.py", select=["DET005"])
    messages = sorted(f.message for f in report.findings)
    assert any("dict .items()" in m for m in messages)
    assert any("json.dumps() without sort_keys=True" in m for m in messages)
    # The indirect digest helper (one call away from hashlib) is covered.
    assert any("key_for()" in m for m in messages)


def test_every_det_finding_is_an_error_with_a_hint():
    report = check(FIXTURES / "det001_bad.py", select=["DET001"])
    assert report.findings
    for finding in report.findings:
        assert finding.severity == "error"
        assert finding.hint
