"""Clean twin leaf module: no imports back into the package."""


def pong(depth: int) -> int:
    return depth
