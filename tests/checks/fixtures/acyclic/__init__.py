"""IMP003 clean twin package: dependencies flow one way only."""
