"""Clean twin: alpha depends on beta, beta depends on nothing."""

from acyclic import beta


def ping(depth: int) -> int:
    return beta.pong(depth) + 1
