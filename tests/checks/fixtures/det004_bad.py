"""DET004 fixture: mutable defaults shared across every call."""


def collect(frame: int, bucket=[]):  # expect: DET004
    bucket.append(frame)
    return bucket


def tally(counts=dict()):  # expect: DET004
    return counts


def label(parts: tuple, *, seen=set()):  # expect: DET004
    seen.update(parts)
    return sorted(seen)
