"""DET001 fixture: draws from the interpreter-global RNG stream."""

import random

import numpy as np
from random import shuffle


def sample_frames(count: int) -> list:
    frames = [random.random() for _ in range(count)]  # expect: DET001
    np.random.shuffle(frames)  # expect: DET001
    shuffle(frames)  # expect: DET001
    return frames


def pick() -> float:
    return np.random.rand()  # expect: DET001
