"""Clean twin: every shared access holds the lock; I/O happens outside."""

import threading


class Buffer:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def start(self):
        thread = threading.Thread(target=self._loop, daemon=True)
        thread.start()

    def _loop(self):
        self.put("tick")

    def put(self, item):
        with self._lock:
            self._items.append(item)

    def snapshot(self):
        with self._lock:
            return list(self._items)

    def flush(self, path):
        with self._lock:
            items = list(self._items)
            self._items.clear()
        path.write_text("\n".join(str(item) for item in items))
