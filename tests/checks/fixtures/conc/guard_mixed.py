"""CONC002 fixture: one attribute written with and without the lock."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def start(self):
        worker = threading.Thread(target=self._drain, daemon=True)
        worker.start()

    def _drain(self):
        with self._lock:
            self._entries.clear()

    def put(self, key, value):
        self._entries[key] = value  # expect: CONC002
