"""CONC001 fixture: a guarded attribute read outside the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._total = 0
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        self.add(1)

    def add(self, amount):
        with self._lock:
            self._total += amount

    def total(self):
        return self._total  # expect: CONC001
