"""Spawns the thread that makes ``xstore.SharedIndex`` concurrent."""

import threading

from xstore import SharedIndex


def serve(index: SharedIndex):
    worker = threading.Thread(target=index.put, daemon=True)
    worker.start()
    return index.peek("status")
