"""Cross-module CONC fixture: this store never spawns a thread itself.

The thread that makes it concurrent lives in ``xspawn.py`` — the rule
must discover the sharing through the project call graph.
"""

import threading


class SharedIndex:
    def __init__(self):
        self._lock = threading.Lock()
        self._by_key = {}

    def put(self, key, value):
        with self._lock:
            self._by_key[key] = value

    def peek(self, key):
        return self._by_key.get(key)  # expect: CONC001
