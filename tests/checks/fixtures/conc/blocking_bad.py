"""CONC003 fixture: blocking calls made while holding the lock."""

import json
import queue
import threading


class Flusher:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = queue.Queue()
        self._pending = []
        self._worker = None

    def start(self):
        self._worker = threading.Thread(target=self._loop, daemon=True)
        self._worker.start()

    def _loop(self):
        with self._lock:
            item = self._queue.get()  # expect: CONC003
            self._pending.append(item)

    def flush(self, path):
        with self._lock:
            with open(path, "w") as stream:  # expect: CONC003
                json.dump(self._pending, stream)  # expect: CONC003
            self._pending.clear()

    def stop(self):
        with self._lock:
            self._worker.join()  # expect: CONC003
