"""PERF001 fixture: whole-trace simulation inside per-config loops."""

from repro.simgpu.batch import simulate_trace_batch
from repro.simgpu.simulator import GpuSimulator


def sweep_loop(trace, configs):
    results = []
    for config in configs:
        results.append(GpuSimulator(config).simulate_trace(trace))  # expect: PERF001
    return results


def clock_sweep(trace, base_config, clocks_mhz):
    times = []
    for clock in clocks_mhz:
        config = base_config.with_core_clock(clock)
        result = simulate_trace_batch(trace, config)  # expect: PERF001
        times.append(result.total_time_ns)
    return times


def comprehension_sweep(trace, configs):
    return [GpuSimulator(c).simulate_trace(trace) for c in configs]  # expect: PERF001
