"""OBS001 clean twin: structured logging, no bare prints."""

from repro.obs.logjson import JsonLogger


def simulate_chunk(frames: list, logger: JsonLogger) -> int:
    logger.log("chunk_started", frames=len(frames))
    total = 0
    for frame in frames:
        total += frame
    logger.log("chunk_finished", total=total)
    return total


class Device:
    def print(self) -> None:  # a method named print is not the builtin
        pass


def render(device: Device) -> None:
    device.print()
    printer = print  # referencing without calling is fine too
    del printer
