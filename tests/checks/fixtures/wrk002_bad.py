"""WRK002 fixture: worker-side writes that evaporate under a pool."""

from repro.runtime.tasks import task_function

RESULT_CACHE = {}
CALL_COUNT = 0


@task_function("fixture_mutating_kind")
def accumulate(context, payload, deps):
    global CALL_COUNT  # expect: WRK002
    CALL_COUNT = CALL_COUNT + 1
    RESULT_CACHE[payload] = deps  # expect: WRK002
    return CALL_COUNT
