"""IMP002 clean twin: used imports, re-export idiom, __all__ members."""

import json
from typing import Dict
from typing import Optional as Optional  # re-export idiom: not flagged

__all__ = ["merge", "VERSION"]

VERSION = json.dumps({"v": 1}, sort_keys=True)


def merge(left: Dict[str, int], right: Dict[str, int]) -> Dict[str, int]:
    out = dict(left)
    out.update(right)
    return out
