"""WRK002 clean twin: results flow back through the return value."""

from repro.runtime.tasks import task_function


@task_function("fixture_pure_kind")
def accumulate(context, payload, deps):
    local_cache = {payload: deps}
    return {"cache": local_cache, "calls": 1}
