"""KEY fixture: drifted hooks and a builder that drops an input."""

KEY_RECORD_FIELDS = ("kind", "version", "trace")

TASK_FIELD_KEYING = {  # expect: KEY001
    "task_id": "label only",
    "kind": "keyed directly",
    "payload": "keyed via digests",
    "ghost": "names a field Task no longer has",
}


def task_key(kind, *, trace=None, config=None):  # expect: KEY002
    record = {  # expect: KEY003, KEY003
        "kind": kind,
        "trace": repr(trace),
        "surprise": 1,
    }
    return repr(sorted(record.items()))
