"""KEY fixture: a Task field added without a keying decision."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Task:
    task_id: str
    kind: str
    payload: object
    priority: int  # expect: KEY001
