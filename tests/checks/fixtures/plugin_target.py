"""Target file for the --load-rules plugin test."""

BANNER = "carries the PLUGIN-MARKER token on line 3"


def describe() -> str:
    return BANNER
