"""IMP000 fixture: a file that does not parse."""

def broken(:  # expect: IMP000
    return 1
