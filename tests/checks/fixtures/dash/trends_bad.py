"""OBS002 transitive fixture: dash data code reaching the simulator.

The dashboard handler never names a simulation entry point; the chain
runs through ``simlib.quick_estimate`` and only the project call graph
can connect the dots.
"""

from simlib import quick_estimate


def trend_series(runtime, trace, config):
    return quick_estimate(runtime, trace, config)  # expect: OBS002
