"""OBS002 clean fixture: dash handlers that only read artifacts."""

import json
from pathlib import Path


def load_payload(path):
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def artifact_size(loader, path):
    # An attribute call named `run` on a non-pipeline receiver is fine.
    return loader.run(Path(path))
