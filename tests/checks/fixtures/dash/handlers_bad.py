"""OBS002 fixture: dashboard data code reaching the simulator."""

import repro.simgpu.batch as batch  # expect: OBS002
from repro.simgpu.config import GpuConfig  # expect: OBS002
from repro.analysis.sweep import pathfinding_sweep  # expect: OBS002


def handler_simulate(trace):
    config = GpuConfig()
    return batch.simulate_trace(trace, config)  # expect: OBS002


def handler_sweep(trace, subset):
    return pathfinding_sweep(trace, subset)  # expect: OBS002


def handler_pipeline(pipeline, trace, config):
    return pipeline.run(trace, config)  # expect: OBS002
