"""DET002 fixture: wall-clock reads outside the obs allowlist."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()  # expect: DET002


def nanos() -> int:
    return time.time_ns()  # expect: DET002


def label() -> str:
    return datetime.now().isoformat()  # expect: DET002
