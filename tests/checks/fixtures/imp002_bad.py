"""IMP002 fixture: imports no code in the module ever loads."""

import json  # expect: IMP002
from typing import Dict, Optional  # expect: IMP002


def merge(left: Dict[str, int], right: Dict[str, int]) -> Dict[str, int]:
    out = dict(left)
    out.update(right)
    return out
