"""DET001 clean twin: every RNG stream derives from an explicit seed."""

import random

import numpy as np


def sample_frames(count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    frames = list(rng.random(count))
    random.Random(seed).shuffle(frames)
    return frames


def reseed_guard(seed: int) -> None:
    np.random.seed(seed)
