"""DET003 clean twin: configuration arrives as an explicit parameter."""


def cache_root(scratch_dir: str) -> str:
    return scratch_dir


def dataset_scale(scale: str = "small") -> str:
    return scale
