"""PERF001 clean twin: vectorized sweeps and legitimate loops."""

from repro.simgpu.batch import simulate_trace_multi
from repro.simgpu.simulator import GpuSimulator


def vectorized_sweep(trace, configs):
    # The fast path: every candidate in one (num_configs, num_draws) pass.
    return simulate_trace_multi(trace, configs)


def per_trace_loop(traces, config):
    # Looping over *workloads* is fine — each trace is genuinely new work.
    simulator = GpuSimulator(config)
    return [simulator.simulate_trace(trace) for trace in traces]


def single_simulation(trace, config):
    return GpuSimulator(config).simulate_trace(trace)


def suppressed_reference_sweep(trace, configs):
    # Cross-checking the scalar simulator is the one sanctioned use.
    return [
        GpuSimulator(config).simulate_trace(trace)  # repro: noqa[PERF001]
        for config in configs
    ]
