"""SVC001 clean twin: handlers that delegate to the executor."""


def handle_submit(executor, spec):
    # The sanctioned path: persist, enqueue, dedupe — never simulate
    # on the request thread.
    return executor.submit(spec)


def handle_status(store, job_id):
    return store.resolve(job_id).status_payload()


def handle_cancel(executor, job_id):
    return executor.cancel(job_id)
