"""SVC001 allowlist twin: the executor module may reach the engine."""

from repro.runtime.engine import Runtime


def run_job(trace, config):
    # service/executor.py is the one sanctioned caller: by the time
    # code here runs, the job went through the queue and dedup index.
    runtime = Runtime.serial()
    return runtime.simulate_trace(trace, config)
