"""SVC001 fixture: request-path service code simulating directly."""

from repro.core.pipeline import SubsettingPipeline
from repro.runtime.engine import Runtime


def handle_simulate(trace, config):
    runtime = Runtime.serial()
    return runtime.simulate_trace(trace, config)  # expect: SVC001


def handle_subset(trace, config):
    pipeline = SubsettingPipeline()
    return pipeline.run(trace, config)  # expect: SVC001


def handle_sweep(trace, subset):
    from repro.analysis.sweep import pathfinding_sweep

    return pathfinding_sweep(trace, subset)  # expect: SVC001
