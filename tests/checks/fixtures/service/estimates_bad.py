"""SVC001 transitive fixture: simulation reached through a helper.

No simulation entry point is named anywhere in this file — the
violation is only visible once the call graph resolves
``quick_estimate`` into ``simlib`` and finds ``simulate_trace`` at the
end of the chain.
"""

from simlib import quick_estimate


def handle_estimate(runtime, trace, config):
    return quick_estimate(runtime, trace, config)  # expect: SVC001
