"""OBS001 allowlist fixture: print is the CLI's output contract."""


def main() -> int:
    print("wrote trace.jsonl: 120 frames")
    return 0
