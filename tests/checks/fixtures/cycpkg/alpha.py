"""Half of the cycle: alpha needs beta at import time."""

from cycpkg import beta  # expect: IMP003


def ping(depth: int) -> int:
    if depth <= 0:
        return 0
    return beta.pong(depth - 1) + 1
