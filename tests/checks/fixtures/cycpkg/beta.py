"""Other half of the cycle: beta needs alpha at import time."""

import cycpkg.alpha as alpha


def pong(depth: int) -> int:
    if depth <= 0:
        return 0
    return alpha.ping(depth - 1) + 1
