"""IMP003 fixture package: alpha and beta import each other."""
