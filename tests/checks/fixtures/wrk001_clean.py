"""WRK001 clean twin: the task function registers at import time."""

from repro.runtime.tasks import task_function


@task_function("fixture_module_kind")
def run_module_level(context, payload, deps):
    return payload
