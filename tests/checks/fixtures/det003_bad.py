"""DET003 fixture: environment reads the cache key cannot see."""

import os


def cache_root() -> str:
    return os.environ["REPRO_SCRATCH"]  # expect: DET003


def dataset_scale() -> str:
    return os.getenv("REPRO_SCALE", "small")  # expect: DET003
