"""Helper module for the transitive SVC001/OBS002 fixtures.

Nothing here violates any rule on its own — this module is neither
service nor dash code.  It exists so ``service/estimates_bad.py`` and
``dash/trends_bad.py`` can reach the simulator through an innocent-
looking helper import, which only the call-graph analysis can see.
"""


def _run_model(runtime, trace, config):
    return runtime.simulate_trace(trace, config)


def quick_estimate(runtime, trace, config):
    return _run_model(runtime, trace, config)
