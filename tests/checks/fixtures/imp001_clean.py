"""IMP001 clean twin: every loaded name has a binding."""

from typing import List


class SimulationError(ValueError):
    pass


def error_path(frames: List[int]) -> None:
    if not frames:
        raise SimulationError("empty frame list")
