"""DET005 fixture: digest inputs that depend on dict insertion order."""

import hashlib
import json


def digest_params(params: dict) -> str:
    hasher = hashlib.sha256()
    for key, value in params.items():  # expect: DET005
        hasher.update(f"{key}={value!r}".encode())
    hasher.update(json.dumps(params).encode())  # expect: DET005
    return hasher.hexdigest()


def key_for(params: dict) -> str:
    parts = [f"{k}={v!r}" for k, v in params.items()]  # expect: DET005
    return digest_params({"joined": "|".join(parts)})
