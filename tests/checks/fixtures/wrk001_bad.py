"""WRK001 fixture: a task function worker processes cannot resolve."""

from repro.runtime.tasks import task_function


def make_task():
    @task_function("fixture_nested_kind")
    def run_nested(context, payload, deps):  # expect: WRK001
        return payload

    return run_nested
