"""DET004 clean twin: default to None, construct inside the body."""

from typing import List, Optional


def collect(frame: int, bucket: Optional[List[int]] = None) -> List[int]:
    if bucket is None:
        bucket = []
    bucket.append(frame)
    return bucket
