"""OBS001 fixture: bare prints in library code."""


def simulate_chunk(frames: list) -> int:
    print(f"simulating {len(frames)} frames")  # expect: OBS001
    total = 0
    for frame in frames:
        total += frame
        if total > 1000:
            print("hot frame", frame)  # expect: OBS001
    return total


def report(values: list) -> None:
    for value in values:
        print(value)  # expect: OBS001
