"""DET005 clean twin: digest inputs are canonically ordered."""

import hashlib
import json


def digest_params(params: dict) -> str:
    hasher = hashlib.sha256()
    for key, value in sorted(params.items()):
        hasher.update(f"{key}={value!r}".encode())
    hasher.update(json.dumps(params, sort_keys=True).encode())
    return hasher.hexdigest()
