"""KEY clean twin: every Task field has a declared keying policy."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Task:
    task_id: str
    kind: str
    payload: object
