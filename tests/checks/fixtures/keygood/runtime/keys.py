"""KEY clean twin: hooks, builder, and record in lockstep."""

KEY_RECORD_FIELDS = ("kind", "version", "payload")

TASK_FIELD_KEYING = {
    "task_id": "label only",
    "kind": "keyed directly via the 'kind' record field",
    "payload": "keyed via the 'payload' record field",
}

FORMAT_VERSION = 1


def task_key(kind, *, payload=None):
    record = {
        "kind": kind,
        "version": FORMAT_VERSION,
        "payload": repr(payload),
    }
    return repr(sorted(record.items()))
