"""Suppression fixture: each violation carries its own noqa."""

import random


def jitter() -> float:
    return random.random()  # repro: noqa[DET001]


def widen(values: list, extra=[]):  # repro: noqa
    return list(values) + extra
