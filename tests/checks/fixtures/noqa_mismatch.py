"""Suppression fixture: a noqa for the wrong rule does not suppress."""

import random


def jitter() -> float:
    return random.random()  # repro: noqa[DET002]  # expect: DET001
