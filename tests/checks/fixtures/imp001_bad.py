"""IMP001 fixture: the PR 2 batch.py bug shape — a NameError in waiting."""

from typing import List


def total(items: List[int]) -> int:
    acc = 0
    for item in items:
        acc += item
    return acc


def error_path(frame_count: int) -> None:
    if frame_count < 0:
        raise SimulationError(f"bad frame count: {frame_count}")  # expect: IMP001
