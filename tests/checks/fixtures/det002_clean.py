"""DET002 clean twin: perf_counter measures durations, never feeds results."""

import time
from typing import Callable


def measure(fn: Callable[[], None]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
