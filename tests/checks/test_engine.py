"""Engine behavior: suppression, selection, collection, ordering."""

from __future__ import annotations

import pytest

from repro.checks.engine import collect_files, run_checks
from repro.errors import CheckError

from tests.checks.support import (
    BUILTIN_RULES,
    FIXTURES,
    check,
    expected_markers,
    observed,
)


def test_noqa_suppresses_targeted_and_bare():
    report = check(FIXTURES / "noqa_suppressed.py")
    assert report.findings == []
    # One DET001 behind `# repro: noqa[DET001]`, one DET004 behind a
    # bare `# repro: noqa` — both counted, neither reported.
    assert report.noqa_suppressed == 2


def test_noqa_for_a_different_rule_does_not_suppress():
    path = FIXTURES / "noqa_mismatch.py"
    report = check(path)
    assert [(f.rule_id, f.line) for f in report.findings] == [("DET001", 7)]
    assert report.noqa_suppressed == 0


def test_select_restricts_to_the_named_rules():
    # det001_bad violates DET001 only; selecting DET004 must see nothing.
    report = check(FIXTURES / "det001_bad.py", select=["DET004"])
    assert report.findings == []
    assert report.rules_run == ["DET004"]


def test_select_unknown_rule_id_raises():
    with pytest.raises(CheckError, match="unknown rule id"):
        run_checks([FIXTURES / "det001_bad.py"], select=["NOPE999"])


def test_missing_path_raises():
    with pytest.raises(CheckError, match="does not exist"):
        run_checks([FIXTURES / "no_such_file.py"])


def test_collect_files_skips_pycache_and_hidden(tmp_path):
    (tmp_path / "keep.py").write_text("x = 1\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "skip.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "skip.py").write_text("x = 1\n")
    files = collect_files([tmp_path])
    assert [f.name for f in files] == ["keep.py"]


def test_explicit_file_argument_is_taken_as_is(tmp_path):
    hidden = tmp_path / ".hidden"
    hidden.mkdir()
    target = hidden / "direct.py"
    target.write_text("x = 1\n")
    assert [f.name for f in collect_files([target])] == ["direct.py"]


def test_findings_are_sorted_and_report_counts_agree():
    report = check(FIXTURES)
    assert report.findings == sorted(report.findings)
    assert report.errors + report.warnings == len(report.findings)
    assert report.files_scanned == len(list(FIXTURES.rglob("*.py")))


def test_whole_fixture_tree_matches_every_marker():
    # The master assertion: across all fixtures at once — project rules
    # seeing every module together — findings are exactly the markers.
    report = check(FIXTURES)
    assert observed(report) == expected_markers(FIXTURES)
    assert sorted(report.rules_run) == sorted(BUILTIN_RULES)
