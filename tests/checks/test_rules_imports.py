"""IMP rule family: syntax errors, undefined names, dead imports, cycles."""

from __future__ import annotations

import pytest

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)


def test_syntax_error_becomes_a_structured_imp000_finding():
    path = FIXTURES / "imp000_bad.py"
    report = check(path)
    assert_matches_markers(report, path)
    (finding,) = report.findings
    assert finding.rule_id == "IMP000"
    assert finding.message.startswith("syntax error:")


def test_syntax_error_skipped_when_imp000_not_selected():
    report = check(FIXTURES / "imp000_bad.py", select=["IMP001"])
    assert report.findings == []


@pytest.mark.parametrize("stem", ("imp001", "imp002"))
def test_bad_fixture_matches_markers(stem):
    path = FIXTURES / f"{stem}_bad.py"
    assert_matches_markers(check(path), path)


@pytest.mark.parametrize("stem", ("imp001", "imp002"))
def test_clean_twin_is_clean(stem):
    path = FIXTURES / f"{stem}_clean.py"
    assert observed(check(path)) == []


def test_imp001_names_the_missing_symbol():
    report = check(FIXTURES / "imp001_bad.py", select=["IMP001"])
    assert [f.message for f in report.findings] == [
        "undefined name 'SimulationError'"
    ]


def test_imp002_is_a_warning_not_an_error():
    report = check(FIXTURES / "imp002_bad.py", select=["IMP002"])
    assert report.findings
    assert {f.severity for f in report.findings} == {"warning"}
    assert sorted(f.message for f in report.findings) == [
        "unused import 'Optional'",
        "unused import 'json'",
    ]


def test_imp003_reports_the_cycle_once_at_the_anchor_import():
    path = FIXTURES / "cycpkg"
    report = check(path)
    assert_matches_markers(report, path)
    (finding,) = report.findings
    assert finding.rule_id == "IMP003"
    assert finding.message == "import cycle among: cycpkg.alpha, cycpkg.beta"
    assert finding.path.endswith("cycpkg/alpha.py")


def test_imp003_acyclic_twin_is_clean():
    assert observed(check(FIXTURES / "acyclic")) == []
