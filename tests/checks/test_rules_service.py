"""SVC rule family: service layering stays behind the job queue."""

from __future__ import annotations

from pathlib import Path

from repro.checks.engine import run_checks

from tests.checks.support import (
    FIXTURES,
    assert_matches_markers,
    check,
    observed,
)

SERVICE = FIXTURES / "service"


def test_bad_fixture_matches_markers():
    path = SERVICE / "handlers_bad.py"
    assert_matches_markers(check(path), path)


def test_clean_twin_is_clean():
    path = SERVICE / "handlers_clean.py"
    assert observed(check(path)) == []


def test_executor_module_is_allowlisted():
    # The identical simulate_trace call that fires in handlers_bad.py is
    # sanctioned in service/executor.py — that's where queued jobs run.
    path = SERVICE / "executor.py"
    assert observed(check(path)) == []


def test_svc001_only_applies_to_service_modules(tmp_path: Path):
    # The same direct call outside a service directory is not SVC001's
    # business (PERF001 et al. have their own jurisdictions).
    module = tmp_path / "elsewhere.py"
    module.write_text(
        "def run(runtime, trace, config):\n"
        "    return runtime.simulate_trace(trace, config)\n",
        encoding="utf-8",
    )
    report = run_checks([module], select=["SVC001"])
    assert report.findings == []


def test_svc001_is_an_error():
    report = check(SERVICE / "handlers_bad.py", select=["SVC001"])
    assert report.findings
    assert all(f.severity == "error" for f in report.findings)


def test_real_service_modules_are_clean():
    src = Path(__file__).resolve().parents[2] / "src" / "repro" / "service"
    report = run_checks([src], select=["SVC001"])
    assert report.findings == []


# -- transitive reachability over the call graph ---------------------------


def test_transitive_fixture_matches_markers():
    # The handler only calls quick_estimate(); simulate_trace appears
    # nowhere in the file.  The finding exists because the call graph
    # resolves the import into simlib and walks the chain.
    bad = SERVICE / "estimates_bad.py"
    report = check(bad, FIXTURES / "simlib.py", select=["SVC001"])
    assert_matches_markers(report, bad)


def test_transitive_finding_prints_the_chain():
    report = check(
        SERVICE / "estimates_bad.py", FIXTURES / "simlib.py",
        select=["SVC001"],
    )
    assert len(report.findings) == 1
    message = report.findings[0].message
    assert "transitively runs simulation" in message
    assert "simlib.quick_estimate" in message
    assert "simlib._run_model" in message
    assert message.endswith("simulate_trace()")


def test_transitive_needs_the_helper_in_the_analyzed_set():
    # Without simlib.py the import cannot be resolved, so the handler
    # is (conservatively) silent — reachability never guesses.
    report = check(SERVICE / "estimates_bad.py", select=["SVC001"])
    assert observed(report) == []
