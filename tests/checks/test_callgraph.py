"""The project call graph: edges, inference, reachability, chains."""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict

from repro.checks.astutils import parse_module
from repro.checks.callgraph import MODULE_BODY, build_call_graph


def _graph(tmp_path: Path, sources: Dict[str, str]):
    modules = []
    for name, source in sources.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        modules.append(parse_module(target, target.as_posix()))
    return build_call_graph(modules)


def _edges(graph, caller):
    return {s.callee for s in graph.sites.get(caller, ()) if s.callee}


def test_local_function_calls_become_edges(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            def low():
                return 1


            def high():
                return low()
            """
        },
    )
    assert "mod.low" in _edges(graph, "mod.high")


def test_module_body_calls_attach_to_the_module_pseudo_function(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            def setup():
                return 2


            VALUE = setup()
            """
        },
    )
    assert "mod.setup" in _edges(graph, f"mod.{MODULE_BODY}")


def test_decorator_wrapped_defs_keep_their_edges(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            def deco(func):
                return func


            def target():
                return 3


            @deco
            def wrapped():
                return target()
            """
        },
    )
    # Decoration doesn't hide the function: it is indexed under its
    # own qualname and its body edges survive.
    assert "mod.wrapped" in graph.functions
    assert "mod.target" in _edges(graph, "mod.wrapped")


def test_methods_resolve_through_self(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            class Worker:
                def step(self):
                    return self._one()

                def _one(self):
                    return 1
            """
        },
    )
    assert "mod.Worker._one" in _edges(graph, "mod.Worker.step")


def test_annotated_attribute_types_resolve_method_calls(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "store.py": """
            class Store:
                def save(self, record):
                    return record
            """,
            "svc.py": """
            from store import Store


            class Service:
                def __init__(self, store: Store):
                    self.store = store

                def persist(self, record):
                    return self.store.save(record)
            """,
        },
    )
    assert "store.Store.save" in _edges(graph, "svc.Service.persist")


def test_cross_module_imports_resolve(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "util.py": """
            def helper():
                return 0
            """,
            "app.py": """
            from util import helper as h


            def main():
                return h()
            """,
        },
    )
    assert "util.helper" in _edges(graph, "app.main")


def test_thread_spawns_are_marked_and_discovered(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            import threading


            class Pump:
                def start(self):
                    worker = threading.Thread(target=self._loop)
                    worker.start()

                def _loop(self):
                    return None
            """
        },
    )
    spawn = [
        s for s in graph.sites.get("mod.Pump.start", ()) if s.kind == "thread"
    ]
    assert [s.callee for s in spawn] == ["mod.Pump._loop"]
    assert "mod.Pump._loop" in graph.thread_entry_points()
    assert "mod.Pump" in graph.threaded_classes()


def test_lock_and_threadsafe_attrs_are_inferred(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            import queue
            import threading


            class Shared:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = queue.Queue()
                    self._count = 0
            """
        },
    )
    info = graph.classes["mod.Shared"]
    assert info.lock_attrs == {"_lock"}
    assert "_jobs" in info.threadsafe_attrs


def test_reaching_set_excludes_thread_edges_on_request(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            import threading


            def sink():
                return None


            def direct():
                return sink()


            def spawner():
                threading.Thread(target=sink).start()
            """
        },
    )
    followed = graph.reaching_set({"mod.sink"}, follow_threads=True)
    severed = graph.reaching_set({"mod.sink"}, follow_threads=False)
    assert "mod.direct" in followed and "mod.direct" in severed
    assert "mod.spawner" in followed
    assert "mod.spawner" not in severed


def test_call_chain_is_shortest_path(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            def goal():
                return 0


            def near(
            ):
                return goal()


            def far():
                return near()


            def start():
                far()
                near()
            """
        },
    )
    chain = graph.call_chain("mod.start", {"mod.goal"})
    assert chain is not None
    # start -> near -> goal beats start -> far -> near -> goal.
    assert [s.callee for s in chain] == ["mod.near", "mod.goal"]


def test_external_calls_keep_their_dotted_names(tmp_path):
    graph = _graph(
        tmp_path,
        {
            "mod.py": """
            import os


            def swap(a, b):
                os.replace(a, b)
            """
        },
    )
    (site,) = [
        s for s in graph.sites.get("mod.swap", ()) if s.dotted is not None
    ]
    assert site.callee is None
    assert site.dotted == "os.replace"
