"""Tests for the clustering algorithms: leader, k-means, agglomerative."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.hierarchical import agglomerative_cluster
from repro.core.kmeans import kmeans
from repro.core.kselect import bic_score, select_k_bic, silhouette_score
from repro.core.leader import leader_cluster
from repro.errors import ClusteringError


def blobs(centers, points_per_blob=20, spread=0.05, seed=0):
    """Well-separated Gaussian blobs for sanity-checking clusterers."""
    rng = np.random.default_rng(seed)
    rows = []
    for center in centers:
        rows.append(rng.normal(center, spread, size=(points_per_blob, len(center))))
    return np.vstack(rows)


THREE_BLOBS = blobs([[0, 0], [5, 5], [10, 0]])

matrices = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 30), st.integers(1, 5)),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
)


class TestLeader:
    def test_recovers_blobs(self):
        result = leader_cluster(THREE_BLOBS, radius=1.0)
        assert result.num_clusters == 3
        # All members of a blob share a label.
        for start in (0, 20, 40):
            assert len(set(result.labels[start : start + 20])) == 1

    def test_radius_extremes(self):
        tight = leader_cluster(THREE_BLOBS, radius=1e-9)
        assert tight.num_clusters == len(THREE_BLOBS)
        loose = leader_cluster(THREE_BLOBS, radius=1e6)
        assert loose.num_clusters == 1

    def test_leaders_are_first_members(self):
        result = leader_cluster(THREE_BLOBS, radius=1.0)
        np.testing.assert_array_equal(result.leader_indices, [0, 20, 40])

    def test_deterministic(self):
        a = leader_cluster(THREE_BLOBS, radius=1.0)
        b = leader_cluster(THREE_BLOBS, radius=1.0)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_bad_radius_rejected(self):
        with pytest.raises(ClusteringError, match="radius"):
            leader_cluster(THREE_BLOBS, radius=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            leader_cluster(np.empty((0, 3)), radius=1.0)

    @settings(max_examples=30, deadline=None)
    @given(matrices, st.floats(min_value=0.01, max_value=100))
    def test_invariants(self, matrix, radius):
        result = leader_cluster(matrix, radius)
        n = matrix.shape[0]
        assert result.labels.shape == (n,)
        assert result.labels.min() >= 0
        assert result.num_clusters == result.labels.max() + 1
        # Every point is within radius of its cluster's leader.
        for i in range(n):
            leader = result.leader_indices[result.labels[i]]
            dist = np.linalg.norm(matrix[i] - matrix[leader])
            assert dist <= radius + 1e-9 or i == leader


class TestKMeans:
    def test_recovers_blobs(self):
        result = kmeans(THREE_BLOBS, k=3, seed=1)
        assert result.num_clusters == 3
        for start in (0, 20, 40):
            assert len(set(result.labels[start : start + 20])) == 1

    def test_deterministic_given_seed(self):
        a = kmeans(THREE_BLOBS, k=3, seed=5)
        b = kmeans(THREE_BLOBS, k=3, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_inertia_decreases_with_k(self):
        inertias = [kmeans(THREE_BLOBS, k=k, seed=0).inertia for k in (1, 3, 10)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_k_equals_n(self):
        matrix = np.arange(10.0).reshape(5, 2)
        result = kmeans(matrix, k=5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_no_empty_clusters(self):
        result = kmeans(THREE_BLOBS, k=7, seed=3)
        assert set(result.labels) == set(range(7))

    def test_bad_k_rejected(self):
        with pytest.raises(ClusteringError, match="k must be"):
            kmeans(THREE_BLOBS, k=0)
        with pytest.raises(ClusteringError, match="k must be"):
            kmeans(THREE_BLOBS, k=len(THREE_BLOBS) + 1)

    def test_duplicate_points_handled(self):
        matrix = np.ones((10, 3))
        result = kmeans(matrix, k=2, seed=0)
        assert result.labels.shape == (10,)


class TestAgglomerative:
    @pytest.mark.parametrize("linkage", ["average", "complete"])
    def test_recovers_blobs(self, linkage):
        result = agglomerative_cluster(THREE_BLOBS, threshold=2.0, linkage=linkage)
        assert result.num_clusters == 3

    def test_threshold_extremes(self):
        one = agglomerative_cluster(THREE_BLOBS, threshold=1e6)
        assert one.num_clusters == 1
        many = agglomerative_cluster(THREE_BLOBS, threshold=1e-9)
        assert many.num_clusters == len(THREE_BLOBS)

    def test_single_point(self):
        result = agglomerative_cluster(np.ones((1, 2)), threshold=1.0)
        assert result.num_clusters == 1

    def test_complete_at_most_average_merging(self):
        # Complete linkage is stricter, so never fewer clusters... actually
        # never merges more than average at the same threshold.
        avg = agglomerative_cluster(THREE_BLOBS, 2.0, "average").num_clusters
        comp = agglomerative_cluster(THREE_BLOBS, 2.0, "complete").num_clusters
        assert comp >= avg

    def test_bad_linkage_rejected(self):
        with pytest.raises(Exception):
            agglomerative_cluster(THREE_BLOBS, 1.0, linkage="single!")

    def test_labels_contiguous(self):
        result = agglomerative_cluster(THREE_BLOBS, threshold=2.0)
        assert set(result.labels) == set(range(result.num_clusters))


class TestKSelect:
    def test_bic_prefers_true_k(self):
        selection = select_k_bic(THREE_BLOBS, [1, 2, 3, 5, 8], seed=0)
        assert selection.k == 3

    def test_bic_by_k_recorded(self):
        selection = select_k_bic(THREE_BLOBS, [2, 3], seed=0)
        assert [k for k, _ in selection.bic_by_k] == [2, 3]

    def test_invalid_candidates_rejected(self):
        with pytest.raises(ClusteringError, match="no valid k"):
            select_k_bic(THREE_BLOBS, [0, 1000])

    def test_bic_score_finite_for_normal_case(self):
        result = kmeans(THREE_BLOBS, k=3, seed=0)
        assert np.isfinite(bic_score(THREE_BLOBS, result))

    def test_silhouette_high_for_blobs(self):
        result = kmeans(THREE_BLOBS, k=3, seed=0)
        score = silhouette_score(THREE_BLOBS, result.labels)
        assert score > 0.8

    def test_silhouette_requires_two_clusters(self):
        with pytest.raises(ClusteringError, match="two clusters"):
            silhouette_score(THREE_BLOBS, np.zeros(len(THREE_BLOBS), dtype=int))
