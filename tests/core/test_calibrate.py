"""Tests for automatic radius calibration."""

import pytest

from repro.core.calibrate import calibrate_radius
from repro.errors import ClusteringError
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


@pytest.fixture(scope="module")
def trace():
    game = GameProfile.preset("bioshock1_like").scaled(0.1)
    return TraceGenerator(game, seed=4).generate(num_frames=16)


class TestCalibrateRadius:
    def test_hits_target_efficiency(self, trace):
        result = calibrate_radius(
            trace, CFG, target_efficiency=0.5, iterations=8, sample_frames=6
        )
        assert abs(result.achieved.mean_efficiency - 0.5) < 0.12

    def test_error_budget_respected(self, trace):
        result = calibrate_radius(
            trace, CFG, max_error=0.01, iterations=8, sample_frames=6
        )
        assert result.achieved.mean_error <= 0.01 + 1e-9

    def test_error_budget_picks_largest_feasible(self, trace):
        tight = calibrate_radius(
            trace, CFG, max_error=0.002, iterations=8, sample_frames=6
        )
        loose = calibrate_radius(
            trace, CFG, max_error=0.05, iterations=8, sample_frames=6
        )
        assert loose.radius >= tight.radius
        assert loose.achieved.mean_efficiency >= tight.achieved.mean_efficiency

    def test_history_recorded(self, trace):
        result = calibrate_radius(
            trace, CFG, target_efficiency=0.5, iterations=5, sample_frames=4
        )
        assert len(result.history) == 5
        for point in result.history:
            assert 0.0 <= point.mean_efficiency < 1.0

    def test_requires_exactly_one_objective(self, trace):
        with pytest.raises(ClusteringError, match="exactly one"):
            calibrate_radius(trace, CFG)
        with pytest.raises(ClusteringError, match="exactly one"):
            calibrate_radius(trace, CFG, target_efficiency=0.5, max_error=0.01)

    def test_bad_targets_rejected(self, trace):
        with pytest.raises(ClusteringError):
            calibrate_radius(trace, CFG, target_efficiency=1.5)
        with pytest.raises(ClusteringError):
            calibrate_radius(trace, CFG, max_error=-0.1)
        with pytest.raises(ClusteringError, match="radius_bounds"):
            calibrate_radius(
                trace, CFG, target_efficiency=0.5, radius_bounds=(2.0, 1.0)
            )

    def test_infeasible_budget_falls_back_to_tightest(self, trace):
        result = calibrate_radius(
            trace,
            CFG,
            max_error=1e-12,
            iterations=4,
            sample_frames=4,
            radius_bounds=(0.05, 1.0),
        )
        assert result.radius == 0.05
