"""Tests for performance-signal phase detection (E10's foil)."""

import numpy as np
import pytest

from repro.core.perfphase import (
    cross_architecture_agreement,
    detect_phases_from_performance,
    pass_time_matrix,
)
from repro.errors import PhaseDetectionError
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

SMALL = GameProfile.preset("bioshock1_like").scaled(0.06)


@pytest.fixture(scope="module")
def game_trace():
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
        )
    )
    return TraceGenerator(SMALL, seed=31).generate(script=script)


class TestPassTimeMatrix:
    def test_shape_and_totals(self, game_trace):
        config = GpuConfig.preset("mainstream")
        matrix = pass_time_matrix(game_trace, config)
        assert matrix.shape[0] == game_trace.num_frames
        assert matrix.shape[1] >= 3  # forward, shadow, post, ui, ...
        assert np.all(matrix >= 0)
        assert np.all(matrix.sum(axis=1) > 0)

    def test_architecture_changes_matrix(self, game_trace):
        a = pass_time_matrix(game_trace, GpuConfig.preset("lowpower"))
        b = pass_time_matrix(game_trace, GpuConfig.preset("highend"))
        assert a.shape == b.shape
        assert not np.allclose(a, b)


class TestDetectFromPerformance:
    def test_finds_repetition(self, game_trace):
        matrix = pass_time_matrix(game_trace, GpuConfig.preset("mainstream"))
        phases = detect_phases_from_performance(matrix, interval_length=4)
        assert len(phases) == 6
        assert max(phases) + 1 < len(phases)  # some repetition found

    def test_tolerance_zero_splits_everything(self, game_trace):
        matrix = pass_time_matrix(game_trace, GpuConfig.preset("mainstream"))
        strict = detect_phases_from_performance(matrix, 4, tolerance=0.0)
        loose = detect_phases_from_performance(matrix, 4, tolerance=0.5)
        assert max(strict) >= max(loose)

    def test_bad_inputs_rejected(self):
        with pytest.raises(PhaseDetectionError):
            detect_phases_from_performance(np.empty((0, 3)))
        with pytest.raises(PhaseDetectionError):
            detect_phases_from_performance(np.ones((4, 2)), tolerance=-1)


class TestAgreement:
    def test_identical_labelings(self):
        assert cross_architecture_agreement((0, 1, 0, 2), (0, 1, 0, 2)) == 1.0

    def test_renamed_labels_still_agree(self):
        assert cross_architecture_agreement((0, 1, 0), (5, 7, 5)) == 1.0

    def test_disagreement_detected(self):
        value = cross_architecture_agreement((0, 0, 1, 1), (0, 1, 0, 1))
        assert value < 1.0

    def test_bounds(self):
        value = cross_architecture_agreement((0, 1, 2, 0), (0, 0, 0, 0))
        assert 0.0 <= value <= 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(PhaseDetectionError):
            cross_architecture_agreement((0, 1), (0, 1, 2))

    def test_single_interval_rejected(self):
        with pytest.raises(PhaseDetectionError):
            cross_architecture_agreement((0,), (0,))
