"""Tests for the per-frame clustering driver, representatives, metrics."""

import numpy as np
import pytest

from repro.core.cluster_frame import cluster_frame
from repro.core.features import FeatureExtractor
from repro.core.metrics import (
    cluster_outlier_rate,
    cluster_quality,
    clustering_efficiency,
    frame_prediction_error,
)
from repro.core.representatives import cluster_sizes, representative_indices
from repro.errors import ClusteringError, ValidationError


@pytest.fixture
def frame_features(simple_trace):
    return FeatureExtractor(simple_trace).frame_matrix(simple_trace.frames[0])


class TestClusterFrame:
    def test_leader_default(self, frame_features):
        clustering = cluster_frame(frame_features)
        assert clustering.num_draws == frame_features.shape[0]
        assert 1 <= clustering.num_clusters <= clustering.num_draws
        assert clustering.weights.sum() == clustering.num_draws

    def test_groups_by_shader_family(self, frame_features, simple_trace):
        # The fixture frame has 8 similar shader-1 draws, 4 shader-2 draws
        # and 1 fullscreen draw; a moderate radius should group families.
        clustering = cluster_frame(frame_features, radius=1.5)
        labels = clustering.labels
        shader_ids = [d.shader_id for d in simple_trace.frames[0].draws()]
        by_shader = {}
        for label, sid in zip(labels, shader_ids):
            by_shader.setdefault(sid, set()).add(label)
        # Draws of different shader families never share a cluster.
        all_label_sets = list(by_shader.values())
        for i, a in enumerate(all_label_sets):
            for b in all_label_sets[i + 1 :]:
                assert not (a & b)

    def test_all_methods_run(self, frame_features):
        for method, kwargs in [
            ("leader", {}),
            ("kmeans", {"k": 4}),
            ("kmeans_bic", {}),
            ("agglomerative", {}),
        ]:
            clustering = cluster_frame(frame_features, method=method, **kwargs)
            assert clustering.method == method
            assert clustering.weights.sum() == frame_features.shape[0]

    def test_kmeans_requires_k(self, frame_features):
        with pytest.raises(ClusteringError, match="requires k"):
            cluster_frame(frame_features, method="kmeans")

    def test_labels_contiguous_and_reps_belong(self, frame_features):
        clustering = cluster_frame(frame_features, radius=0.5)
        assert set(clustering.labels) == set(range(clustering.num_clusters))
        for cluster, rep in enumerate(clustering.representatives):
            assert clustering.labels[rep] == cluster

    def test_efficiency_definition(self, frame_features):
        clustering = cluster_frame(frame_features)
        expected = 1.0 - clustering.num_clusters / clustering.num_draws
        assert clustering.efficiency == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ClusteringError):
            cluster_frame(np.empty((0, 5)))


class TestRepresentatives:
    def test_medoid_is_nearest_to_centroid(self):
        matrix = np.array([[0.0], [1.0], [2.0], [10.0]])
        labels = np.array([0, 0, 0, 1])
        reps = representative_indices(matrix, labels)
        assert reps[0] == 1  # centroid of {0,1,2} is 1.0
        assert reps[1] == 3

    def test_non_contiguous_labels_rejected(self):
        with pytest.raises(ClusteringError, match="contiguous"):
            representative_indices(np.ones((3, 1)), np.array([0, 2, 2]))

    def test_cluster_sizes(self):
        sizes = cluster_sizes(np.array([0, 0, 1, 2, 2, 2]))
        np.testing.assert_array_equal(sizes, [2, 1, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ClusteringError, match="rows"):
            representative_indices(np.ones((3, 1)), np.array([0, 0]))


class TestMetrics:
    def test_efficiency_bounds(self):
        assert clustering_efficiency(100, 34) == pytest.approx(0.66)
        assert clustering_efficiency(10, 10) == 0.0
        with pytest.raises(ValidationError):
            clustering_efficiency(10, 0)
        with pytest.raises(ValidationError):
            clustering_efficiency(10, 11)

    def test_prediction_error(self):
        assert frame_prediction_error(100.0, 101.0) == pytest.approx(0.01)
        assert frame_prediction_error(100.0, 99.0) == pytest.approx(0.01)
        with pytest.raises(ValidationError):
            frame_prediction_error(0.0, 1.0)

    def test_cluster_quality_perfect(self):
        matrix = np.zeros((4, 2))
        labels = np.array([0, 0, 1, 1])
        from repro.core.cluster_frame import FrameClustering

        clustering = FrameClustering(
            labels=labels,
            representatives=np.array([0, 2]),
            weights=np.array([2, 2]),
            method="test",
        )
        quality = cluster_quality(clustering, [5.0, 5.0, 7.0, 7.0])
        assert quality.intra_cluster_errors == (0.0, 0.0)
        assert quality.outlier_rate == 0.0

    def test_cluster_quality_outlier(self):
        from repro.core.cluster_frame import FrameClustering

        clustering = FrameClustering(
            labels=np.array([0, 0]),
            representatives=np.array([0]),
            weights=np.array([2]),
            method="test",
        )
        # rep time 1.0, member times (1.0, 3.0): estimate 2.0 vs true 4.0
        quality = cluster_quality(clustering, [1.0, 3.0])
        assert quality.intra_cluster_errors[0] == pytest.approx(0.5)
        assert quality.num_outliers == 1
        assert cluster_outlier_rate(clustering, [1.0, 3.0]) == 1.0

    def test_threshold_respected(self):
        from repro.core.cluster_frame import FrameClustering

        clustering = FrameClustering(
            labels=np.array([0, 0]),
            representatives=np.array([0]),
            weights=np.array([2]),
            method="test",
        )
        assert cluster_outlier_rate(clustering, [1.0, 1.2], outlier_threshold=0.2) == 0.0

    def test_time_length_mismatch_rejected(self):
        from repro.core.cluster_frame import FrameClustering

        clustering = FrameClustering(
            labels=np.array([0]),
            representatives=np.array([0]),
            weights=np.array([1]),
            method="test",
        )
        with pytest.raises(ValidationError):
            cluster_quality(clustering, [1.0, 2.0])
