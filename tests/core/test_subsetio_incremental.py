"""Tests for subset persistence and incremental clustering (extensions)."""

import io
import json

import numpy as np
import pytest

from repro.core.features import FeatureExtractor
from repro.core.incremental import IncrementalClusterer, fit_shared_normalizer
from repro.core.subsetio import (
    check_subset_against,
    load_subset,
    read_subset,
    save_subset,
    write_subset,
)
from repro.core.subsetting import build_subset
from repro.errors import ClusteringError, SubsetError
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

SMALL = GameProfile.preset("bioshock1_like").scaled(0.06)


@pytest.fixture(scope="module")
def game_trace():
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
        )
    )
    return TraceGenerator(SMALL, seed=17).generate(script=script)


class TestSubsetIO:
    def test_roundtrip(self, game_trace, tmp_path):
        subset = build_subset(game_trace)
        path = tmp_path / "subset.json"
        save_subset(subset, path)
        back = load_subset(path)
        assert back.frame_positions == subset.frame_positions
        assert back.frame_weights == subset.frame_weights
        assert back.parent_name == subset.parent_name
        assert back.method == subset.method

    def test_loaded_subset_still_estimates(self, game_trace, tmp_path):
        from repro.simgpu.batch import simulate_trace_batch
        from repro.simgpu.config import GpuConfig

        config = GpuConfig.preset("mainstream")
        subset = build_subset(game_trace)
        path = tmp_path / "subset.json"
        save_subset(subset, path)
        back = load_subset(path)
        actual = simulate_trace_batch(game_trace, config).total_time_ns
        estimate = back.estimate_on_config(game_trace, config)
        assert abs(estimate - actual) / actual < 0.1

    def test_detection_summary_serialized(self, game_trace):
        subset = build_subset(game_trace)
        buffer = io.StringIO()
        write_subset(subset, buffer)
        assert '"num_phases"' in buffer.getvalue()

    def test_roundtrip_with_detection_block(self, game_trace):
        # build_subset attaches phase-detection provenance, so the
        # written file carries the optional "detection" block — the
        # strict reader must accept exactly what the writer produced.
        subset = build_subset(game_trace)
        assert subset.detection is not None
        buffer = io.StringIO()
        write_subset(subset, buffer)
        back = read_subset(io.StringIO(buffer.getvalue()))
        assert back.frame_positions == subset.frame_positions
        assert back.frame_weights == subset.frame_weights
        assert back.parent_name == subset.parent_name
        assert back.parent_num_frames == subset.parent_num_frames
        assert back.parent_num_draws == subset.parent_num_draws
        assert back.subset_num_draws == subset.subset_num_draws
        assert back.method == subset.method

    def test_unknown_top_level_key_rejected(self, game_trace):
        subset = build_subset(game_trace)
        buffer = io.StringIO()
        write_subset(subset, buffer)
        record = json.loads(buffer.getvalue())
        record["surprise"] = 1
        with pytest.raises(SubsetError, match="unknown fields.*surprise"):
            read_subset(io.StringIO(json.dumps(record)))

    def test_unknown_detection_key_rejected(self, game_trace):
        subset = build_subset(game_trace)
        buffer = io.StringIO()
        write_subset(subset, buffer)
        record = json.loads(buffer.getvalue())
        record["detection"]["surprise"] = 1
        with pytest.raises(SubsetError, match="unknown detection fields"):
            read_subset(io.StringIO(json.dumps(record)))

    def test_missing_detection_key_rejected(self, game_trace):
        subset = build_subset(game_trace)
        buffer = io.StringIO()
        write_subset(subset, buffer)
        record = json.loads(buffer.getvalue())
        del record["detection"]["num_phases"]
        with pytest.raises(SubsetError, match="missing field 'detection"):
            read_subset(io.StringIO(json.dumps(record)))

    def test_non_object_json_rejected(self):
        with pytest.raises(SubsetError, match="JSON object"):
            read_subset(io.StringIO("[1, 2, 3]"))

    def test_bad_json_rejected(self):
        with pytest.raises(SubsetError, match="malformed"):
            read_subset(io.StringIO("{not json"))

    def test_bad_version_rejected(self):
        with pytest.raises(SubsetError, match="version"):
            read_subset(io.StringIO('{"version": 99}'))

    def test_missing_field_rejected(self):
        with pytest.raises(SubsetError, match="missing field"):
            read_subset(io.StringIO('{"version": 1, "parent_name": "x"}'))

    def test_check_against_matching_trace(self, game_trace):
        subset = build_subset(game_trace)
        check_subset_against(subset, game_trace)

    def test_check_against_wrong_trace(self, game_trace, simple_trace):
        subset = build_subset(game_trace)
        with pytest.raises(SubsetError, match="extracted from"):
            check_subset_against(subset, simple_trace)

    def test_check_against_different_seed(self, game_trace):
        other = TraceGenerator(SMALL, seed=18).generate(
            num_frames=game_trace.num_frames
        )
        subset = build_subset(game_trace)
        # Same name and frame count, different content.
        with pytest.raises(SubsetError, match="different seed"):
            check_subset_against(subset, other)


class TestIncrementalClusterer:
    @pytest.fixture()
    def matrices(self, game_trace):
        extractor = FeatureExtractor(game_trace)
        return [extractor.frame_matrix(f) for f in game_trace.frames]

    def test_matches_per_frame_counts_roughly(self, matrices):
        normalizer = fit_shared_normalizer(matrices[:4])
        clusterer = IncrementalClusterer(radius=0.3, normalizer=normalizer)
        clusterings = [clusterer.cluster_frame(m) for m in matrices]
        for clustering, matrix in zip(clusterings, matrices):
            assert clustering.num_draws == matrix.shape[0]
            assert int(clustering.weights.sum()) == matrix.shape[0]

    def test_later_frames_found_fewer_new_leaders(self, matrices):
        normalizer = fit_shared_normalizer(matrices)
        clusterer = IncrementalClusterer(radius=0.3, normalizer=normalizer)
        clusterer.cluster_frame(matrices[0])
        after_first = clusterer.num_live_leaders
        clusterer.cluster_frame(matrices[1])
        after_second = clusterer.num_live_leaders
        # The second (near-identical) frame adds few leaders.
        assert after_second - after_first < after_first * 0.5

    def test_idle_leaders_retired(self, matrices):
        normalizer = fit_shared_normalizer(matrices)
        clusterer = IncrementalClusterer(
            radius=0.3, normalizer=normalizer, max_idle_frames=1
        )
        clusterer.cluster_frame(matrices[0])
        # Menu-less frames keep most leaders alive; force retirement by
        # feeding a tiny synthetic matrix twice.
        far = np.full((1, matrices[0].shape[1]), 1e6)
        clusterer.cluster_frame(far)
        clusterer.cluster_frame(far)
        clusterer.cluster_frame(far)
        assert clusterer.num_live_leaders <= 2

    def test_deterministic(self, matrices):
        def run():
            normalizer = fit_shared_normalizer(matrices)
            clusterer = IncrementalClusterer(radius=0.3, normalizer=normalizer)
            return [clusterer.cluster_frame(m).num_clusters for m in matrices]

        assert run() == run()

    def test_prediction_quality_reasonable(self, game_trace, matrices):
        from repro.core.predict import predict_time_ns, rep_times_from_draw_times
        from repro.simgpu.batch import precompute_trace, simulate_frames_batch
        from repro.simgpu.config import GpuConfig

        config = GpuConfig.preset("mainstream")
        ground = simulate_frames_batch(
            game_trace, config, precompute_trace(game_trace)
        )
        normalizer = fit_shared_normalizer(matrices)
        clusterer = IncrementalClusterer(radius=0.3, normalizer=normalizer)
        errors = []
        for matrix, truth in zip(matrices, ground):
            clustering = clusterer.cluster_frame(matrix)
            rep_times = rep_times_from_draw_times(clustering, truth.draw_times_ns)
            predicted = predict_time_ns(rep_times, clustering.weights)
            errors.append(abs(predicted - truth.time_ns) / truth.time_ns)
        assert float(np.mean(errors)) < 0.05

    def test_bad_args_rejected(self, matrices):
        normalizer = fit_shared_normalizer(matrices)
        with pytest.raises(ClusteringError):
            IncrementalClusterer(radius=0.0, normalizer=normalizer)
        with pytest.raises(ClusteringError):
            IncrementalClusterer(radius=1.0, normalizer=normalizer,
                                 max_idle_frames=0)
        clusterer = IncrementalClusterer(radius=1.0, normalizer=normalizer)
        with pytest.raises(ClusteringError):
            clusterer.cluster_frame(np.empty((0, 3)))

    def test_fit_shared_normalizer_empty_rejected(self):
        with pytest.raises(ClusteringError):
            fit_shared_normalizer([])
