"""Tests for the composed (phase x clustering) subset artifact."""

import pytest

from repro.core.pipeline import SubsettingPipeline
from repro.core.subsetting import build_combined_subset, build_subset
from repro.errors import SubsetError
from repro.simgpu.batch import simulate_trace_batch
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


@pytest.fixture(scope="module")
def world():
    profile = GameProfile.preset("bioshock1_like").scaled(0.08)
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
        )
    )
    trace = TraceGenerator(profile, seed=61).generate(script=script)
    pipeline = SubsettingPipeline()
    clusterings = pipeline.cluster_all_frames(trace)
    subset = build_subset(trace)
    combined = build_combined_subset(trace, subset, clusterings)
    return trace, subset, clusterings, combined


class TestBuildCombinedSubset:
    def test_smaller_than_both_parts(self, world):
        trace, subset, clusterings, combined = world
        assert combined.num_frames == subset.num_frames
        assert combined.num_draws < subset.subset_num_draws
        assert combined.draw_fraction < subset.draw_fraction

    def test_draw_weights_cover_kept_frames(self, world):
        trace, subset, _, combined = world
        for position, weights in zip(subset.frame_positions, combined.draw_weights):
            assert sum(weights) == trace.frames[position].num_draws

    def test_rep_trace_preserves_frame_indices(self, world):
        trace, subset, _, combined = world
        for position, frame in zip(subset.frame_positions, combined.rep_trace.frames):
            assert frame.index == trace.frames[position].index

    def test_estimate_tracks_parent(self, world):
        trace, _, _, combined = world
        for preset in ("lowpower", "mainstream", "highend"):
            config = GpuConfig.preset(preset)
            actual = simulate_trace_batch(trace, config).total_time_ns
            estimate = combined.estimate_on_config(config)
            error = abs(estimate - actual) / actual
            assert error < 0.15, f"{preset}: {100 * error:.1f}%"

    def test_estimate_tracks_frequency_scaling(self, world):
        from repro.util.stats import pearson_correlation

        trace, _, _, combined = world
        clocks = (600.0, 900.0, 1200.0, 1500.0)
        parent, estimates = [], []
        for clock in clocks:
            config = CFG.with_core_clock(clock)
            parent.append(simulate_trace_batch(trace, config).total_time_ns)
            estimates.append(combined.estimate_on_config(config))
        parent_imp = [parent[0] / t - 1 for t in parent[1:]]
        est_imp = [estimates[0] / t - 1 for t in estimates[1:]]
        assert pearson_correlation(parent_imp, est_imp) > 0.995

    def test_wrong_trace_rejected(self, world, simple_trace):
        trace, subset, clusterings, _ = world
        with pytest.raises(SubsetError, match="built from"):
            build_combined_subset(simple_trace, subset, clusterings)

    def test_wrong_clustering_count_rejected(self, world):
        trace, subset, clusterings, _ = world
        with pytest.raises(SubsetError, match="clusterings"):
            build_combined_subset(trace, subset, clusterings[:-1])
