"""Tests for streaming phase detection."""

import pytest

from repro.core.online import OnlinePhaseDetector
from repro.core.phasedetect import detect_phases
from repro.errors import PhaseDetectionError
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

SMALL = GameProfile.preset("bioshock1_like").scaled(0.06)


@pytest.fixture(scope="module")
def game_trace():
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 6),  # partial tail interval
        )
    )
    return TraceGenerator(SMALL, seed=23).generate(script=script)


class TestOnlineDetector:
    def test_matches_offline_phase_sequence(self, game_trace):
        offline = detect_phases(
            game_trace, interval_length=4, mode="similarity", tolerance=0.10
        )
        online = OnlinePhaseDetector(interval_length=4, tolerance=0.10)
        for frame in game_trace.frames:
            online.feed(frame)
        online.finish()
        online_phases = tuple(d.phase for d in online.decisions)
        assert online_phases == offline.phase_ids

    def test_keep_policy_keeps_first_occurrence_only(self, game_trace):
        online = OnlinePhaseDetector(interval_length=4)
        for frame in game_trace.frames:
            online.feed(frame)
        online.finish()
        kept_phases = [d.phase for d in online.decisions if d.keep]
        assert len(kept_phases) == len(set(kept_phases)) == online.num_phases

    def test_decisions_cover_all_frames(self, game_trace):
        online = OnlinePhaseDetector(interval_length=4)
        for frame in game_trace.frames:
            online.feed(frame)
        online.finish()
        covered = sum(d.end_frame - d.start_frame for d in online.decisions)
        assert covered == game_trace.num_frames

    def test_feed_returns_decision_at_interval_boundary(self, game_trace):
        online = OnlinePhaseDetector(interval_length=4)
        outcomes = [online.feed(f) for f in game_trace.frames[:8]]
        assert outcomes[:3] == [None, None, None]
        assert outcomes[3] is not None
        assert outcomes[3].interval_index == 0
        assert outcomes[7].interval_index == 1

    def test_frames_kept_shrinks_relative_to_seen(self, game_trace):
        online = OnlinePhaseDetector(interval_length=4)
        for frame in game_trace.frames:
            online.feed(frame)
        online.finish()
        assert online.frames_kept < game_trace.num_frames

    def test_finish_handles_partial_interval(self, game_trace):
        online = OnlinePhaseDetector(interval_length=4)
        for frame in game_trace.frames[:6]:
            online.feed(frame)
        tail = online.finish()
        assert tail is not None
        assert tail.end_frame - tail.start_frame == 2

    def test_finish_idempotent_when_empty(self, game_trace):
        online = OnlinePhaseDetector(interval_length=2)
        online.feed(game_trace.frames[0])
        online.feed(game_trace.frames[1])
        assert online.finish() is None

    def test_bad_args_rejected(self, game_trace):
        with pytest.raises(Exception):
            OnlinePhaseDetector(interval_length=0)
        with pytest.raises(PhaseDetectionError):
            OnlinePhaseDetector(tolerance=-1.0)
        online = OnlinePhaseDetector()
        with pytest.raises(PhaseDetectionError, match="Frame"):
            online.feed("not a frame")
