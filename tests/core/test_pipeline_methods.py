"""Pipeline end-to-end with non-default clustering algorithms and phases."""

import pytest

from repro.core.pipeline import SubsettingPipeline
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


@pytest.fixture(scope="module")
def small_trace():
    profile = GameProfile.preset("bioshock1_like").scaled(0.05)
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
        )
    )
    return TraceGenerator(profile, seed=71).generate(script=script)


class TestPipelineVariants:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cluster_method": "kmeans", "k": 24},
            {"cluster_method": "agglomerative", "radius": 0.3},
            {"cluster_method": "leader", "normalize": "minmax", "radius": 0.05},
            {"phase_mode": "equality", "phase_tolerance": 0.25},
            {"interval_length": 2},
            {"interval_length": 8},
        ],
    )
    def test_variant_runs_and_stays_sane(self, small_trace, kwargs):
        pipeline = SubsettingPipeline(**kwargs)
        result = pipeline.run(small_trace, CFG)
        assert result.mean_prediction_error < 0.10
        assert 0.0 < result.mean_efficiency < 1.0
        assert result.subset.num_frames >= 1
        assert result.subset_time_error < 0.25

    def test_interval_one_keeps_fewest_frames_on_smooth_trace(self, small_trace):
        fine = SubsettingPipeline(interval_length=1).run(small_trace, CFG)
        coarse = SubsettingPipeline(interval_length=8).run(small_trace, CFG)
        # Finer intervals find more merges on a smooth capture.
        assert fine.subset.num_frames <= coarse.subset.num_frames + 4

    def test_lowpower_config_also_works(self, small_trace):
        result = SubsettingPipeline().run(small_trace, GpuConfig.preset("lowpower"))
        assert result.mean_prediction_error < 0.10
