"""Tests for feature extraction."""

import dataclasses

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, NUM_FEATURES, FeatureExtractor
from repro.errors import ValidationError
from repro.gfx.frame import Frame

from tests.conftest import make_draw


@pytest.fixture
def extractor(simple_trace):
    return FeatureExtractor(simple_trace)


class TestExtract:
    def test_vector_shape_and_names(self, extractor, simple_trace):
        draw = simple_trace.frames[0].draw_list[0]
        vector = extractor.extract(draw)
        assert vector.shape == (NUM_FEATURES,)
        assert len(FEATURE_NAMES) == NUM_FEATURES
        assert np.all(np.isfinite(vector))

    def test_identical_draws_identical_features(self, extractor):
        a = make_draw(shader_id=1)
        b = make_draw(shader_id=1)
        assert np.array_equal(extractor.extract(a), extractor.extract(b))

    def test_feature_values_spot_check(self, extractor):
        draw = make_draw(shader_id=1, vertex_count=99, pixels=1000,
                         shaded_fraction=0.5)
        vector = extractor.extract(draw)
        index = dict(zip(FEATURE_NAMES, range(NUM_FEATURES)))
        assert vector[index["log_vertices"]] == pytest.approx(np.log1p(99))
        assert vector[index["log_pixels_shaded"]] == pytest.approx(np.log1p(500))
        assert vector[index["num_textures"]] == 1.0
        assert vector[index["depth_reads"]] == 1.0
        assert vector[index["blend_reads_dest"]] == 0.0

    def test_microarch_independence(self, simple_trace):
        # Features must not change when only micro-architecture-relevant
        # shader properties (registers) change.
        trace_a = simple_trace
        shaders = dict(trace_a.shaders)
        s = shaders[1]
        shaders[1] = dataclasses.replace(
            s, vertex=dataclasses.replace(s.vertex, registers=64),
            pixel=dataclasses.replace(s.pixel, registers=64),
        )
        trace_b = dataclasses.replace(trace_a, shaders=shaders)
        draw = trace_a.frames[0].draw_list[0]
        va = FeatureExtractor(trace_a).extract(draw)
        vb = FeatureExtractor(trace_b).extract(draw)
        assert np.array_equal(va, vb)

    def test_instancing_visible_in_features(self, extractor):
        flat = make_draw(vertex_count=400, instance_count=1)
        inst = make_draw(vertex_count=100, instance_count=4)
        index = dict(zip(FEATURE_NAMES, range(NUM_FEATURES)))
        va, vb = extractor.extract(flat), extractor.extract(inst)
        # Same total vertex work...
        assert va[index["log_vertices"]] == pytest.approx(vb[index["log_vertices"]])
        # ...but instancing is still distinguishable.
        assert va[index["log_instances"]] != vb[index["log_instances"]]


class TestMatrices:
    def test_frame_matrix_shape(self, extractor, simple_trace):
        frame = simple_trace.frames[0]
        matrix = extractor.frame_matrix(frame)
        assert matrix.shape == (frame.num_draws, NUM_FEATURES)

    def test_empty_frame_rejected(self, extractor):
        with pytest.raises(ValidationError, match="no draws"):
            extractor.frame_matrix(Frame(index=0, passes=()))

    def test_trace_matrices_cover_all_frames(self, extractor, simple_trace):
        matrices = extractor.trace_matrices()
        assert len(matrices) == simple_trace.num_frames

    def test_unknown_shader_raises(self, simple_trace):
        extractor = FeatureExtractor(simple_trace)
        with pytest.raises(ValidationError, match="unknown shader"):
            extractor.extract(make_draw(shader_id=404))

    def test_caching_consistent(self, extractor):
        draw = make_draw(shader_id=2, texture_ids=(11, 12))
        first = extractor.extract(draw)
        second = extractor.extract(draw)
        assert np.array_equal(first, second)

    def test_matrix_rows_are_extract_vectors(self, extractor, simple_trace):
        # The vectorized matrix build must be bit-identical to stacking
        # per-draw extract() calls — it is the same arithmetic in
        # column order instead of row order.
        for frame in simple_trace.frames:
            draws = frame.draw_list
            matrix = extractor.draws_matrix(draws)
            rows = np.stack([extractor.extract(d) for d in draws])
            assert np.array_equal(matrix, rows)

    def test_empty_draws_matrix(self, extractor):
        matrix = extractor.draws_matrix([])
        assert matrix.shape == (0, NUM_FEATURES)
        assert matrix.dtype == np.float64

    def test_matrix_unknown_shader_raises(self, extractor):
        draws = [make_draw(shader_id=1), make_draw(shader_id=404)]
        with pytest.raises(ValidationError, match="unknown shader"):
            extractor.draws_matrix(draws)
