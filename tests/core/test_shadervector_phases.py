"""Tests for shader vectors and phase detection."""

import pytest

from repro.core.phasedetect import detect_phases, phase_purity
from repro.core.shadervector import (
    partition_intervals,
    quantize_count,
    relative_l1_distance,
    shader_vector,
)
from repro.errors import PhaseDetectionError
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

from tests.conftest import make_draw, make_world

SMALL = GameProfile.preset("bioshock1_like").scaled(0.06)


def repeating_trace(seed=3):
    """explore(8) combat(8) explore(8): phase 0 recurs at the end."""
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
        )
    )
    return TraceGenerator(SMALL, seed=seed).generate(script=script)


class TestShaderVector:
    def test_counts_draws_per_shader(self):
        trace = make_world([
            [make_draw(shader_id=1), make_draw(shader_id=1), make_draw(shader_id=2)]
        ])
        vector = shader_vector([trace.frames[0]])
        assert vector == {1: 2, 2: 1}

    def test_accumulates_across_frames(self):
        trace = make_world([[make_draw(shader_id=1)], [make_draw(shader_id=1)]])
        vector = shader_vector(list(trace.frames))
        assert vector == {1: 2}

    def test_empty_rejected(self):
        with pytest.raises(PhaseDetectionError):
            shader_vector([])


class TestQuantize:
    def test_zero_tolerance_identity(self):
        for count in (0, 1, 7, 1000):
            assert quantize_count(count, 0.0) == count

    def test_close_counts_same_level(self):
        assert quantize_count(100, 0.2) == quantize_count(105, 0.2)

    def test_far_counts_different_level(self):
        assert quantize_count(100, 0.1) != quantize_count(200, 0.1)

    def test_negative_rejected(self):
        with pytest.raises(PhaseDetectionError):
            quantize_count(-1, 0.1)
        with pytest.raises(PhaseDetectionError):
            quantize_count(1, -0.1)


class TestRelativeL1:
    def test_identical_is_zero(self):
        assert relative_l1_distance({1: 5, 2: 3}, {1: 5, 2: 3}) == 0.0

    def test_disjoint_is_large(self):
        assert relative_l1_distance({1: 5}, {2: 5}) == 2.0

    def test_small_count_jitter_small_distance(self):
        d = relative_l1_distance({1: 100, 2: 50}, {1: 103, 2: 49})
        assert d < 0.05

    def test_empty_rejected(self):
        with pytest.raises(PhaseDetectionError):
            relative_l1_distance({}, {})


class TestPartition:
    def test_exact_division(self):
        intervals = partition_intervals(12, 4)
        assert [(i.start, i.end) for i in intervals] == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_interval(self):
        intervals = partition_intervals(10, 4)
        assert intervals[-1].num_frames == 2
        assert sum(i.num_frames for i in intervals) == 10

    def test_bad_args_rejected(self):
        with pytest.raises(PhaseDetectionError):
            partition_intervals(0, 4)
        with pytest.raises(PhaseDetectionError):
            partition_intervals(10, 0)


class TestDetectPhases:
    @pytest.mark.parametrize("mode", ["similarity", "equality"])
    def test_finds_repetition(self, mode):
        trace = repeating_trace()
        tolerance = 0.15 if mode == "similarity" else 0.25
        detection = detect_phases(
            trace, interval_length=4, mode=mode, tolerance=tolerance
        )
        assert detection.has_repetition
        # First and last intervals are both 'explore zone 0'.
        assert detection.phase_ids[0] == detection.phase_ids[-1]

    def test_phase_ids_first_occurrence_ordered(self):
        trace = repeating_trace()
        detection = detect_phases(trace, interval_length=4)
        seen = []
        for phase in detection.phase_ids:
            if phase not in seen:
                seen.append(phase)
        assert seen == sorted(seen)

    def test_members_and_representatives(self):
        trace = repeating_trace()
        detection = detect_phases(trace, interval_length=4)
        members = detection.phase_members()
        reps = detection.representative_intervals()
        assert set(members) == set(reps)
        for phase, rep in reps.items():
            assert rep == members[phase][0]

    def test_frame_counts_cover_trace(self):
        trace = repeating_trace()
        detection = detect_phases(trace, interval_length=4)
        assert sum(detection.phase_frame_counts().values()) == trace.num_frames

    def test_retained_fraction_below_one_with_repetition(self):
        trace = repeating_trace()
        detection = detect_phases(trace, interval_length=4)
        assert detection.retained_frame_fraction < 1.0

    def test_interval_length_one(self):
        trace = repeating_trace()
        detection = detect_phases(trace, interval_length=1)
        assert detection.num_intervals == trace.num_frames

    def test_zero_tolerance_equality_is_strict(self):
        trace = repeating_trace()
        detection = detect_phases(
            trace, interval_length=4, mode="equality", tolerance=0.0
        )
        # Raw-count equality rarely matches exactly across camera jitter:
        # strictly more phases than the tolerant similarity mode.
        loose = detect_phases(trace, interval_length=4, mode="similarity",
                              tolerance=0.15)
        assert detection.num_phases >= loose.num_phases

    def test_bad_mode_rejected(self):
        with pytest.raises(Exception):
            detect_phases(repeating_trace(), mode="psychic")


class TestPhasePurity:
    def test_high_purity_on_script(self):
        trace = repeating_trace()
        detection = detect_phases(trace, interval_length=4)
        assert phase_purity(detection, trace) >= 0.75

    def test_requires_ground_truth(self, simple_trace):
        detection = detect_phases(simple_trace, interval_length=1)
        with pytest.raises(PhaseDetectionError, match="ground-truth"):
            phase_purity(detection, simple_trace)
