"""Tests for normalization and distance computations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import cdist_euclidean, euclidean_to_point, pairwise_euclidean
from repro.core.normalize import Normalizer
from repro.errors import ValidationError

matrices = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(2, 20), st.integers(1, 6)),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestNormalizer:
    def test_zscore_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(5.0, 3.0, size=(200, 4))
        out = Normalizer("zscore").fit_transform(matrix)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-12)

    def test_minmax_range(self):
        rng = np.random.default_rng(0)
        matrix = rng.uniform(-5, 10, size=(50, 3))
        out = Normalizer("minmax").fit_transform(matrix)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_none_is_identity(self):
        matrix = np.arange(12.0).reshape(4, 3)
        out = Normalizer("none").fit_transform(matrix)
        np.testing.assert_array_equal(out, matrix)

    def test_constant_column_maps_to_zero(self):
        matrix = np.column_stack([np.ones(10), np.arange(10.0)])
        out = Normalizer("zscore").fit_transform(matrix)
        np.testing.assert_array_equal(out[:, 0], 0.0)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ValidationError, match="before fit"):
            Normalizer().transform(np.ones((2, 2)))

    def test_column_mismatch_rejected(self):
        normalizer = Normalizer().fit(np.ones((3, 2)))
        with pytest.raises(ValidationError, match="columns"):
            normalizer.transform(np.ones((3, 5)))

    def test_bad_method_rejected(self):
        with pytest.raises(ValidationError):
            Normalizer("sigmoid")

    def test_nan_rejected(self):
        matrix = np.array([[1.0, np.nan]])
        with pytest.raises(ValidationError, match="non-finite"):
            Normalizer().fit(matrix)

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_zscore_idempotent_shape(self, matrix):
        out = Normalizer("zscore").fit_transform(matrix)
        assert out.shape == matrix.shape
        assert np.all(np.isfinite(out))


class TestDistances:
    def test_euclidean_to_point_known(self):
        matrix = np.array([[0.0, 0.0], [3.0, 4.0]])
        dists = euclidean_to_point(matrix, np.array([0.0, 0.0]))
        np.testing.assert_allclose(dists, [0.0, 5.0])

    def test_pairwise_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(15, 4))
        dists = pairwise_euclidean(matrix)
        np.testing.assert_allclose(dists, dists.T, atol=1e-9)
        np.testing.assert_allclose(np.diag(dists), 0.0, atol=1e-6)

    def test_cdist_matches_pairwise(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(10, 3))
        np.testing.assert_allclose(
            cdist_euclidean(matrix, matrix), pairwise_euclidean(matrix), atol=1e-9
        )

    def test_cdist_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="incompatible"):
            cdist_euclidean(np.ones((2, 3)), np.ones((2, 4)))

    @settings(max_examples=30, deadline=None)
    @given(matrices)
    def test_triangle_inequality_samples(self, matrix):
        dists = pairwise_euclidean(matrix)
        n = matrix.shape[0]
        rng = np.random.default_rng(0)
        for _ in range(10):
            i, j, k = rng.integers(0, n, size=3)
            assert dists[i, j] <= dists[i, k] + dists[k, j] + 1e-6
