"""Tests for subset construction, prediction, and the full pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import SubsettingPipeline
from repro.core.predict import (
    predict_frame,
    predict_time_ns,
    rep_times_from_draw_times,
)
from repro.core.cluster_frame import cluster_frame
from repro.core.features import FeatureExtractor
from repro.core.phasedetect import detect_phases
from repro.core.subsetting import build_subset
from repro.errors import SubsetError, ValidationError
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")
SMALL = GameProfile.preset("bioshock1_like").scaled(0.06)


@pytest.fixture(scope="module")
def game_trace():
    script = PhaseScript(
        (
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
            Segment(SegmentKind.EXPLORE, 0, 8),
            Segment(SegmentKind.COMBAT, 0, 8),
        )
    )
    return TraceGenerator(SMALL, seed=5).generate(script=script)


class TestPredict:
    def test_predict_time_weighted_sum(self):
        assert predict_time_ns([10.0, 5.0], [3, 2]) == pytest.approx(40.0)

    def test_representative_draw_order_sorted(self, game_trace):
        from repro.core.predict import representative_draw_order

        frame = game_trace.frames[0]
        features = FeatureExtractor(game_trace).frame_matrix(frame)
        clustering = cluster_frame(features)
        order = representative_draw_order(clustering)
        assert list(order) == sorted(order)
        assert set(order) == set(int(r) for r in clustering.representatives)

    def test_isolated_error_requires_computation(self):
        from repro.core.predict import FramePrediction

        prediction = FramePrediction(
            frame_index=0,
            actual_time_ns=100.0,
            predicted_time_ns=101.0,
            num_draws=10,
            num_clusters=5,
        )
        with pytest.raises(ValidationError, match="isolated"):
            prediction.isolated_error

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValidationError):
            predict_time_ns([1.0], [1, 2])

    def test_predict_frame_both_paths(self, game_trace):
        frame = game_trace.frames[0]
        features = FeatureExtractor(game_trace).frame_matrix(frame)
        clustering = cluster_frame(features)
        ground = GpuSimulator(CFG).simulate_frame(
            frame, game_trace, keep_draw_costs=True
        )
        prediction = predict_frame(
            frame,
            game_trace,
            clustering,
            CFG,
            actual_time_ns=ground.time_ns,
            draw_times_ns=ground.draw_times_ns(),
        )
        assert prediction.error < 0.1
        assert prediction.isolated_error < 0.25
        assert prediction.efficiency > 0.0

    def test_rep_times_lookup(self, game_trace):
        frame = game_trace.frames[0]
        features = FeatureExtractor(game_trace).frame_matrix(frame)
        clustering = cluster_frame(features)
        times = np.arange(1.0, clustering.num_draws + 1.0)
        rep_times = rep_times_from_draw_times(clustering, times)
        for cluster, value in enumerate(rep_times):
            assert value == times[clustering.representatives[cluster]]


class TestBuildSubset:
    def test_weights_recover_parent_frames(self, game_trace):
        subset = build_subset(game_trace, interval_length=4)
        assert sum(subset.frame_weights) == pytest.approx(game_trace.num_frames)

    def test_fraction_below_one_on_repetitive_trace(self, game_trace):
        subset = build_subset(game_trace, interval_length=4)
        assert subset.frame_fraction < 1.0
        assert 0.0 < subset.draw_fraction < 1.0

    def test_materialize_preserves_tables(self, game_trace):
        subset = build_subset(game_trace, interval_length=4)
        sub_trace = subset.materialize(game_trace)
        assert sub_trace.num_frames == subset.num_frames
        assert sub_trace.shaders.keys() == game_trace.shaders.keys()

    def test_materialize_wrong_trace_rejected(self, game_trace, simple_trace):
        subset = build_subset(game_trace, interval_length=4)
        with pytest.raises(SubsetError, match="built from"):
            subset.materialize(simple_trace)

    def test_estimate_total_close_to_actual(self, game_trace):
        subset = build_subset(game_trace, interval_length=4)
        actual = GpuSimulator(CFG).simulate_trace(game_trace).total_time_ns
        estimate = subset.estimate_on_config(game_trace, CFG)
        assert abs(estimate - actual) / actual < 0.08

    def test_detection_and_kwargs_mutually_exclusive(self, game_trace):
        detection = detect_phases(game_trace)
        with pytest.raises(SubsetError, match="not both"):
            build_subset(game_trace, detection, interval_length=2)

    def test_estimate_wrong_length_rejected(self, game_trace):
        subset = build_subset(game_trace, interval_length=4)
        with pytest.raises(SubsetError, match="frame times"):
            subset.estimate_total_time_ns([1.0])


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self, game_trace):
        return SubsettingPipeline().run(game_trace, CFG, keep_clusterings=True)

    def test_one_prediction_per_frame(self, result, game_trace):
        assert len(result.frame_predictions) == game_trace.num_frames

    def test_paper_metrics_in_range(self, result):
        assert result.mean_prediction_error < 0.05
        assert 0.2 < result.mean_efficiency < 0.95
        assert 0.0 <= result.mean_outlier_rate < 0.25

    def test_isolated_error_at_least_in_context(self, result):
        # Isolated re-simulation adds cold-context bias on top of pure
        # clustering error (they can cross on individual frames, but not
        # dramatically on the average).
        assert result.mean_isolated_error >= result.mean_prediction_error * 0.5

    def test_subset_estimate_close(self, result):
        assert result.subset_time_error < 0.1

    def test_combined_fraction_smaller_than_parts(self, result):
        assert result.combined_draw_fraction < result.subset.frame_fraction

    def test_report_renders(self, result):
        report = result.report()
        assert "prediction error" in report
        assert result.trace_name in report

    def test_clusterings_kept_when_asked(self, result, game_trace):
        assert len(result.clusterings) == game_trace.num_frames

    def test_representative_trace_structure(self, game_trace):
        pipeline = SubsettingPipeline()
        clusterings = pipeline.cluster_all_frames(game_trace)
        rep_trace = pipeline.representative_trace(game_trace, clusterings)
        assert rep_trace.num_frames == game_trace.num_frames
        for frame, clustering in zip(rep_trace.frames, clusterings):
            assert frame.num_draws == clustering.num_clusters

    def test_representative_trace_wrong_length_rejected(self, game_trace):
        pipeline = SubsettingPipeline()
        with pytest.raises(SubsetError):
            pipeline.representative_trace(game_trace, [])
