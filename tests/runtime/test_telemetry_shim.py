"""The Telemetry shim over repro.obs: honest timers, worker merges."""

import time

from repro.obs.spans import Tracer
from repro.runtime.engine import Runtime, TaskEngine
from repro.runtime.tasks import Task, TaskResult, task_function
from repro.runtime.telemetry import Telemetry, TelemetrySnapshot


@task_function("shim.sleepy")
def _sleepy(context, payload, deps):
    time.sleep(payload)
    return TaskResult(payload)


class TestNestedTimerAccounting:
    def test_nested_stage_does_not_double_count(self):
        telemetry = Telemetry()
        with telemetry.timer("outer"):
            with telemetry.timer("inner"):
                time.sleep(0.02)
        snap = telemetry.snapshot()
        # Both stages are on record...
        assert set(snap.timers_s) == {"outer", "inner"}
        # ...but only the top-level one counts toward wall time.
        assert set(snap.top_timers_s) == {"outer"}
        assert snap.stage_time_s <= snap.timers_s["outer"] * 1.001

    def test_summary_line_reports_top_level_only(self):
        telemetry = Telemetry()
        with telemetry.timer("outer"):
            with telemetry.timer("inner"):
                time.sleep(0.02)
        line = telemetry.snapshot().summary_line()
        total = float(line.split("stage_time=")[1].rstrip("s"))
        # Pre-fix this reported outer+inner (~2x the real wall time).
        assert total < 1.5 * telemetry.snapshot().timers_s["outer"]

    def test_summary_line_names_the_zero_timer_state(self):
        # All-cache-hit runs record no stage timers; the summary must say
        # so explicitly instead of silently dropping the stage column.
        line = Telemetry().snapshot().summary_line()
        assert "no stages recorded" in line
        assert "stage_time=" not in line

    def test_summary_line_keeps_stage_time_when_timers_exist(self):
        telemetry = Telemetry()
        with telemetry.timer("stage"):
            pass
        line = telemetry.snapshot().summary_line()
        assert "stage_time=" in line
        assert "no stages recorded" not in line

    def test_same_stage_reentered_at_top_accumulates(self):
        telemetry = Telemetry()
        for _ in range(2):
            with telemetry.timer("stage"):
                pass
        snap = telemetry.snapshot()
        assert snap.top_timers_s["stage"] == snap.timers_s["stage"]

    def test_handbuilt_snapshot_falls_back_to_all_timers(self):
        snap = TelemetrySnapshot(timers_s={"a": 1.0, "b": 2.0})
        assert snap.stage_time_s == 3.0

    def test_timer_opens_span_on_bound_tracer(self):
        telemetry = Telemetry(tracer=Tracer())
        with telemetry.timer("stagework"):
            pass
        spans = telemetry.tracer.spans()
        assert [s.name for s in spans] == ["stagework"]
        assert spans[0].category == "stage"


class TestMergeTimers:
    def test_merge_timers_accumulates_as_nested(self):
        telemetry = Telemetry()
        telemetry.merge_timers({"worker.sim": 0.5})
        telemetry.merge_timers({"worker.sim": 0.25, "worker.cluster": 0.1})
        snap = telemetry.snapshot()
        assert snap.timers_s["worker.sim"] == 0.75
        assert snap.timers_s["worker.cluster"] == 0.1
        # Merged worker time elapses inside a parent stage: never top-level.
        assert "worker.sim" not in snap.top_timers_s
        assert snap.stage_time_s == 0.0

    def test_engine_merges_worker_timers_serial_and_pool(self):
        for jobs in (1, 2):
            telemetry = Telemetry()
            engine = TaskEngine(jobs=jobs, telemetry=telemetry)
            engine.run(
                [Task(f"s{i}", "shim.sleepy", payload=0.01) for i in range(2)]
            )
            snap = telemetry.snapshot()
            assert snap.timers_s["worker.shim.sleepy"] >= 0.02, f"jobs={jobs}"
            assert "worker.shim.sleepy" not in snap.top_timers_s

    def test_report_marks_nested_stages(self):
        telemetry = Telemetry()
        with telemetry.timer("outer"):
            with telemetry.timer("inner"):
                pass
        report = telemetry.report()
        assert "top-level" in report
        assert "nested" in report


class TestRuntimeWiring:
    def test_runtime_exposes_metrics_and_tracer(self):
        runtime = Runtime(jobs=1, tracer=Tracer())
        assert runtime.tracer is runtime.telemetry.tracer
        assert runtime.metrics is runtime.telemetry.metrics

    def test_labeled_counts_aggregate_in_snapshot(self):
        telemetry = Telemetry()
        telemetry.metrics.inc("frames_simulated", 3, phase="a")
        telemetry.metrics.inc("frames_simulated", 4, phase="b")
        assert telemetry.snapshot().counter("frames_simulated") == 7
        assert telemetry.counter("frames_simulated") == 7
