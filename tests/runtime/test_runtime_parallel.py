"""End-to-end runtime acceptance: parallel == serial, warm cache == free.

These are the issue's acceptance criteria: ``--jobs 4`` must reproduce
the serial pipeline bit for bit (predictions, subset positions, weights),
and a warm-cache suite re-run must perform zero frame simulations.
"""

import pytest

from repro.analysis.suite import subset_suite
from repro.analysis.sweep import pathfinding_sweep
from repro.analysis.validation import validate_subset
from repro.core.pipeline import SubsettingPipeline
from repro.core.subsetting import build_subset
from repro.runtime.engine import Runtime
from repro.runtime.keys import task_key
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.profiles import GameProfile

SMALL = GameProfile.preset("bioshock1_like").scaled(0.05)


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(SMALL, seed=31).generate(num_frames=10)


@pytest.fixture(scope="module")
def config():
    return GpuConfig.preset("mainstream")


@pytest.fixture(scope="module")
def serial_result(trace, config):
    return SubsettingPipeline().run(trace, config)


class TestParallelMatchesSerial:
    def test_pipeline_jobs4_identical(self, trace, config, serial_result):
        parallel = SubsettingPipeline().run(
            trace, config, runtime=Runtime(jobs=4)
        )
        assert parallel.frame_predictions == serial_result.frame_predictions
        assert (
            parallel.subset.frame_positions
            == serial_result.subset.frame_positions
        )
        assert (
            parallel.subset.frame_weights == serial_result.subset.frame_weights
        )
        assert parallel == serial_result  # dataclass-wide equality

    def test_pipeline_default_runtime_identical(self, trace, config, serial_result):
        explicit = SubsettingPipeline().run(
            trace, config, runtime=Runtime.serial()
        )
        assert explicit == serial_result

    def test_sweep_jobs4_identical(self, trace):
        subset = build_subset(trace)
        serial = pathfinding_sweep(trace, subset)
        parallel = pathfinding_sweep(trace, subset, runtime=Runtime(jobs=4))
        assert parallel == serial

    def test_cached_rerun_identical(self, trace, config, serial_result, tmp_path):
        cold = SubsettingPipeline().run(
            trace, config, runtime=Runtime(jobs=2, cache_dir=tmp_path)
        )
        warm = SubsettingPipeline().run(
            trace, config, runtime=Runtime(jobs=2, cache_dir=tmp_path)
        )
        assert cold == serial_result
        assert warm == serial_result


class TestWarmCacheSkipsSimulation:
    def test_pipeline_rerun_simulates_nothing(self, trace, config, tmp_path):
        cold_runtime = Runtime(jobs=1, cache_dir=tmp_path)
        SubsettingPipeline().run(trace, config, runtime=cold_runtime)
        assert cold_runtime.snapshot().counter("frames_simulated") > 0

        warm_runtime = Runtime(jobs=1, cache_dir=tmp_path)
        result = SubsettingPipeline().run(trace, config, runtime=warm_runtime)
        snapshot = warm_runtime.snapshot()
        assert snapshot.counter("frames_simulated") == 0
        assert snapshot.counter("frames_clustered") == 0
        assert snapshot.counter("cache_hits") > 0
        assert result.telemetry is not None
        assert result.telemetry.counter("frames_simulated") == 0

    def test_suite_rerun_simulates_nothing(self, trace, config, tmp_path):
        traces = {"game": trace}
        clocks = (600.0, 1000.0, 1400.0)
        cold = subset_suite(
            traces,
            config,
            validation_clocks=clocks,
            runtime=Runtime(jobs=1, cache_dir=tmp_path),
        )
        assert cold.telemetry is not None
        assert cold.telemetry.counter("frames_simulated") > 0

        warm_runtime = Runtime(jobs=1, cache_dir=tmp_path)
        warm = subset_suite(
            traces, config, validation_clocks=clocks, runtime=warm_runtime
        )
        assert warm_runtime.snapshot().counter("frames_simulated") == 0
        assert warm.telemetry.counter("frames_simulated") == 0
        # Cached artifacts reproduce the cold-run numbers exactly.
        assert (
            warm.game_results["game"] == cold.game_results["game"]
        )
        assert warm.validations["game"] == cold.validations["game"]
        assert "[runtime]" in warm.report()

    def test_validate_shares_artifacts_within_run(self, trace, config, tmp_path):
        # The clock sweep and the transfer check both simulate the parent
        # on the base config; with a cache they share one artifact.
        subset = build_subset(trace)
        runtime = Runtime(jobs=1, cache_dir=tmp_path)
        validate_subset(
            trace, subset, config, (600.0, 1000.0, 1400.0), runtime=runtime
        )
        assert runtime.snapshot().counter("cache_hits") > 0


class TestCorruptionRecovery:
    def test_corrupted_artifact_recomputed(self, trace, config, tmp_path):
        runtime = Runtime(jobs=1, cache_dir=tmp_path)
        reference = runtime.simulate_trace(trace, config)

        key = task_key("simulate_frames", trace=trace, config=config)
        path = tmp_path / key[:2] / f"{key}.pkl"
        assert path.exists()
        path.write_bytes(b"garbage")

        healed_runtime = Runtime(jobs=1, cache_dir=tmp_path)
        healed = healed_runtime.simulate_trace(trace, config)
        assert healed == reference
        snapshot = healed_runtime.snapshot()
        assert snapshot.counter("cache_corrupt_evicted") == 1
        assert snapshot.counter("frames_simulated") == trace.num_frames
        # And the healed entry serves the next run.
        final_runtime = Runtime(jobs=1, cache_dir=tmp_path)
        assert final_runtime.simulate_trace(trace, config) == reference
        assert final_runtime.snapshot().counter("frames_simulated") == 0
