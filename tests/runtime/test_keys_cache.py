"""Tests for cache keys (stability, sensitivity) and the artifact cache."""

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.errors import ConfigError
from repro.runtime.cache import CACHE_DIR_ENV, CACHE_MISS, ArtifactCache, NullCache
from repro.runtime.keys import (
    config_digest,
    params_digest,
    task_key,
    trace_digest,
)
from repro.runtime.telemetry import Telemetry
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.profiles import GameProfile

SMALL = GameProfile.preset("bioshock1_like").scaled(0.05)


@pytest.fixture(scope="module")
def trace():
    return TraceGenerator(SMALL, seed=23).generate(num_frames=4)


class TestDigests:
    def test_trace_digest_deterministic(self, trace):
        assert trace_digest(trace) == trace_digest(trace)

    def test_trace_digest_tracks_content(self, trace):
        other = TraceGenerator(SMALL, seed=24).generate(num_frames=4)
        assert trace_digest(trace) != trace_digest(other)

    def test_config_digest_ignores_name(self):
        a = GpuConfig.preset("mainstream")
        b = a.scaled(name="renamed")
        assert a.name != b.name
        assert config_digest(a) == config_digest(b)

    def test_config_digest_tracks_fields(self):
        a = GpuConfig.preset("mainstream")
        b = a.scaled(num_shader_cores=a.num_shader_cores + 1)
        assert config_digest(a) != config_digest(b)

    def test_params_digest_order_insensitive(self):
        assert params_digest({"a": 1, "b": 2}) == params_digest({"b": 2, "a": 1})
        assert params_digest({"a": 1}) != params_digest({"a": 2})

    def test_task_key_sensitivity(self, trace):
        config = GpuConfig.preset("mainstream")
        base = task_key("simulate_frames", trace=trace, config=config)
        assert base == task_key("simulate_frames", trace=trace, config=config)
        assert base != task_key("cluster_frames", trace=trace, config=config)
        assert base != task_key(
            "simulate_frames", trace=trace, config=GpuConfig.preset("highend")
        )

    def test_task_key_is_hex(self, trace):
        key = task_key("simulate_frames", trace=trace)
        assert set(key) <= set("0123456789abcdef")


class TestKeyStabilityAcrossProcesses:
    def test_same_key_in_fresh_interpreter(self, trace):
        """Keys must not depend on interpreter state (hash seed, id())."""
        config = GpuConfig.preset("mainstream")
        local = task_key(
            "simulate_frames",
            trace=trace,
            config=config,
            params={"radius": 0.21},
        )
        script = textwrap.dedent(
            """
            from repro.runtime.keys import task_key
            from repro.simgpu.config import GpuConfig
            from repro.synth.generator import TraceGenerator
            from repro.synth.profiles import GameProfile

            profile = GameProfile.preset("bioshock1_like").scaled(0.05)
            trace = TraceGenerator(profile, seed=23).generate(num_frames=4)
            print(
                task_key(
                    "simulate_frames",
                    trace=trace,
                    config=GpuConfig.preset("mainstream"),
                    params={"radius": 0.21},
                )
            )
            """
        )
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_dir
        env["PYTHONHASHSEED"] = "random"
        remote = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert remote == local


class TestArtifactCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "ab" * 32
        assert cache.get(key) is CACHE_MISS
        cache.put(key, {"nested": (1, 2.5, "x")})
        assert cache.get(key) == {"nested": (1, 2.5, "x")}
        assert key in cache

    def test_ndarray_dict_stored_as_npz(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "cd" * 32
        value = {"a": np.arange(5), "b": np.linspace(0.0, 1.0, 3)}
        cache.put(key, value)
        assert (tmp_path / key[:2] / f"{key}.npz").exists()
        back = cache.get(key)
        assert set(back) == {"a", "b"}
        assert np.array_equal(back["a"], value["a"])
        assert np.array_equal(back["b"], value["b"])

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "ef" * 32
        cache.put(key, None)
        assert cache.get(key) is None

    def test_corrupted_entry_evicted_and_missed(self, tmp_path):
        telemetry = Telemetry()
        cache = ArtifactCache(tmp_path, telemetry=telemetry)
        key = "12" * 32
        cache.put(key, [1, 2, 3])
        path = tmp_path / key[:2] / f"{key}.pkl"
        path.write_bytes(b"this is not a pickle")
        assert cache.get(key) is CACHE_MISS
        assert not path.exists()
        snapshot = telemetry.snapshot()
        assert snapshot.counter("cache_corrupt_evicted") == 1
        # Recompute-and-put heals the entry.
        cache.put(key, [1, 2, 3])
        assert cache.get(key) == [1, 2, 3]

    def test_truncated_pickle_evicted(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "34" * 32
        cache.put(key, list(range(100)))
        path = tmp_path / key[:2] / f"{key}.pkl"
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert cache.get(key) is CACHE_MISS

    def test_bad_key_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ConfigError, match="hex"):
            cache.get("../../etc/passwd")
        with pytest.raises(ConfigError, match="hex"):
            cache.put("UPPER", 1)

    def test_counters(self, tmp_path):
        telemetry = Telemetry()
        cache = ArtifactCache(tmp_path, telemetry=telemetry)
        key = "56" * 32
        cache.get(key)
        cache.put(key, 7)
        cache.get(key)
        snapshot = telemetry.snapshot()
        assert snapshot.counter("cache_misses") == 1
        assert snapshot.counter("cache_puts") == 1
        assert snapshot.counter("cache_hits") == 1

    def test_env_var_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "envcache"))
        cache = ArtifactCache()
        assert cache.cache_dir == tmp_path / "envcache"

    def test_null_cache(self):
        cache = NullCache()
        assert cache.get("ab" * 32) is CACHE_MISS
        cache.put("ab" * 32, 1)
        assert cache.get("ab" * 32) is CACHE_MISS

    def test_entries_shared_across_instances(self, tmp_path):
        first = ArtifactCache(tmp_path)
        key = "78" * 32
        first.put(key, {"x": 1})
        second = ArtifactCache(tmp_path)
        assert second.get(key) == {"x": 1}

    def test_value_survives_pickle_of_cache_contents(self, tmp_path):
        # Entries are plain files: another process reading the same dir
        # must be able to unpickle them with no cache object involved.
        cache = ArtifactCache(tmp_path)
        key = "9a" * 32
        cache.put(key, ("tuple", 1))
        raw = (tmp_path / key[:2] / f"{key}.pkl").read_bytes()
        assert pickle.loads(raw) == ("tuple", 1)
