"""Tests for the task engine: graphs, pools, caching, seeding, failures."""

import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime.cache import ArtifactCache
from repro.runtime.engine import Runtime, TaskEngine, _chunk_ranges
from repro.runtime.tasks import Task, TaskResult, task_function
from repro.runtime.telemetry import Telemetry

# Test task kinds register at import time; worker processes inherit them
# through the fork start method.


@task_function("test.double")
def _double(context, payload, deps):
    return TaskResult(payload * 2)


@task_function("test.sum_deps")
def _sum_deps(context, payload, deps):
    return TaskResult(sum(deps.values()) + payload)


@task_function("test.with_context")
def _with_context(context, payload, deps):
    return TaskResult(context + payload)


@task_function("test.boom")
def _boom(context, payload, deps):
    raise ValueError("boom from task body")


@task_function("test.draw")
def _draw(context, payload, deps):
    return TaskResult(float(np.random.random()))


@task_function("test.counted")
def _counted(context, payload, deps):
    return TaskResult(payload, {"widgets_made": payload})


@task_function("test.pid")
def _pid(context, payload, deps):
    return TaskResult(os.getpid())


def _fan_out(n):
    return [Task(f"t{i}", "test.double", payload=i) for i in range(n)]


class TestGraphValidation:
    def test_duplicate_id_rejected(self):
        tasks = [Task("a", "test.double", 1), Task("a", "test.double", 2)]
        with pytest.raises(ConfigError, match="duplicate task id"):
            TaskEngine().run(tasks)

    def test_unknown_dep_rejected(self):
        tasks = [Task("a", "test.double", 1, deps=("ghost",))]
        with pytest.raises(ConfigError, match="unknown task"):
            TaskEngine().run(tasks)

    def test_cycle_rejected(self):
        tasks = [
            Task("a", "test.double", 1, deps=("b",)),
            Task("b", "test.double", 1, deps=("a",)),
        ]
        with pytest.raises(ConfigError, match="cycle"):
            TaskEngine().run(tasks)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown task kind"):
            TaskEngine().run([Task("a", "no.such.kind")])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigError):
            TaskEngine(jobs=0)
        with pytest.raises(ConfigError):
            TaskEngine(jobs=True)
        with pytest.raises(ConfigError):
            TaskEngine(jobs=2.0)


class TestExecution:
    def test_serial_fan_out(self):
        results = TaskEngine(jobs=1).run(_fan_out(7))
        assert results == {f"t{i}": 2 * i for i in range(7)}

    def test_parallel_matches_serial(self):
        serial = TaskEngine(jobs=1).run(_fan_out(9))
        parallel = TaskEngine(jobs=3).run(_fan_out(9))
        assert parallel == serial

    def test_dependencies_feed_values(self):
        tasks = [
            Task("a", "test.double", 3),
            Task("b", "test.double", 4),
            Task("total", "test.sum_deps", 100, deps=("a", "b")),
        ]
        for jobs in (1, 2):
            results = TaskEngine(jobs=jobs).run(tasks)
            assert results["total"] == 6 + 8 + 100

    def test_diamond_graph(self):
        tasks = [
            Task("src", "test.double", 1),
            Task("left", "test.sum_deps", 0, deps=("src",)),
            Task("right", "test.sum_deps", 10, deps=("src",)),
            Task("sink", "test.sum_deps", 0, deps=("left", "right")),
        ]
        for jobs in (1, 2):
            results = TaskEngine(jobs=jobs).run(tasks)
            assert results["sink"] == 2 + 12

    def test_context_ships_to_workers(self):
        tasks = [Task(f"t{i}", "test.with_context", i) for i in range(4)]
        for jobs in (1, 2):
            results = TaskEngine(jobs=jobs).run(tasks, context=100)
            assert results == {f"t{i}": 100 + i for i in range(4)}

    def test_submission_order_irrelevant_serially(self):
        tasks = [
            Task("late", "test.sum_deps", 0, deps=("early",)),
            Task("early", "test.double", 5),
        ]
        assert TaskEngine(jobs=1).run(tasks)["late"] == 10


class TestFailures:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exception_type_propagates(self, jobs):
        telemetry = Telemetry()
        engine = TaskEngine(jobs=jobs, telemetry=telemetry)
        with pytest.raises(ValueError, match="boom from task body"):
            engine.run([Task("a", "test.boom")])
        assert telemetry.snapshot().counter("tasks_failed") == 1

    def test_failure_does_not_poison_engine(self):
        engine = TaskEngine(jobs=2)
        with pytest.raises(ValueError):
            engine.run([Task("a", "test.boom")])
        assert engine.run(_fan_out(3)) == {"t0": 0, "t1": 2, "t2": 4}

    def test_unpicklable_payload_raises_cleanly(self):
        # Must raise in the parent, not deadlock the executor's feeder
        # thread (CPython 3.11 hangs shutdown() on feeder pickling errors).
        tasks = [Task(f"t{i}", "test.double", 1) for i in range(4)]
        tasks.append(Task("bad", "call", ((lambda: 1), ())))
        with pytest.raises(ConfigError, match="bad.*cannot be sent"):
            TaskEngine(jobs=2).run(tasks, context={"shared": True})


class TestSeeding:
    def test_per_task_seed_decides_stream(self):
        tasks = [
            Task(f"d{i}", "test.draw", seed=1000 + i) for i in range(6)
        ]
        serial = TaskEngine(jobs=1).run(tasks)
        parallel = TaskEngine(jobs=3).run(tasks)
        assert parallel == serial
        # Distinct seeds give distinct draws.
        assert len(set(serial.values())) == len(serial)

    def test_same_seed_same_value_regardless_of_position(self):
        first = TaskEngine(jobs=1).run([Task("x", "test.draw", seed=42)])
        buried = TaskEngine(jobs=2).run(
            [Task(f"pad{i}", "test.draw", seed=i) for i in range(5)]
            + [Task("x", "test.draw", seed=42)]
        )
        assert buried["x"] == first["x"]


class TestEngineCaching:
    def test_cached_task_not_executed(self, tmp_path):
        telemetry = Telemetry()
        cache = ArtifactCache(tmp_path, telemetry=telemetry)
        engine = TaskEngine(jobs=1, cache=cache, telemetry=telemetry)
        key = "ab" * 32
        task = Task("a", "test.counted", payload=5, cache_key=key)
        first = engine.run([task])
        assert first == {"a": 5}
        snapshot = telemetry.snapshot()
        assert snapshot.counter("tasks_run") == 1
        assert snapshot.counter("widgets_made") == 5

        second = engine.run([task])
        assert second == {"a": 5}
        snapshot = telemetry.snapshot()
        # No new execution, no new worker counters — just a cache read.
        assert snapshot.counter("tasks_run") == 1
        assert snapshot.counter("widgets_made") == 5
        assert snapshot.counter("tasks_from_cache") == 1

    def test_cached_dep_unblocks_parallel_children(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = "cd" * 32
        dep = Task("dep", "test.double", 21, cache_key=key)
        child = Task("child", "test.sum_deps", 0, deps=("dep",))
        warm = TaskEngine(jobs=1, cache=cache)
        assert warm.run([dep, child])["child"] == 42
        # Second run resolves "dep" from cache; the pool must still run
        # the child with the cached value injected.
        cold = TaskEngine(jobs=2, cache=cache)
        assert cold.run([dep, child])["child"] == 42


class TestWorkerCounters:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_counters_merge_into_parent(self, jobs):
        telemetry = Telemetry()
        engine = TaskEngine(jobs=jobs, telemetry=telemetry)
        engine.run([Task(f"c{i}", "test.counted", payload=i) for i in range(4)])
        snapshot = telemetry.snapshot()
        assert snapshot.counter("widgets_made") == 0 + 1 + 2 + 3
        assert snapshot.counter("tasks_run") == 4


class TestChunkRanges:
    def test_covers_exactly(self):
        for n in (1, 5, 16, 17):
            for chunks in (1, 3, 8, 40):
                ranges = _chunk_ranges(n, chunks)
                flat = [i for start, stop in ranges for i in range(start, stop)]
                assert flat == list(range(n))

    def test_balanced(self):
        sizes = [stop - start for start, stop in _chunk_ranges(10, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_zero_items(self):
        assert _chunk_ranges(0, 4) == [(0, 0)]

    def test_fewer_items_than_chunks(self):
        assert _chunk_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_exact_multiple(self):
        assert _chunk_ranges(16, 4) == [(0, 4), (4, 8), (8, 12), (12, 16)]

    def test_min_items_floors_chunk_size(self):
        ranges = _chunk_ranges(20, 8, min_items=8)
        assert ranges == [(0, 10), (10, 20)]
        for start, stop in ranges:
            assert stop - start >= 8

    def test_min_items_never_empties(self):
        # Fewer items than the floor still yields one full-cover range.
        assert _chunk_ranges(3, 4, min_items=8) == [(0, 3)]

    def test_min_items_one_is_historical_behavior(self):
        assert _chunk_ranges(10, 4, min_items=1) == _chunk_ranges(10, 4)


class TestSingleTaskInline:
    def test_one_pending_task_runs_in_parent(self):
        # A one-task graph must not pay pool startup: it runs inline
        # even on a parallel engine.
        results = TaskEngine(jobs=4).run([Task("only", "test.pid")])
        assert results["only"] == os.getpid()

    def test_multi_task_graph_still_uses_workers(self):
        tasks = [Task(f"p{i}", "test.pid") for i in range(4)]
        results = TaskEngine(jobs=2).run(tasks)
        assert any(pid != os.getpid() for pid in results.values())


class TestAdaptiveRuntime:
    def test_auto_resolves_to_host_cpus(self):
        runtime = Runtime(jobs="auto")
        assert runtime.adaptive
        assert runtime.jobs == (os.cpu_count() or 1)

    def test_explicit_jobs_is_not_adaptive(self):
        assert not Runtime(jobs=4).adaptive
        assert not Runtime().adaptive

    def test_small_workload_gets_single_range(self):
        runtime = Runtime(jobs="auto", serial_cutoff=32)
        assert runtime._ranges(8) == [(0, 8)]
        assert runtime._ranges(31) == [(0, 31)]

    def test_large_workload_chunks_with_floor(self):
        runtime = Runtime(jobs="auto", serial_cutoff=32)
        ranges = runtime._ranges(64)
        flat = [i for start, stop in ranges for i in range(start, stop)]
        assert flat == list(range(64))
        if runtime.jobs > 1:
            for start, stop in ranges:
                assert stop - start >= 8

    def test_cutoff_zero_disables_fallback(self):
        runtime = Runtime(jobs="auto", serial_cutoff=0)
        ranges = runtime._ranges(4)
        flat = [i for start, stop in ranges for i in range(start, stop)]
        assert flat == list(range(4))

    def test_explicit_jobs_partition_unchanged(self):
        runtime = Runtime(jobs=4)
        assert runtime._ranges(8) == [
            (0, 1), (1, 2), (2, 3), (3, 4),
            (4, 5), (5, 6), (6, 7), (7, 8),
        ]

    def test_bad_serial_cutoff_rejected(self):
        with pytest.raises(ConfigError, match="serial_cutoff"):
            Runtime(jobs="auto", serial_cutoff=-1)
        with pytest.raises(ConfigError, match="serial_cutoff"):
            Runtime(jobs="auto", serial_cutoff=True)

    def test_bad_jobs_string_rejected(self):
        with pytest.raises(ConfigError, match="jobs"):
            Runtime(jobs="fast")

    def test_auto_matches_serial_results(self, simple_trace):
        from repro.simgpu.config import GpuConfig

        config = GpuConfig.preset("mainstream")
        reference = Runtime.serial().simulate_trace(simple_trace, config)
        adaptive = Runtime(jobs="auto").simulate_trace(simple_trace, config)
        assert adaptive == reference
