"""Shared precompute store: round-trip identity, races, cache levels.

The store's contract is *bit-identity*: a FramePrecomp loaded from an
``.fpc`` mmap must equal the freshly computed one array for array
(values **and** dtypes), because simulation results are compared with
``==`` downstream.  These tests also pin the operational behaviours:
concurrent publishers converge on one file, corruption is evicted and
recomputed, the in-process memo honors ``$REPRO_PRECOMP_MEMO_TRACES``,
and ``clear_precomp_cache`` releases mmap handles.
"""

import threading

import numpy as np
import pytest

from repro.obs.context import ObsContext, activate_obs
from repro.obs.metrics import Metrics
from repro.runtime.keys import trace_digest
from repro.simgpu import precomp_store
from repro.simgpu.batch import (
    clear_precomp_cache,
    frame_precomp_cached,
    precompute_frame,
    prepublish_precomp,
)
from repro.simgpu.precomp_store import (
    ARRAY_FIELDS,
    PrecompStore,
    active_store,
    memo_trace_limit,
)

from tests.conftest import make_draw, make_world


@pytest.fixture
def store(tmp_path):
    return PrecompStore(tmp_path / "precomp")


@pytest.fixture
def trace():
    return make_world(
        [
            [
                make_draw(texture_ids=(10, 11)),
                make_draw(texture_ids=(11,)),
                make_draw(texture_ids=()),
            ],
            [make_draw(texture_ids=(12,))],
        ]
    )


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_precomp_cache()
    yield
    clear_precomp_cache()


def assert_frames_identical(computed, loaded):
    """Bit-identity over every serialized field (values and dtypes)."""
    assert loaded.frame_index == computed.frame_index
    assert loaded.num_draws == computed.num_draws
    assert loaded.pass_spans == computed.pass_spans
    for name in ARRAY_FIELDS:
        expected = getattr(computed, name)
        actual = getattr(loaded, name)
        assert actual.dtype == expected.dtype, name
        assert actual.shape == expected.shape, name
        # Compare raw bytes: equal for inf/nan patterns too, which
        # np.array_equal would treat specially.
        assert expected.tobytes() == actual.tobytes(), name


class TestRoundTrip:
    def test_mmap_round_trip_identity(self, store, trace):
        digest = trace_digest(trace)
        for frame in trace.frames:
            fp = precompute_frame(trace, frame)
            assert store.publish(digest, fp) is True
            loaded = store.load(digest, frame.index)
            assert loaded is not None
            assert_frames_identical(fp, loaded)

    def test_loaded_arrays_are_readonly_views(self, store, trace):
        digest = trace_digest(trace)
        frame = trace.frames[0]
        store.publish(digest, precompute_frame(trace, frame))
        loaded = store.load(digest, 0)
        assert not loaded.verts.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            loaded.verts[0] = 1.0

    def test_republish_is_idempotent(self, store, trace):
        digest = trace_digest(trace)
        fp = precompute_frame(trace, trace.frames[0])
        assert store.publish(digest, fp) is True
        assert store.publish(digest, fp) is False

    def test_missing_frame_loads_none(self, store, trace):
        assert store.load(trace_digest(trace), 99) is None

    def test_corrupt_file_evicted_and_none(self, store, trace):
        digest = trace_digest(trace)
        fp = precompute_frame(trace, trace.frames[0])
        store.publish(digest, fp)
        path = store.frame_path(digest, 0)
        path.write_bytes(b"not a precomp file at all")
        assert store.load(digest, 0) is None
        assert not path.exists()  # evicted, so the caller republishes

    def test_truncated_file_evicted(self, store, trace):
        digest = trace_digest(trace)
        fp = precompute_frame(trace, trace.frames[0])
        store.publish(digest, fp)
        path = store.frame_path(digest, 0)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert store.load(digest, 0) is None
        assert not path.exists()


class TestConcurrentPublish:
    def test_two_publishers_one_file_both_load(self, store, trace):
        digest = trace_digest(trace)
        fp = precompute_frame(trace, trace.frames[0])
        barrier = threading.Barrier(2)
        results = []

        def publish():
            barrier.wait()
            results.append(store.publish(digest, fp))

        threads = [threading.Thread(target=publish) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Whatever the interleaving (one .exists() short-circuit, or two
        # full temp+rename publishes), exactly one final file exists and
        # loads identically for any reader.
        frame_dir = store.frame_path(digest, 0).parent
        finals = [p for p in frame_dir.iterdir() if p.suffix == ".fpc"]
        assert len(finals) == 1
        stray_tmps = [p for p in frame_dir.iterdir() if p.suffix == ".tmp"]
        assert stray_tmps == []
        loaded = store.load(digest, 0)
        assert loaded is not None
        assert_frames_identical(fp, loaded)

    def test_concurrent_loads_share_one_mapping(self, store, trace):
        digest = trace_digest(trace)
        store.publish(digest, precompute_frame(trace, trace.frames[0]))
        barrier = threading.Barrier(4)
        loaded = []

        def load():
            barrier.wait()
            loaded.append(store.load(digest, 0))

        threads = [threading.Thread(target=load) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(fp is not None for fp in loaded)
        assert store.open_handle_count() == 1


class TestCacheLevels:
    def test_three_levels(self, tmp_path, monkeypatch, trace):
        monkeypatch.setenv(
            precomp_store.PRECOMP_DIR_ENV, str(tmp_path / "precomp")
        )
        clear_precomp_cache()
        frame = trace.frames[0]
        metrics = Metrics()
        with activate_obs(ObsContext(metrics=metrics)):
            first = frame_precomp_cached(trace, frame)  # compute + publish
            second = frame_precomp_cached(trace, frame)  # memo
        assert second is first
        assert metrics.counter_total("precomp_store_misses") == 1
        assert metrics.counter_total("precomp_store_publishes") == 1
        assert metrics.counter_total("precomp_store_hits") == 0

        clear_precomp_cache()  # drop the memo; the store file remains
        metrics = Metrics()
        with activate_obs(ObsContext(metrics=metrics)):
            third = frame_precomp_cached(trace, frame)  # store mmap hit
        assert third is not first
        assert metrics.counter_total("precomp_store_hits") == 1
        assert metrics.counter_total("precomp_store_misses") == 0
        assert_frames_identical(first, third)

    def test_disabled_store_computes_in_memo_only(
        self, monkeypatch, trace
    ):
        monkeypatch.setenv(precomp_store.PRECOMP_DIR_ENV, "")
        clear_precomp_cache()
        assert active_store() is None
        metrics = Metrics()
        with activate_obs(ObsContext(metrics=metrics)):
            frame_precomp_cached(trace, trace.frames[0])
        assert metrics.counter_total("precomp_store_misses") == 0
        assert metrics.counter_total("precomp_store_publishes") == 0

    def test_memo_limit_from_env(self, monkeypatch):
        monkeypatch.setenv(precomp_store.PRECOMP_MEMO_ENV, "3")
        assert memo_trace_limit() == 3
        monkeypatch.setenv(precomp_store.PRECOMP_MEMO_ENV, "0")
        assert memo_trace_limit() == 1  # clamped: the memo never disables
        monkeypatch.setenv(precomp_store.PRECOMP_MEMO_ENV, "nonsense")
        assert memo_trace_limit() == precomp_store.DEFAULT_MEMO_TRACES
        monkeypatch.delenv(precomp_store.PRECOMP_MEMO_ENV)
        assert memo_trace_limit() == precomp_store.DEFAULT_MEMO_TRACES

    def test_memo_evicts_lru_trace_beyond_limit(self, monkeypatch):
        from repro.simgpu import batch

        monkeypatch.setenv(precomp_store.PRECOMP_MEMO_ENV, "2")
        monkeypatch.setenv(precomp_store.PRECOMP_DIR_ENV, "")
        clear_precomp_cache()
        traces = [
            make_world([[make_draw(texture_ids=(10 + i,))]], name=f"t{i}")
            for i in range(3)
        ]
        for t in traces:
            frame_precomp_cached(t, t.frames[0])
        assert len(batch._FRAME_PRECOMP_MEMO) == 2
        assert trace_digest(traces[0]) not in batch._FRAME_PRECOMP_MEMO
        assert trace_digest(traces[2]) in batch._FRAME_PRECOMP_MEMO

    def test_clear_releases_store_handles(self, tmp_path, monkeypatch, trace):
        monkeypatch.setenv(
            precomp_store.PRECOMP_DIR_ENV, str(tmp_path / "precomp")
        )
        clear_precomp_cache()
        frame = trace.frames[0]
        frame_precomp_cached(trace, frame)  # compute + publish
        clear_precomp_cache()
        store = active_store()
        frame_precomp_cached(trace, frame)  # mmap load -> open handle
        assert store.open_handle_count() == 1
        clear_precomp_cache()
        assert store.open_handle_count() == 0


class TestPrepublish:
    def test_prepublish_covers_every_frame(self, tmp_path, monkeypatch, trace):
        monkeypatch.setenv(
            precomp_store.PRECOMP_DIR_ENV, str(tmp_path / "precomp")
        )
        clear_precomp_cache()
        published = prepublish_precomp(trace)
        assert published == trace.num_frames
        store = active_store()
        digest = trace_digest(trace)
        for frame in trace.frames:
            assert store.has(digest, frame.index)
        # A second pre-publish finds everything present.
        assert prepublish_precomp(trace) == 0

    def test_prepublish_disabled_store_is_noop(self, monkeypatch, trace):
        monkeypatch.setenv(precomp_store.PRECOMP_DIR_ENV, "")
        clear_precomp_cache()
        assert prepublish_precomp(trace) == 0

    def test_runtime_prepublishes_with_compiled_backend(
        self, tmp_path, monkeypatch, trace
    ):
        from repro.simgpu import _kernels

        if _kernels._try_load("cext") is None:
            pytest.skip("cext backend unavailable")
        from repro.runtime.engine import Runtime
        from repro.simgpu.config import GpuConfig

        monkeypatch.setenv(_kernels.KERNELS_ENV, "cext")
        monkeypatch.setenv(
            precomp_store.PRECOMP_DIR_ENV, str(tmp_path / "precomp")
        )
        clear_precomp_cache()
        runtime = Runtime(jobs=2)
        runtime.simulate_frames_many(trace, [GpuConfig()])
        published = runtime.telemetry.metrics.counter_total(
            "precomp_prepublished_frames"
        )
        assert published == trace.num_frames
        assert "precomp_publish" in runtime.telemetry.snapshot().timers_s

    def test_runtime_skips_prepublish_on_python_backend(
        self, tmp_path, monkeypatch, trace
    ):
        """Pure-python kernels: the parent must not serialize precompute."""
        from repro.runtime.engine import Runtime
        from repro.simgpu import _kernels
        from repro.simgpu.config import GpuConfig

        monkeypatch.setenv(_kernels.KERNELS_ENV, "python")
        monkeypatch.setenv(
            precomp_store.PRECOMP_DIR_ENV, str(tmp_path / "precomp")
        )
        clear_precomp_cache()
        runtime = Runtime(jobs=2)
        runtime.simulate_frames_many(trace, [GpuConfig()])
        published = runtime.telemetry.metrics.counter_total(
            "precomp_prepublished_frames"
        )
        assert published == 0

    def test_parallel_sweep_parity_with_store(
        self, tmp_path, monkeypatch, trace
    ):
        """End to end: a pooled sweep with the store on matches store-off."""
        from repro.runtime.engine import Runtime
        from repro.simgpu.config import GpuConfig

        configs = [GpuConfig(), GpuConfig.preset("mainstream")]
        monkeypatch.setenv(precomp_store.PRECOMP_DIR_ENV, "")
        clear_precomp_cache()
        reference = Runtime(jobs=2).simulate_frames_many(trace, configs)
        monkeypatch.setenv(
            precomp_store.PRECOMP_DIR_ENV, str(tmp_path / "precomp")
        )
        clear_precomp_cache()
        with_store = Runtime(jobs=2).simulate_frames_many(trace, configs)
        for ref_outputs, new_outputs in zip(reference, with_store):
            for ref, new in zip(ref_outputs, new_outputs):
                assert new.time_ns == ref.time_ns
                assert new.core_cycles == ref.core_cycles
                assert np.array_equal(ref.draw_times_ns, new.draw_times_ns)
