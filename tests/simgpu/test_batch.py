"""Batch path equivalence: the vectorized simulator must match the
sequential reference exactly (up to float rounding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gfx.enums import PrimitiveTopology
from repro.gfx.state import (
    ADDITIVE_STATE,
    FULLSCREEN_STATE,
    OPAQUE_STATE,
    TRANSPARENT_STATE,
)
from repro.errors import SimulationError
from repro.simgpu.batch import (
    clear_precomp_cache,
    frame_precomp_cached,
    precompute_trace,
    simulate_frame_range_multi,
    simulate_frames_batch,
    simulate_trace_batch,
    simulate_trace_multi,
)
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator

from tests.conftest import make_draw, make_world

CFG = GpuConfig()

STATES = [OPAQUE_STATE, TRANSPARENT_STATE, ADDITIVE_STATE, FULLSCREEN_STATE]


draw_strategy = st.builds(
    make_draw,
    shader_id=st.integers(min_value=1, max_value=5),
    vertex_count=st.integers(min_value=1, max_value=100000),
    pixels=st.integers(min_value=0, max_value=500000),
    shaded_fraction=st.floats(min_value=0.0, max_value=1.0),
    texture_ids=st.sampled_from([(), (10,), (11, 12), (10, 11, 12)]),
    state=st.sampled_from(STATES),
    topology=st.sampled_from(list(PrimitiveTopology)),
    instance_count=st.integers(min_value=1, max_value=8),
)

config_strategy = st.builds(
    lambda cores, tex_kb, l2_kb, clock, mem_clock, shader_sw, rt_sw: (
        GpuConfig().scaled(
            name="rnd",
            num_shader_cores=cores,
            tex_cache_kb=tex_kb,
            l2_cache_kb=l2_kb,
            core_clock_mhz=clock,
            memory_clock_mhz=mem_clock,
            shader_switch_cycles=shader_sw,
            rt_switch_cycles=rt_sw,
        )
    ),
    cores=st.integers(min_value=1, max_value=16),
    tex_kb=st.integers(min_value=16, max_value=512),
    l2_kb=st.integers(min_value=128, max_value=4096),
    clock=st.floats(min_value=400.0, max_value=2000.0),
    mem_clock=st.floats(min_value=800.0, max_value=3000.0),
    shader_sw=st.integers(min_value=0, max_value=500),
    rt_sw=st.integers(min_value=0, max_value=2000),
)


class TestEquivalence:
    def test_matches_sequential_on_fixture(self, simple_trace):
        seq = GpuSimulator(CFG).simulate_trace(simple_trace, keep_draw_costs=True)
        bat = simulate_trace_batch(simple_trace, CFG)
        assert bat.total_time_ns == pytest.approx(seq.total_time_ns, rel=1e-12)
        for fs, fb in zip(seq.frame_results, bat.frame_results):
            assert fb.time_ns == pytest.approx(fs.time_ns, rel=1e-12)
            assert fb.core_cycles == pytest.approx(fs.core_cycles, rel=1e-12)
            assert fb.dram_cycles == pytest.approx(fs.dram_cycles, rel=1e-12)
            for key in fs.pass_times_ns:
                assert fb.pass_times_ns[key] == pytest.approx(
                    fs.pass_times_ns[key], rel=1e-12
                )

    def test_per_draw_times_match(self, simple_trace):
        seq = GpuSimulator(CFG).simulate_trace(simple_trace, keep_draw_costs=True)
        outputs = simulate_frames_batch(simple_trace, CFG)
        for fs, out in zip(seq.frame_results, outputs):
            np.testing.assert_allclose(
                out.draw_times_ns, np.array(fs.draw_times_ns()), rtol=1e-12
            )

    @settings(max_examples=25, deadline=None)
    @given(
        draws=st.lists(draw_strategy, min_size=1, max_size=12),
        preset=st.sampled_from(["lowpower", "mainstream", "highend"]),
    )
    def test_random_traces_match(self, draws, preset):
        trace = make_world([draws])
        config = GpuConfig.preset(preset)
        seq = GpuSimulator(config).simulate_trace(trace)
        bat = simulate_trace_batch(trace, config)
        assert bat.total_time_ns == pytest.approx(seq.total_time_ns, rel=1e-9)


class TestMultiConfigParity:
    """The config-vectorized pass must agree with both earlier paths."""

    def _candidates(self):
        return [
            CFG,
            CFG.scaled(name="small-caches", tex_cache_kb=16, l2_cache_kb=256),
            CFG.with_core_clock(1400.0),
            GpuConfig.preset("lowpower"),
            GpuConfig.preset("highend"),
        ]

    def test_matches_single_config_batch_exactly(self, simple_trace):
        # Row i of the (C, N) broadcast is the same arithmetic as the
        # 1-D pass — bit-identical, not just close.
        configs = self._candidates()
        multi = simulate_trace_multi(simple_trace, configs)
        for config, result in zip(configs, multi):
            single = simulate_trace_batch(simple_trace, config)
            for fs, fm in zip(single.frame_results, result.frame_results):
                assert fm.time_ns == fs.time_ns
                assert fm.core_cycles == fs.core_cycles
                assert fm.dram_cycles == fs.dram_cycles
                assert fm.pass_times_ns == fs.pass_times_ns

    def test_three_way_parity_on_fixture(self, simple_trace):
        configs = self._candidates()
        multi = simulate_trace_multi(simple_trace, configs)
        for config, result in zip(configs, multi):
            seq = GpuSimulator(config).simulate_trace(simple_trace)
            for fs, fm in zip(seq.frame_results, result.frame_results):
                assert fm.time_ns == pytest.approx(fs.time_ns, rel=1e-12)
                assert fm.core_cycles == pytest.approx(
                    fs.core_cycles, rel=1e-12
                )
                assert fm.dram_cycles == pytest.approx(
                    fs.dram_cycles, rel=1e-12
                )

    @settings(max_examples=25, deadline=None)
    @given(
        frames=st.lists(
            st.lists(draw_strategy, min_size=1, max_size=8),
            min_size=1,
            max_size=3,
        ),
        configs=st.lists(config_strategy, min_size=1, max_size=4),
    )
    def test_random_traces_and_configs_agree(self, frames, configs):
        """Sequential, single-config batch, and config-vectorized paths
        agree per frame on time_ns / core_cycles / dram_cycles."""
        trace = make_world(frames)
        multi = simulate_trace_multi(trace, configs)
        for config, result in zip(configs, multi):
            seq = GpuSimulator(config).simulate_trace(trace)
            bat = simulate_trace_batch(trace, config)
            triples = zip(
                seq.frame_results, bat.frame_results, result.frame_results
            )
            for fs, fb, fm in triples:
                for attr in ("time_ns", "core_cycles", "dram_cycles"):
                    want = getattr(fs, attr)
                    assert getattr(fb, attr) == pytest.approx(want, rel=1e-9)
                    assert getattr(fm, attr) == pytest.approx(want, rel=1e-9)

    def test_empty_configs(self, simple_trace):
        assert simulate_trace_multi(simple_trace, []) == []
        assert simulate_frame_range_multi(simple_trace, [], 0, 1) == []

    def test_shared_precomp_matches_fresh(self, simple_trace):
        configs = self._candidates()
        precomp = precompute_trace(simple_trace)
        shared = simulate_trace_multi(simple_trace, configs, precomp)
        fresh = simulate_trace_multi(simple_trace, configs)
        for a, b in zip(shared, fresh):
            assert a.total_time_ns == b.total_time_ns

    def test_invalid_range_rejected(self, simple_trace):
        with pytest.raises(SimulationError, match="frame range"):
            simulate_frame_range_multi(
                simple_trace, [CFG], 0, simple_trace.num_frames + 1
            )


class TestFramePrecompMemo:
    def test_cached_by_trace_digest(self, simple_trace):
        clear_precomp_cache()
        frame = simple_trace.frames[0]
        first = frame_precomp_cached(simple_trace, frame)
        second = frame_precomp_cached(simple_trace, frame)
        assert first is second
        clear_precomp_cache()
        third = frame_precomp_cached(simple_trace, frame)
        assert third is not first

    def test_memoized_range_matches_direct(self, simple_trace):
        clear_precomp_cache()
        warmup = simulate_frame_range_multi(
            simple_trace, [CFG], 0, simple_trace.num_frames
        )
        memoized = simulate_frame_range_multi(
            simple_trace, [CFG], 0, simple_trace.num_frames
        )
        direct = simulate_trace_batch(simple_trace, CFG)
        for out, warm_out, frame_result in zip(
            memoized[0], warmup[0], direct.frame_results
        ):
            assert out.time_ns == warm_out.time_ns
            assert out.time_ns == frame_result.time_ns


class TestPrecompCache:
    def test_reuse_across_clocks(self, simple_trace):
        precomp = precompute_trace(simple_trace)
        a = simulate_trace_batch(simple_trace, CFG.with_core_clock(800.0), precomp)
        b = simulate_trace_batch(simple_trace, CFG.with_core_clock(800.0), precomp)
        assert a.total_time_ns == b.total_time_ns
        # Cache populated once for the shared capacity/penalty key.
        assert len(precomp._context_cache) == 1

    def test_cache_key_differs_with_capacity(self, simple_trace):
        precomp = precompute_trace(simple_trace)
        simulate_trace_batch(simple_trace, CFG, precomp)
        simulate_trace_batch(simple_trace, CFG.scaled(tex_cache_kb=32), precomp)
        assert len(precomp._context_cache) == 2

    def test_precomp_matches_fresh(self, simple_trace):
        precomp = precompute_trace(simple_trace)
        with_pre = simulate_trace_batch(simple_trace, CFG, precomp)
        without = simulate_trace_batch(simple_trace, CFG)
        assert with_pre.total_time_ns == pytest.approx(without.total_time_ns)
