"""Batch path equivalence: the vectorized simulator must match the
sequential reference exactly (up to float rounding)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gfx.enums import PrimitiveTopology
from repro.gfx.state import (
    ADDITIVE_STATE,
    FULLSCREEN_STATE,
    OPAQUE_STATE,
    TRANSPARENT_STATE,
)
from repro.simgpu.batch import precompute_trace, simulate_frames_batch, simulate_trace_batch
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator

from tests.conftest import make_draw, make_world

CFG = GpuConfig()

STATES = [OPAQUE_STATE, TRANSPARENT_STATE, ADDITIVE_STATE, FULLSCREEN_STATE]


draw_strategy = st.builds(
    make_draw,
    shader_id=st.integers(min_value=1, max_value=5),
    vertex_count=st.integers(min_value=1, max_value=100000),
    pixels=st.integers(min_value=0, max_value=500000),
    shaded_fraction=st.floats(min_value=0.0, max_value=1.0),
    texture_ids=st.sampled_from([(), (10,), (11, 12), (10, 11, 12)]),
    state=st.sampled_from(STATES),
    topology=st.sampled_from(list(PrimitiveTopology)),
    instance_count=st.integers(min_value=1, max_value=8),
)


class TestEquivalence:
    def test_matches_sequential_on_fixture(self, simple_trace):
        seq = GpuSimulator(CFG).simulate_trace(simple_trace, keep_draw_costs=True)
        bat = simulate_trace_batch(simple_trace, CFG)
        assert bat.total_time_ns == pytest.approx(seq.total_time_ns, rel=1e-12)
        for fs, fb in zip(seq.frame_results, bat.frame_results):
            assert fb.time_ns == pytest.approx(fs.time_ns, rel=1e-12)
            assert fb.core_cycles == pytest.approx(fs.core_cycles, rel=1e-12)
            assert fb.dram_cycles == pytest.approx(fs.dram_cycles, rel=1e-12)
            for key in fs.pass_times_ns:
                assert fb.pass_times_ns[key] == pytest.approx(
                    fs.pass_times_ns[key], rel=1e-12
                )

    def test_per_draw_times_match(self, simple_trace):
        seq = GpuSimulator(CFG).simulate_trace(simple_trace, keep_draw_costs=True)
        outputs = simulate_frames_batch(simple_trace, CFG)
        for fs, out in zip(seq.frame_results, outputs):
            np.testing.assert_allclose(
                out.draw_times_ns, np.array(fs.draw_times_ns()), rtol=1e-12
            )

    @settings(max_examples=25, deadline=None)
    @given(
        draws=st.lists(draw_strategy, min_size=1, max_size=12),
        preset=st.sampled_from(["lowpower", "mainstream", "highend"]),
    )
    def test_random_traces_match(self, draws, preset):
        trace = make_world([draws])
        config = GpuConfig.preset(preset)
        seq = GpuSimulator(config).simulate_trace(trace)
        bat = simulate_trace_batch(trace, config)
        assert bat.total_time_ns == pytest.approx(seq.total_time_ns, rel=1e-9)


class TestPrecompCache:
    def test_reuse_across_clocks(self, simple_trace):
        precomp = precompute_trace(simple_trace)
        a = simulate_trace_batch(simple_trace, CFG.with_core_clock(800.0), precomp)
        b = simulate_trace_batch(simple_trace, CFG.with_core_clock(800.0), precomp)
        assert a.total_time_ns == b.total_time_ns
        # Cache populated once for the shared capacity/penalty key.
        assert len(precomp._context_cache) == 1

    def test_cache_key_differs_with_capacity(self, simple_trace):
        precomp = precompute_trace(simple_trace)
        simulate_trace_batch(simple_trace, CFG, precomp)
        simulate_trace_batch(simple_trace, CFG.scaled(tex_cache_kb=32), precomp)
        assert len(precomp._context_cache) == 2

    def test_precomp_matches_fresh(self, simple_trace):
        precomp = precompute_trace(simple_trace)
        with_pre = simulate_trace_batch(simple_trace, CFG, precomp)
        without = simulate_trace_batch(simple_trace, CFG)
        assert with_pre.total_time_ns == pytest.approx(without.total_time_ns)
