"""Tests for GpuConfig validation, presets, and variants."""

import pytest

from repro.errors import ConfigError, ValidationError
from repro.simgpu.config import GpuConfig


class TestValidation:
    def test_default_is_valid(self):
        GpuConfig()

    def test_zero_cores_rejected(self):
        with pytest.raises(ValidationError):
            GpuConfig(num_shader_cores=0)

    def test_negative_clock_rejected(self):
        with pytest.raises(ValidationError):
            GpuConfig(core_clock_mhz=-1.0)

    def test_fraction_fields_bounded(self):
        with pytest.raises(ValidationError):
            GpuConfig(l2_hit_tex=1.5)
        with pytest.raises(ValidationError):
            GpuConfig(serial_fraction=-0.1)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            GpuConfig(name="")

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigError):
            GpuConfig(draw_overhead_cycles=-1.0)


class TestDerived:
    def test_alu_lanes(self):
        cfg = GpuConfig(num_shader_cores=8, simd_width=32)
        assert cfg.alu_lanes == 256

    def test_dram_bandwidth(self):
        cfg = GpuConfig(memory_clock_mhz=1000.0, dram_bytes_per_mem_cycle=64.0)
        assert cfg.dram_bandwidth_gbps == pytest.approx(64.0)

    def test_warm_capacity(self):
        cfg = GpuConfig(tex_cache_kb=128, l2_cache_kb=1024)
        assert cfg.warm_capacity_bytes == (128 + 1024) * 1024


class TestPresets:
    def test_all_presets_valid(self):
        for name in GpuConfig.preset_names():
            cfg = GpuConfig.preset(name)
            assert cfg.name == name

    def test_presets_ordered_by_capability(self):
        low = GpuConfig.preset("lowpower")
        mid = GpuConfig.preset("mainstream")
        high = GpuConfig.preset("highend")
        assert low.alu_lanes < mid.alu_lanes < high.alu_lanes
        assert low.dram_bandwidth_gbps < mid.dram_bandwidth_gbps
        assert mid.dram_bandwidth_gbps < high.dram_bandwidth_gbps

    def test_unknown_preset_lists_choices(self):
        with pytest.raises(ConfigError, match="lowpower"):
            GpuConfig.preset("turbo9000")


class TestVariants:
    def test_with_core_clock(self):
        base = GpuConfig.preset("mainstream")
        fast = base.with_core_clock(1500.0)
        assert fast.core_clock_mhz == 1500.0
        assert fast.memory_clock_mhz == base.memory_clock_mhz
        assert "1500" in fast.name

    def test_with_memory_clock(self):
        base = GpuConfig.preset("mainstream")
        variant = base.with_memory_clock(2400.0)
        assert variant.memory_clock_mhz == 2400.0
        assert variant.core_clock_mhz == base.core_clock_mhz

    def test_scaled_overrides(self):
        variant = GpuConfig().scaled(num_shader_cores=16)
        assert variant.num_shader_cores == 16

    def test_scaled_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown GpuConfig field"):
            GpuConfig().scaled(warp_drives=2)

    def test_scaled_still_validates(self):
        with pytest.raises(ValidationError):
            GpuConfig().scaled(num_shader_cores=-1)

    def test_original_unchanged(self):
        base = GpuConfig()
        base.with_core_clock(500.0)
        assert base.core_clock_mhz == 1000.0
