"""Kernel dispatch layer: backend selection + cross-backend bit-parity.

The compiled backends (numba, cext) must reproduce the pure-python
reference *bit for bit* — the property tests assert ``==`` on raw
float64 arrays, never approximate closeness.  Backend availability is
machine-dependent: the python backend always runs, the cext tests skip
without a C compiler, the numba tests skip without numba installed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.simgpu import _kernels
from repro.simgpu.batch import precompute_frame
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator

from tests.conftest import make_draw, make_world


def _available(name: str) -> bool:
    return _kernels._try_load(name) is not None


COMPILED_BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            not _available(name), reason=f"{name} backend unavailable"
        ),
    )
    for name in ("cext", "numba")
]


@pytest.fixture
def force_backend(monkeypatch):
    def force(name: str) -> None:
        monkeypatch.setenv(_kernels.KERNELS_ENV, name)

    return force


# -- synthetic flat-array inputs -----------------------------------------


@st.composite
def slot_arrays(draw):
    """Random (tex_ids, sizes, offsets) frames, degenerate shapes included.

    Covers empty frames (no draws), draws with no textures, frames where
    every slot is a first touch (all-distinct ids), and single-texture
    frames (one id everywhere) via the id-pool bounds.
    """
    num_draws = draw(st.integers(min_value=0, max_value=12))
    pool_size = draw(st.integers(min_value=1, max_value=6))
    ids = []
    sizes = []
    offsets = [0]
    for _ in range(num_draws):
        slots = draw(st.integers(min_value=0, max_value=5))
        for _ in range(slots):
            ids.append(draw(st.integers(min_value=0, max_value=pool_size - 1)))
            sizes.append(draw(st.integers(min_value=1, max_value=1 << 24)))
        offsets.append(len(ids))
    return (
        np.array(ids, dtype=np.int64),
        np.array(sizes, dtype=np.int64),
        np.array(offsets, dtype=np.int64),
    )


class TestBackendResolution:
    def test_python_always_available(self, force_backend):
        force_backend("python")
        assert _kernels.backend().name == "python"

    def test_auto_resolves_to_something(self, force_backend):
        force_backend("auto")
        assert _kernels.backend().name in ("numba", "cext", "python")

    def test_unknown_backend_rejected(self, force_backend):
        force_backend("fortran")
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            _kernels.backend()
        with pytest.raises(ConfigError, match="unknown kernel backend"):
            _kernels.set_backend("fortran")

    def test_unavailable_backend_is_an_error_not_a_fallback(
        self, force_backend, monkeypatch
    ):
        monkeypatch.setitem(_kernels._FAILED, "numba", "forced for test")
        monkeypatch.delitem(_kernels._RESOLVED, "numba", raising=False)
        force_backend("numba")
        if _kernels._try_load("numba") is None:
            with pytest.raises(ConfigError, match="unavailable"):
                _kernels.backend()

    def test_set_backend_exports_env(self, monkeypatch):
        monkeypatch.delenv(_kernels.KERNELS_ENV, raising=False)
        resolved = _kernels.set_backend("python")
        assert resolved == "python"
        import os

        assert os.environ[_kernels.KERNELS_ENV] == "python"

    def test_kernel_info_does_not_resolve_by_default(
        self, force_backend, monkeypatch
    ):
        force_backend("python")
        monkeypatch.delitem(_kernels._RESOLVED, "python", raising=False)
        info = _kernels.kernel_info(resolve=False)
        assert info == {"requested": "python", "backend": None}
        info = _kernels.kernel_info(resolve=True)
        assert info == {"requested": "python", "backend": "python"}


class TestPurePythonKernels:
    """Reference-behaviour checks that run on every machine."""

    def test_empty_frame(self, force_backend):
        force_backend("python")
        empty = np.zeros(0, dtype=np.int64)
        offsets = np.zeros(1, dtype=np.int64)
        assert _kernels.reuse_distances(empty, empty, offsets).shape == (0,)
        assert _kernels.segment_sums_i64(empty, offsets).shape == (0,)

    def test_first_touches_are_inf(self, force_backend):
        force_backend("python")
        ids = np.array([1, 2, 3], dtype=np.int64)
        sizes = np.array([10, 20, 30], dtype=np.int64)
        offsets = np.array([0, 3], dtype=np.int64)
        reuse = _kernels.reuse_distances(ids, sizes, offsets)
        assert np.all(np.isinf(reuse))

    def test_single_texture_reuse_is_own_size(self, force_backend):
        force_backend("python")
        ids = np.array([7, 7], dtype=np.int64)
        sizes = np.array([64, 64], dtype=np.int64)
        offsets = np.array([0, 1, 2], dtype=np.int64)
        reuse = _kernels.reuse_distances(ids, sizes, offsets)
        assert np.isinf(reuse[0])
        assert reuse[1] == 64.0

    def test_segment_sums_match_python_sums(self, force_backend):
        force_backend("python")
        values = np.array([1, 2, 3, 4, 5], dtype=np.int64)
        offsets = np.array([0, 2, 2, 5], dtype=np.int64)
        totals = _kernels.segment_sums_i64(values, offsets)
        assert totals.tolist() == [3, 0, 12]


def _reuse_with(backend, tex_ids, sizes, offsets):
    """The public reuse_distances wrapper, pinned to one backend object."""
    if tex_ids.shape[0] == 0:
        return np.full(0, np.inf)
    uniques, inverse = np.unique(tex_ids, return_inverse=True)
    dense = np.ascontiguousarray(inverse, dtype=np.int64)
    return backend._reuse(dense, sizes, offsets, int(len(uniques)))


@pytest.mark.parametrize("backend_name", COMPILED_BACKENDS)
class TestCompiledParity:
    """Compiled kernels must equal the python reference bit for bit."""

    @settings(max_examples=60, deadline=None)
    @given(arrays=slot_arrays())
    def test_reuse_distance_bit_parity(self, backend_name, arrays):
        tex_ids, sizes, offsets = arrays
        expected = _reuse_with(_kernels._PYTHON_BACKEND, tex_ids, sizes, offsets)
        actual = _reuse_with(
            _kernels._try_load(backend_name), tex_ids, sizes, offsets
        )
        # == on the raw bits: inf positions and finite values both exact.
        assert np.array_equal(expected, actual)

    @settings(max_examples=60, deadline=None)
    @given(arrays=slot_arrays())
    def test_segment_sum_bit_parity(self, backend_name, arrays):
        _, sizes, offsets = arrays
        bpps = sizes.astype(np.float64) * 0.25  # dyadic, like bytes/pixel
        python = _kernels._PYTHON_BACKEND
        compiled = _kernels._try_load(backend_name)
        if len(sizes) == 0:
            return  # the public wrapper short-circuits empty inputs
        assert np.array_equal(
            python._seg_i64(sizes, offsets), compiled._seg_i64(sizes, offsets)
        )
        assert np.array_equal(
            python._seg_f64(bpps, offsets), compiled._seg_f64(bpps, offsets)
        )

    def test_full_frame_precompute_parity(self, backend_name, monkeypatch):
        """End to end: precompute_frame arrays agree across backends."""
        trace = make_world(
            [
                [
                    make_draw(texture_ids=(10, 11)),
                    make_draw(texture_ids=(11,)),
                    make_draw(texture_ids=()),
                    make_draw(texture_ids=(12, 10, 11)),
                ]
            ]
        )
        frame = trace.frames[0]
        monkeypatch.setenv(_kernels.KERNELS_ENV, "python")
        reference = precompute_frame(trace, frame)
        monkeypatch.setenv(_kernels.KERNELS_ENV, backend_name)
        compiled = precompute_frame(trace, frame)
        for name in ("tex_slot_sizes", "tex_slot_reuse", "tex_slot_offsets",
                     "tex_totals", "footprint"):
            assert np.array_equal(
                getattr(reference, name), getattr(compiled, name)
            ), name


class TestKernelsMatchSequentialSimulator:
    """The kernel-backed batch path still matches the scalar reference."""

    def test_trace_times_identical(self, monkeypatch):
        from repro.simgpu.batch import simulate_trace_batch

        trace = make_world(
            [
                [make_draw(texture_ids=(10,)), make_draw(texture_ids=(10, 11))],
                [make_draw(texture_ids=(11,)), make_draw(texture_ids=())],
            ]
        )
        config = GpuConfig()
        reference = GpuSimulator(config).simulate_trace(trace)
        monkeypatch.setenv(_kernels.KERNELS_ENV, "auto")
        batch = simulate_trace_batch(trace, config)
        for ref, new in zip(reference.frame_results, batch.frame_results):
            assert new.time_ns == pytest.approx(ref.time_ns, rel=1e-12)
