"""Tests for the memory-domain frequency sweep (extension)."""

import pytest

from repro.errors import SimulationError
from repro.simgpu.config import GpuConfig
from repro.simgpu.dvfs import frequency_sweep

from tests.conftest import make_draw, make_world

CFG = GpuConfig.preset("mainstream")
CLOCKS = (800.0, 1600.0, 3200.0)


@pytest.fixture(scope="module")
def heavy_fill_trace():
    """A bandwidth-hungry workload: huge blended fills."""
    from repro.gfx.state import TRANSPARENT_STATE

    draws = [
        make_draw(pixels=400000, shaded_fraction=1.0, state=TRANSPARENT_STATE)
        for _ in range(6)
    ]
    return make_world([draws])


class TestMemorySweep:
    def test_memory_clock_helps_bandwidth_bound(self, heavy_fill_trace):
        sweep = frequency_sweep(
            heavy_fill_trace, CFG, CLOCKS, domain="memory"
        )
        assert sweep.speedups[-1] > 1.05

    def test_domains_differ(self, heavy_fill_trace):
        core = frequency_sweep(heavy_fill_trace, CFG, CLOCKS, domain="core")
        mem = frequency_sweep(heavy_fill_trace, CFG, CLOCKS, domain="memory")
        assert core.total_times_ns != mem.total_times_ns

    def test_compute_bound_ignores_memory_clock(self):
        # Tiny texture traffic, big ALU load: memory clock barely matters.
        draws = [make_draw(vertex_count=200000, pixels=100, texture_ids=())
                 for _ in range(4)]
        trace = make_world([draws])
        sweep = frequency_sweep(trace, CFG, CLOCKS, domain="memory")
        assert sweep.speedups[-1] < 1.4

    def test_bad_domain_rejected(self, heavy_fill_trace):
        with pytest.raises(SimulationError, match="domain"):
            frequency_sweep(heavy_fill_trace, CFG, CLOCKS, domain="uncore")

    def test_monotone(self, heavy_fill_trace):
        sweep = frequency_sweep(heavy_fill_trace, CFG, CLOCKS, domain="memory")
        times = sweep.total_times_ns
        assert times[0] >= times[1] >= times[2]
