"""Tests for GpuSimulator frame/trace simulation."""

import pytest

from repro.errors import SimulationError
from repro.gfx.frame import Frame
from repro.simgpu.config import GpuConfig
from repro.simgpu.simulator import GpuSimulator

from tests.conftest import make_draw, make_world

CFG = GpuConfig()


class TestSimulateFrame:
    def test_frame_time_is_sum_of_draws(self, simple_trace):
        sim = GpuSimulator(CFG)
        result = sim.simulate_frame(simple_trace.frames[0], simple_trace, keep_draw_costs=True)
        assert result.time_ns == pytest.approx(sum(result.draw_times_ns()))

    def test_pass_times_sum_to_frame_time(self, simple_trace):
        sim = GpuSimulator(CFG)
        result = sim.simulate_frame(simple_trace.frames[0], simple_trace)
        assert sum(result.pass_times_ns.values()) == pytest.approx(result.time_ns)

    def test_draw_times_requires_detail(self, simple_trace):
        sim = GpuSimulator(CFG)
        result = sim.simulate_frame(simple_trace.frames[0], simple_trace)
        with pytest.raises(SimulationError, match="keep_draw_costs"):
            result.draw_times_ns()

    def test_empty_frame_rejected(self, simple_trace):
        sim = GpuSimulator(CFG)
        empty = Frame(index=0, passes=())
        with pytest.raises(SimulationError, match="no draws"):
            sim.simulate_frame(empty, simple_trace)

    def test_frames_are_independent(self):
        # The same draws produce the same time whether simulated as frame 0
        # or after other frames (tracker resets per frame); only the noise
        # slot (frame index) differs, bounded by the amplitude.
        draws = [make_draw(shader_id=1), make_draw(shader_id=2)]
        trace = make_world([draws, draws])
        sim = GpuSimulator(CFG.scaled(noise_amplitude=0.0))
        r0 = sim.simulate_frame(trace.frames[0], trace)
        r1 = sim.simulate_frame(trace.frames[1], trace)
        assert r0.time_ns == pytest.approx(r1.time_ns)

    def test_order_dependence_within_frame(self):
        # Grouping draws by shader costs less than interleaving them.
        a = [make_draw(shader_id=1, texture_ids=(1,)) for _ in range(4)]
        b = [make_draw(shader_id=2, texture_ids=(2,)) for _ in range(4)]
        grouped = a + b
        interleaved = [a[0], b[0], a[1], b[1], a[2], b[2], a[3], b[3]]
        trace = make_world([grouped, interleaved])
        sim = GpuSimulator(CFG.scaled(noise_amplitude=0.0))
        t_grouped = sim.simulate_frame(trace.frames[0], trace).time_ns
        t_interleaved = sim.simulate_frame(trace.frames[1], trace).time_ns
        assert t_interleaved > t_grouped


class TestSimulateTrace:
    def test_total_is_sum_of_frames(self, simple_trace):
        sim = GpuSimulator(CFG)
        result = sim.simulate_trace(simple_trace)
        assert result.total_time_ns == pytest.approx(
            sum(result.frame_times_ns)
        )
        assert len(result.frame_results) == simple_trace.num_frames

    def test_result_names(self, simple_trace):
        result = GpuSimulator(CFG).simulate_trace(simple_trace)
        assert result.trace_name == simple_trace.name
        assert result.config_name == CFG.name

    def test_mean_fps_positive(self, simple_trace):
        result = GpuSimulator(CFG).simulate_trace(simple_trace)
        assert result.mean_fps > 0

    def test_deterministic(self, simple_trace):
        a = GpuSimulator(CFG).simulate_trace(simple_trace)
        b = GpuSimulator(CFG).simulate_trace(simple_trace)
        assert a.frame_times_ns == b.frame_times_ns

    def test_bad_config_rejected(self):
        with pytest.raises(SimulationError, match="GpuConfig"):
            GpuSimulator("mainstream")  # type: ignore[arg-type]


class TestSimulateDraws:
    def test_subset_costs_differ_from_in_context(self, simple_trace):
        # Simulating a draw alone (cold context) differs from its cost deep
        # inside a frame (warm textures, amortized switches).
        sim = GpuSimulator(CFG)
        frame = simple_trace.frames[0]
        full = sim.simulate_frame(frame, simple_trace, keep_draw_costs=True)
        draws = frame.draw_list
        alone = sim.simulate_draws([draws[5]], simple_trace, frame_index=frame.index)
        in_context = full.draw_costs[5]
        assert alone[0].time_ns != pytest.approx(in_context.time_ns, rel=1e-6)

    def test_draw_sequence_order_preserved(self, simple_trace):
        sim = GpuSimulator(CFG)
        draws = simple_trace.frames[0].draw_list[:4]
        costs = sim.simulate_draws(draws, simple_trace)
        assert len(costs) == 4
