"""Tests for the per-draw cost model."""

import dataclasses

import pytest

from repro.gfx.enums import TextureFormat
from repro.gfx.resources import RenderTargetDesc, TextureDesc
from repro.gfx.shader import make_shader
from repro.simgpu.config import GpuConfig
from repro.simgpu.cost import (
    combine_core_cycles,
    combine_time_ns,
    draw_cost,
    noise_multiplier,
)
from repro.simgpu.state_tracker import TrackerEffects

from tests.conftest import make_draw

CFG = GpuConfig()
NO_EFFECTS = TrackerEffects(warm_fraction=0.0, switch_cycles=0.0)
SHADER = make_shader(1, "s", vs_alu=20, ps_alu=40, ps_tex=2)
COLOR = [RenderTargetDesc(0, 1280, 720, TextureFormat.RGBA8)]
DEPTH = RenderTargetDesc(1, 1280, 720, TextureFormat.DEPTH24S8)
TEXTURES = [TextureDesc(10, 256, 256, TextureFormat.BC1)]


def cost_of(draw, config=CFG, effects=NO_EFFECTS, key=(0, 0)):
    return draw_cost(draw, SHADER, TEXTURES, COLOR, DEPTH, config, effects, key)


class TestMonotonicity:
    def test_more_pixels_cost_more(self):
        small = cost_of(make_draw(pixels=1000))
        large = cost_of(make_draw(pixels=100000))
        assert large.time_ns > small.time_ns

    def test_more_vertices_cost_more(self):
        few = cost_of(make_draw(vertex_count=30))
        many = cost_of(make_draw(vertex_count=300000))
        assert many.time_ns > few.time_ns

    def test_higher_clock_is_faster(self):
        draw = make_draw(pixels=50000)
        slow = cost_of(draw, config=CFG.with_core_clock(500.0))
        fast = cost_of(draw, config=CFG.with_core_clock(2000.0))
        assert fast.time_ns < slow.time_ns

    def test_switch_penalty_increases_cost(self):
        draw = make_draw()
        clean = cost_of(draw)
        switched = cost_of(
            draw, effects=TrackerEffects(warm_fraction=0.0, switch_cycles=5000.0)
        )
        assert switched.core_cycles > clean.core_cycles

    def test_warmth_reduces_memory_traffic(self):
        # Few enough samples that the spatial-locality cap does not bind.
        draw = make_draw(pixels=2000)
        cold = cost_of(draw, effects=TrackerEffects(0.0, 0.0))
        warm = cost_of(draw, effects=TrackerEffects(1.0, 0.0))
        assert warm.traffic.texture_bytes < cold.traffic.texture_bytes
        assert warm.dram_cycles < cold.dram_cycles

    def test_spatial_locality_caps_streaming_reads(self):
        # A full-screen pass cannot fetch more than ~the texture content.
        from repro.simgpu import texture as tex_model

        fullscreen = make_draw(pixels=1280 * 720, shaded_fraction=1.0)
        cost = cost_of(fullscreen)
        footprint = sum(t.byte_size for t in TEXTURES)
        cap = tex_model.FOOTPRINT_OVERFETCH_CAP * footprint
        assert cost.traffic.texture_bytes <= cap + 1e-6


class TestBreakdown:
    def test_stage_cycles_all_nonnegative(self):
        cost = cost_of(make_draw())
        assert all(c >= 0 for c in cost.stage_cycles)

    def test_core_cycles_at_least_bottleneck(self):
        cost = cost_of(make_draw())
        # noise can only perturb by +/- amplitude
        assert cost.core_cycles >= max(cost.stage_cycles) * (1 - CFG.noise_amplitude)

    def test_bottleneck_is_valid_name(self):
        cost = cost_of(make_draw(pixels=200000))
        assert cost.bottleneck in (
            "vertex", "fetch", "raster", "pixel", "texture", "rop", "memory",
        )

    def test_fullscreen_quad_is_pixel_or_memory_bound(self):
        quad = make_draw(vertex_count=3, pixels=1280 * 720, shaded_fraction=1.0)
        cost = cost_of(quad)
        assert cost.bottleneck in ("pixel", "texture", "rop", "memory", "raster")
        assert cost.vertex_cycles < cost.pixel_cycles

    def test_memory_bound_detection(self):
        # Starve bandwidth so any draw becomes memory bound.
        starved = CFG.scaled(dram_bytes_per_mem_cycle=0.01)
        cost = cost_of(make_draw(pixels=100000), config=starved)
        assert cost.bottleneck == "memory"


class TestNoise:
    def test_noise_deterministic(self):
        a = noise_multiplier(CFG, (3, 7))
        b = noise_multiplier(CFG, (3, 7))
        assert a == b

    def test_noise_bounded(self):
        for frame in range(20):
            for pos in range(20):
                m = noise_multiplier(CFG, (frame, pos))
                assert 1 - CFG.noise_amplitude <= m <= 1 + CFG.noise_amplitude

    def test_zero_amplitude_is_identity(self):
        quiet = CFG.scaled(noise_amplitude=0.0)
        assert noise_multiplier(quiet, (1, 2)) == 1.0

    def test_noise_varies_by_slot(self):
        values = {noise_multiplier(CFG, (0, pos)) for pos in range(50)}
        assert len(values) > 40


class TestCombine:
    def test_combine_core_includes_residual(self):
        stages = [100.0, 50.0, 25.0]
        combined = combine_core_cycles(stages, 0.0, 0.0, CFG)
        assert combined == pytest.approx(100.0 + CFG.serial_fraction * 75.0)

    def test_combine_time_overlap(self):
        # core 1000 cycles @1000MHz = 1000ns; mem 800 cycles @1600MHz = 500ns
        t = combine_time_ns(1000.0, 800.0, CFG)
        assert t == pytest.approx(1000.0 + CFG.mem_overlap_residual * 500.0)

    def test_combine_time_memory_bound(self):
        t = combine_time_ns(100.0, 100000.0, CFG)
        mem_ns = 1e3 * 100000.0 / CFG.memory_clock_mhz
        assert t >= mem_ns


class TestInstancing:
    def test_instanced_draw_costs_like_expanded(self):
        base = make_draw(vertex_count=30, instance_count=10)
        flat = dataclasses.replace(base, vertex_count=300, instance_count=1)
        # Same total vertex work -> same vertex-stage cycles.
        assert cost_of(base).vertex_cycles == pytest.approx(cost_of(flat).vertex_cycles)
