"""Tests for frequency sweeps."""

import pytest

from repro.errors import SimulationError
from repro.simgpu.config import GpuConfig
from repro.simgpu.dvfs import frequency_sweep

CFG = GpuConfig()
CLOCKS = (500.0, 1000.0, 2000.0)


class TestFrequencySweep:
    def test_time_decreases_with_clock(self, simple_trace):
        sweep = frequency_sweep(simple_trace, CFG, CLOCKS)
        times = sweep.total_times_ns
        assert times[0] > times[1] > times[2]

    def test_speedups_normalized_to_base(self, simple_trace):
        sweep = frequency_sweep(simple_trace, CFG, CLOCKS)
        assert sweep.speedups[0] == pytest.approx(1.0)
        assert all(s >= 1.0 for s in sweep.speedups)

    def test_scaling_is_sublinear(self, simple_trace):
        # Memory-bound work doesn't speed up with core clock, so speedup
        # at 4x the clock must be below 4x.
        sweep = frequency_sweep(simple_trace, CFG, CLOCKS)
        assert sweep.speedups[-1] < CLOCKS[-1] / CLOCKS[0]
        assert sweep.scaling_efficiency[0] == pytest.approx(1.0)
        assert sweep.scaling_efficiency[-1] < 1.0

    def test_efficiency_monotonically_decreasing(self, simple_trace):
        sweep = frequency_sweep(simple_trace, CFG, CLOCKS)
        eff = sweep.scaling_efficiency
        assert eff[0] >= eff[1] >= eff[2]

    def test_batch_and_sequential_agree(self, simple_trace):
        fast = frequency_sweep(simple_trace, CFG, CLOCKS, use_batch=True)
        slow = frequency_sweep(simple_trace, CFG, CLOCKS, use_batch=False)
        for a, b in zip(fast.total_times_ns, slow.total_times_ns):
            assert a == pytest.approx(b, rel=1e-9)

    def test_improvements_percent(self, simple_trace):
        sweep = frequency_sweep(simple_trace, CFG, CLOCKS)
        assert sweep.improvements_percent[0] == pytest.approx(0.0)
        assert sweep.improvements_percent[-1] > 0

    def test_single_point_rejected(self, simple_trace):
        with pytest.raises(SimulationError, match="two clock"):
            frequency_sweep(simple_trace, CFG, (1000.0,))

    def test_unsorted_clocks_rejected(self, simple_trace):
        with pytest.raises(SimulationError, match="sorted"):
            frequency_sweep(simple_trace, CFG, (1000.0, 500.0))
