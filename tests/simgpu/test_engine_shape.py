"""Engine-shape sanity: the simulator's view of generated games matches
renderer intuition (the cross-check between synth and simgpu)."""

from repro.simgpu.batch import simulate_frames_batch
from repro.simgpu.config import GpuConfig
from repro.synth.generator import TraceGenerator
from repro.synth.phasescript import PhaseScript, Segment, SegmentKind
from repro.synth.profiles import GameProfile

CFG = GpuConfig.preset("mainstream")


def explore_trace(game: str, frames: int = 4):
    profile = GameProfile.preset(game).scaled(0.08)
    script = PhaseScript((Segment(SegmentKind.EXPLORE, 0, frames),))
    return TraceGenerator(profile, seed=81).generate(script=script)


class TestEngineShape:
    def test_deferred_pays_lighting_forward_does_not(self):
        fwd = explore_trace("bioshock1_like")
        dfr = explore_trace("bioshock_infinite_like")
        fwd_out = simulate_frames_batch(fwd, CFG)[0]
        dfr_out = simulate_frames_batch(dfr, CFG)[0]
        assert "lighting" not in fwd_out.pass_times_ns
        assert dfr_out.pass_times_ns["lighting"] > 0

    def test_opaque_dominates_ui(self):
        trace = explore_trace("bioshock2_like")
        out = simulate_frames_batch(trace, CFG)[0]
        opaque = out.pass_times_ns.get("forward", 0) + out.pass_times_ns.get(
            "gbuffer", 0
        )
        assert opaque > out.pass_times_ns["ui"]

    def test_shadow_time_scales_with_light_count(self):
        few = explore_trace("bioshock1_like")  # 2 shadowed lights
        many = explore_trace("bioshock_infinite_like")  # capped at 3
        few_out = simulate_frames_batch(few, CFG)[0]
        many_out = simulate_frames_batch(many, CFG)[0]
        few_share = few_out.pass_times_ns["shadow"] / few_out.time_ns
        assert few_share > 0.01  # shadows are real work
        assert many_out.pass_times_ns["shadow"] > 0

    def test_deferred_frame_heavier_than_forward(self):
        fwd = explore_trace("bioshock1_like")
        dfr = explore_trace("bioshock_infinite_like")
        t_fwd = simulate_frames_batch(fwd, CFG)[0].time_ns
        t_dfr = simulate_frames_batch(dfr, CFG)[0].time_ns
        # 1080p deferred with more content costs well over 720p forward.
        assert t_dfr > 1.5 * t_fwd

    def test_frame_times_stable_within_segment(self):
        trace = explore_trace("bioshock2_like", frames=8)
        outputs = simulate_frames_batch(trace, CFG)
        times = [out.time_ns for out in outputs]
        spread = (max(times) - min(times)) / max(times)
        assert spread < 0.30  # smooth camera => smooth frame times
