"""Tests for the order-dependent state tracker."""

import pytest

from repro.gfx.enums import TextureFormat
from repro.gfx.resources import TextureDesc
from repro.gfx.state import OPAQUE_STATE, TRANSPARENT_STATE
from repro.simgpu.config import GpuConfig
from repro.simgpu.state_tracker import StateTracker

from tests.conftest import make_draw

CFG = GpuConfig()


def tex(tid: int, size: int = 64) -> TextureDesc:
    return TextureDesc(tid, size, size, TextureFormat.RGBA8)


class TestWarmth:
    def test_first_touch_is_cold(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        effects = tracker.observe(make_draw(texture_ids=(1,)), [tex(1)])
        assert effects.warm_fraction == 0.0

    def test_second_touch_is_warm(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        draw = make_draw(texture_ids=(1,))
        tracker.observe(draw, [tex(1)])
        effects = tracker.observe(draw, [tex(1)])
        assert effects.warm_fraction == 1.0

    def test_partial_warmth_weighted_by_bytes(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        small, big = tex(1, 64), tex(2, 128)
        tracker.observe(make_draw(texture_ids=(1,)), [small])
        effects = tracker.observe(make_draw(texture_ids=(1, 2)), [small, big])
        expected = small.byte_size / (small.byte_size + big.byte_size)
        assert effects.warm_fraction == pytest.approx(expected)

    def test_no_textures_zero_warmth(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        effects = tracker.observe(make_draw(texture_ids=()), [])
        assert effects.warm_fraction == 0.0

    def test_capacity_eviction(self):
        # Capacity of 2 small textures: touching a third evicts the LRU.
        tiny_cfg = GpuConfig(tex_cache_kb=16, l2_cache_kb=16)  # 32 KiB total
        tracker = StateTracker(tiny_cfg)
        tracker.begin_frame()
        big = tex(1, 128)  # 64 KiB > capacity
        tracker.observe(make_draw(texture_ids=(1,)), [big])
        # big exceeded capacity entirely, so it was evicted immediately
        effects = tracker.observe(make_draw(texture_ids=(1,)), [big])
        assert effects.warm_fraction == 0.0

    def test_lru_order(self):
        # Capacity fits exactly two of the three textures.
        t1, t2, t3 = tex(1, 64), tex(2, 64), tex(3, 64)
        capacity_kb = (2 * t1.byte_size) // 1024
        cfg = GpuConfig(tex_cache_kb=capacity_kb // 2, l2_cache_kb=capacity_kb // 2)
        tracker = StateTracker(cfg)
        tracker.begin_frame()
        tracker.observe(make_draw(texture_ids=(1,)), [t1])
        tracker.observe(make_draw(texture_ids=(2,)), [t2])
        tracker.observe(make_draw(texture_ids=(3,)), [t3])  # evicts t1
        warm_t2 = tracker.observe(make_draw(texture_ids=(2,)), [t2]).warm_fraction
        assert warm_t2 == 1.0
        warm_t1 = tracker.observe(make_draw(texture_ids=(1,)), [t1]).warm_fraction
        assert warm_t1 == 0.0

    def test_begin_frame_resets(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        draw = make_draw(texture_ids=(1,))
        tracker.observe(draw, [tex(1)])
        tracker.begin_frame()
        effects = tracker.observe(draw, [tex(1)])
        assert effects.warm_fraction == 0.0


class TestSwitchPenalties:
    def test_first_draw_pays_everything(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        effects = tracker.observe(make_draw(), [])
        expected = (
            CFG.shader_switch_cycles
            + CFG.state_switch_cycles
            + CFG.rt_switch_cycles
        )
        assert effects.switch_cycles == expected

    def test_identical_consecutive_draw_pays_nothing(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        draw = make_draw()
        tracker.observe(draw, [])
        effects = tracker.observe(draw, [])
        assert effects.switch_cycles == 0.0

    def test_shader_change_only(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        tracker.observe(make_draw(shader_id=1), [])
        effects = tracker.observe(make_draw(shader_id=2), [])
        assert effects.switch_cycles == CFG.shader_switch_cycles

    def test_state_change_only(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        tracker.observe(make_draw(state=OPAQUE_STATE), [])
        effects = tracker.observe(make_draw(state=TRANSPARENT_STATE), [])
        # Transparent draws bind no depth write but same targets in make_draw?
        # make_draw keeps depth target for TRANSPARENT (reads depth), so only
        # the state key changed.
        assert effects.switch_cycles == CFG.state_switch_cycles

    def test_rt_change_detected(self):
        tracker = StateTracker(CFG)
        tracker.begin_frame()
        base = make_draw()
        tracker.observe(base, [])
        import dataclasses

        moved = dataclasses.replace(base, render_target_ids=(2,))
        effects = tracker.observe(moved, [])
        assert effects.switch_cycles == CFG.rt_switch_cycles
