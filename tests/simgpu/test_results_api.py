"""Result-object API tests: FrameResult / TraceResult / DrawCost."""

import pytest

from repro.simgpu.config import GpuConfig
from repro.simgpu.cost import STAGE_NAMES
from repro.simgpu.simulator import GpuSimulator

from tests.conftest import make_draw, make_world

CFG = GpuConfig.preset("mainstream")


@pytest.fixture(scope="module")
def results():
    trace = make_world([[make_draw() for _ in range(4)] for _ in range(3)])
    sim = GpuSimulator(CFG)
    return trace, sim.simulate_trace(trace, keep_draw_costs=True)


class TestResultObjects:
    def test_time_unit_conversions(self, results):
        _, trace_result = results
        frame = trace_result.frame_results[0]
        assert frame.time_ms == pytest.approx(frame.time_ns / 1e6)
        assert trace_result.total_time_ms == pytest.approx(
            trace_result.total_time_ns / 1e6
        )

    def test_mean_fps_consistent(self, results):
        _, trace_result = results
        mean_frame_s = (
            trace_result.total_time_ns / len(trace_result.frame_results) / 1e9
        )
        assert trace_result.mean_fps == pytest.approx(1.0 / mean_frame_s)

    def test_stage_cycles_align_with_names(self, results):
        _, trace_result = results
        cost = trace_result.frame_results[0].draw_costs[0]
        stages = cost.stage_cycles
        assert len(stages) == len(STAGE_NAMES)
        named = dict(zip(STAGE_NAMES, stages))
        assert named["vertex"] == cost.vertex_cycles
        assert named["pixel"] == cost.pixel_cycles
        assert named["rop"] == cost.rop_cycles

    def test_frame_results_ordered_by_frame(self, results):
        _, trace_result = results
        indices = [fr.frame_index for fr in trace_result.frame_results]
        assert indices == sorted(indices)

    def test_core_cycles_sum(self, results):
        _, trace_result = results
        frame = trace_result.frame_results[0]
        assert frame.core_cycles == pytest.approx(
            sum(c.core_cycles for c in frame.draw_costs)
        )

    def test_traffic_totals(self, results):
        _, trace_result = results
        cost = trace_result.frame_results[0].draw_costs[0]
        assert cost.traffic.total_bytes == pytest.approx(
            cost.traffic.vertex_bytes
            + cost.traffic.texture_bytes
            + cost.traffic.rt_bytes
        )
