"""Tests for the per-stage sub-models: shader core, raster, texture, rop, memory."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gfx.enums import CullMode, TextureFormat
from repro.gfx.resources import RenderTargetDesc, TextureDesc
from repro.simgpu import memory, raster, rop, shadercore, texture
from repro.simgpu.config import GpuConfig
from repro.simgpu.memory import TrafficBreakdown

from tests.conftest import make_draw
from repro.gfx.state import OPAQUE_STATE, TRANSPARENT_STATE

CFG = GpuConfig()


class TestShaderCore:
    def test_full_occupancy_below_threshold(self):
        assert shadercore.occupancy(16, CFG) == 1.0
        assert shadercore.occupancy(CFG.max_full_occupancy_registers, CFG) == 1.0

    def test_occupancy_halves_with_double_registers(self):
        occ = shadercore.occupancy(2 * CFG.max_full_occupancy_registers, CFG)
        assert occ == pytest.approx(0.5)

    def test_occupancy_rejects_zero(self):
        with pytest.raises(ValueError):
            shadercore.occupancy(0, CFG)

    def test_throughput_floor(self):
        assert shadercore.throughput_factor(0.0) == shadercore.MIN_THROUGHPUT_FACTOR
        assert shadercore.throughput_factor(1.0) == 1.0

    def test_stage_cycles_zero_invocations(self):
        assert shadercore.shader_stage_cycles(0, 100, 10, 0, 16, CFG) == 0.0

    def test_stage_cycles_scale_with_work(self):
        one = shadercore.shader_stage_cycles(1000, 10, 0, 0, 16, CFG)
        two = shadercore.shader_stage_cycles(2000, 10, 0, 0, 16, CFG)
        assert two == pytest.approx(2 * one)

    def test_register_pressure_slows_stage(self):
        light = shadercore.shader_stage_cycles(1000, 10, 0, 0, 16, CFG)
        heavy = shadercore.shader_stage_cycles(1000, 10, 0, 0, 128, CFG)
        assert heavy > light

    @given(st.integers(min_value=1, max_value=256))
    def test_occupancy_in_unit_range(self, registers):
        occ = shadercore.occupancy(registers, CFG)
        assert 0.0 < occ <= 1.0


class TestRaster:
    def test_cull_reduces_setup(self):
        culled = raster.raster_cycles(1000, 0, CullMode.BACK, CFG)
        unculled = raster.raster_cycles(1000, 0, CullMode.NONE, CFG)
        assert culled < unculled

    def test_pixels_dominate_for_big_triangles(self):
        few_prims = raster.raster_cycles(10, 100000, CullMode.NONE, CFG)
        assert few_prims > raster.raster_cycles(10, 0, CullMode.NONE, CFG)

    def test_negative_prims_rejected(self):
        with pytest.raises(ValueError):
            raster.primitives_after_cull(-1, CullMode.NONE)


class TestTexture:
    def test_footprint_sums_textures(self):
        texs = [
            TextureDesc(1, 64, 64, TextureFormat.RGBA8),
            TextureDesc(2, 64, 64, TextureFormat.RGBA8),
        ]
        assert texture.texture_footprint_bytes(texs) == 2 * 64 * 64 * 4

    def test_zero_footprint_zero_miss(self):
        assert texture.miss_rate(0, 0.0, CFG) == 0.0

    def test_warm_misses_less_than_cold(self):
        footprint = 512 * 1024
        cold = texture.miss_rate(footprint, 0.0, CFG)
        warm = texture.miss_rate(footprint, 1.0, CFG)
        assert warm < cold

    def test_miss_rate_monotonic_in_footprint(self):
        rates = [texture.miss_rate(kb * 1024, 0.0, CFG) for kb in (32, 128, 512, 4096)]
        assert rates == sorted(rates)

    def test_miss_rate_capped(self):
        assert texture.miss_rate(10**12, 0.0, CFG) <= texture.MAX_MISS

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_miss_rate_in_unit_interval(self, footprint, warm):
        rate = texture.miss_rate(footprint, warm, CFG)
        assert 0.0 <= rate <= texture.MAX_MISS

    def test_bad_warm_fraction_rejected(self):
        with pytest.raises(ValueError):
            texture.miss_rate(100, 1.5, CFG)

    def test_cycles_zero_samples(self):
        assert texture.texture_cycles(0, CFG) == 0.0


class TestRop:
    def test_blend_costs_more(self):
        opaque = make_draw(state=OPAQUE_STATE)
        blended = make_draw(state=TRANSPARENT_STATE)
        assert rop.rop_cycles(blended, 1, CFG) > 0
        # Same pixel counts; blending halves throughput but transparent
        # state also skips depth writes, so compare traffic directly too.
        rt = RenderTargetDesc(0, 1280, 720, TextureFormat.RGBA8)
        assert rop.color_traffic_bytes(blended, [rt]) == pytest.approx(
            2 * rop.color_traffic_bytes(opaque, [rt])
        )

    def test_mrt_multiplies_writes(self):
        draw = make_draw()
        assert rop.rop_cycles(draw, 4, CFG) > rop.rop_cycles(draw, 1, CFG)

    def test_depth_traffic_compression(self):
        draw = make_draw(pixels=1000, shaded_fraction=1.0)
        depth_rt = RenderTargetDesc(9, 1280, 720, TextureFormat.DEPTH24S8)
        traffic = rop.depth_traffic_bytes(draw, depth_rt, CFG)
        raw = 1000 * 4 * 2  # read rasterized + write shaded, 4B each
        assert traffic == pytest.approx(raw * CFG.depth_compression)


class TestMemory:
    def test_dram_bytes_filters_by_class(self):
        traffic = TrafficBreakdown(vertex_bytes=100.0, texture_bytes=100.0, rt_bytes=100.0)
        filtered = memory.dram_bytes(traffic, CFG)
        assert filtered < traffic.total_bytes
        expected = (
            100 * (1 - CFG.l2_hit_vertex)
            + 100 * (1 - CFG.l2_hit_tex)
            + 100 * (1 - CFG.l2_hit_rt)
        )
        assert filtered == pytest.approx(expected)

    def test_dram_cycles_scale_with_bytes(self):
        one = memory.dram_cycles(TrafficBreakdown(texture_bytes=1000.0), CFG)
        two = memory.dram_cycles(TrafficBreakdown(texture_bytes=2000.0), CFG)
        assert two == pytest.approx(2 * one)

    def test_vertex_fetch_cycles(self):
        assert memory.vertex_fetch_cycles(640.0, CFG) == pytest.approx(
            640.0 / CFG.vertex_fetch_bytes_per_cycle
        )
