"""Request validation: field-pathed errors and canonical job keys."""

from __future__ import annotations

import pytest

from repro.service.specs import validate_job_request
from repro.simgpu.config import GpuConfig
from repro.util.validation import FieldValidationError

from tests.service.conftest import job_payload


def _field_paths(exc: FieldValidationError) -> list:
    return sorted(e.field_path for e in exc.errors)


def test_minimal_generate_submission_validates():
    spec = validate_job_request(job_payload())
    assert spec.kind == "simulate"
    assert spec.trace["generate"]["game"] == "bioshock1_like"
    assert spec.config["preset"] == "mainstream"
    assert spec.params == {}


def test_subset_params_get_defaults():
    spec = validate_job_request(job_payload(kind="subset"))
    assert set(spec.params) == {
        "radius", "interval_length", "tolerance", "seed"
    }


def test_unknown_kind_is_rejected_with_field_path():
    with pytest.raises(FieldValidationError) as info:
        validate_job_request({"kind": "frobnicate", "trace": {}})
    assert _field_paths(info.value) == ["kind"]


def test_every_bad_field_is_reported_at_once():
    payload = {
        "kind": "subset",
        "trace": {"generate": {"game": "quake", "frames": -3}},
        "config": {"preset": "mainstream", "overrides": {"bogus_field": 1}},
        "params": {"radius": -0.5, "nope": True},
    }
    with pytest.raises(FieldValidationError) as info:
        validate_job_request(payload)
    assert _field_paths(info.value) == [
        "config.overrides.bogus_field",
        "params.nope",
        "params.radius",
        "trace.generate.frames",
        "trace.generate.game",
    ]


def test_override_value_errors_carry_the_field_path():
    payload = job_payload(
        config={"preset": "mainstream", "overrides": {"tex_cache_kb": "big"}}
    )
    with pytest.raises(FieldValidationError) as info:
        validate_job_request(payload)
    assert _field_paths(info.value) == ["config.overrides.tex_cache_kb"]


def test_trace_requires_exactly_one_source():
    with pytest.raises(FieldValidationError) as info:
        validate_job_request({"kind": "simulate", "trace": {}})
    assert _field_paths(info.value) == ["trace"]


def test_missing_trace_path_is_a_field_error(tmp_path):
    with pytest.raises(FieldValidationError) as info:
        validate_job_request(
            {"kind": "simulate", "trace": {"path": str(tmp_path / "no.jsonl")}}
        )
    assert _field_paths(info.value) == ["trace.path"]


def test_gpu_config_applies_overrides():
    spec = validate_job_request(
        job_payload(
            config={"preset": "mainstream", "overrides": {"tex_cache_kb": 256}}
        )
    )
    config = spec.gpu_config()
    assert config.tex_cache_kb == 256
    base = GpuConfig.preset("mainstream")
    assert config.num_shader_cores == base.num_shader_cores


def test_job_key_is_submission_order_invariant():
    a = validate_job_request(
        {
            "kind": "simulate",
            "trace": {"generate": {"seed": 7, "frames": 4}},
            "config": {"preset": "mainstream", "overrides": {}},
        }
    )
    b = validate_job_request(
        {
            "config": {"overrides": {}, "preset": "mainstream"},
            "trace": {"generate": {"frames": 4, "seed": 7}},
            "kind": "simulate",
        }
    )
    assert a.job_key() == b.job_key()


def test_job_key_distinguishes_different_work():
    a = validate_job_request(job_payload(seed=1))
    b = validate_job_request(job_payload(seed=2))
    c = validate_job_request(job_payload(seed=1, kind="subset"))
    assert len({a.job_key(), b.job_key(), c.job_key()}) == 3


def test_path_trace_key_pins_file_content(tmp_path):
    from repro.gfx.traceio import save_trace_auto
    from repro.synth.generator import generate_trace

    path = tmp_path / "t.jsonl"
    save_trace_auto(generate_trace("bioshock1_like", 2, seed=1, scale=0.05), path)
    key_one = validate_job_request(
        {"kind": "simulate", "trace": {"path": str(path)}}
    ).job_key()
    save_trace_auto(generate_trace("bioshock1_like", 2, seed=9, scale=0.05), path)
    key_two = validate_job_request(
        {"kind": "simulate", "trace": {"path": str(path)}}
    ).job_key()
    assert key_one != key_two
