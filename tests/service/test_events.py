"""The event bus and the /v1/events SSE stream, unit and end-to-end."""

from __future__ import annotations

import queue
import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.events import (
    EVENT_KINDS,
    DEFAULT_QUEUE_SIZE,
    Event,
    EventBus,
    keepalive_bytes,
)
from repro.service.http import build_server

from tests.service.conftest import job_payload


class TestEventBus:
    def test_publish_fans_out_to_every_subscriber(self):
        bus = EventBus()
        with bus.subscribe() as first, bus.subscribe() as second:
            published = bus.publish("job", job_id="j1", state="queued")
            assert published.seq == 1
            for sub in (first, second):
                event = sub.get(timeout=1.0)
                assert event.kind == "job"
                assert event.data == {"job_id": "j1", "state": "queued"}

    def test_payloads_may_carry_their_own_kind_field(self):
        # Job status payloads have a "kind" key (the job kind); the
        # positional-only event kind must not collide with it.
        bus = EventBus()
        with bus.subscribe() as sub:
            bus.publish("job", kind="simulate", job_id="j1")
            event = sub.get(timeout=1.0)
            assert event.kind == "job"
            assert event.data["kind"] == "simulate"

    def test_unsubscribed_consumers_see_nothing(self):
        bus = EventBus()
        sub = bus.subscribe()
        sub.close()
        bus.publish("progress", tasks_done=1)
        assert sub.get(timeout=0.05) is None
        assert bus.subscriber_count() == 0

    def test_slow_consumer_drops_oldest_never_blocks(self):
        bus = EventBus()
        with bus.subscribe() as sub:
            for index in range(DEFAULT_QUEUE_SIZE + 10):
                bus.publish("progress", index=index)
            # publisher never blocked; the queue kept the newest events
            first = sub.get(timeout=1.0)
            assert first.data["index"] == 10  # 0..9 were dropped oldest-first

    def test_close_broadcasts_shutdown_and_ends_iteration(self):
        bus = EventBus()
        sub = bus.subscribe()
        bus.publish("job", job_id="j1")
        bus.close()
        kinds = [event.kind for event in iter(lambda: sub.get(0.2), None)]
        assert kinds == ["job", "shutdown"]
        assert bus.closed
        # idempotent; publishing after close reaches nobody
        bus.close()
        bus.publish("job", job_id="j2")
        assert sub.get(timeout=0.05) is None

    def test_sse_wire_format(self):
        event = Event(seq=7, kind="job", data={"a": 1}, created_unix=2.0)
        wire = event.sse_bytes().decode()
        assert wire.startswith("event: job\nid: 7\ndata: ")
        assert wire.endswith("\n\n")
        assert '"a": 1' in wire
        assert keepalive_bytes() == b": keepalive\n\n"

    def test_documented_kinds(self):
        assert EVENT_KINDS == (
            "hello", "job", "run_recorded", "progress", "shutdown"
        )


@pytest.fixture
def server(tmp_path):
    instance, recovery = build_server(
        port=0,
        job_dir=tmp_path / "jobs",
        cache_dir=tmp_path / "cache",
        run_store=tmp_path / "runs",
    )
    assert recovery == {"requeued": [], "interrupted": []}
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.close()
    thread.join(timeout=10.0)


@pytest.fixture
def client(server) -> ServiceClient:
    return ServiceClient(server.url, timeout_s=60.0)


class TestEventStream:
    def test_job_lifecycle_streams_end_to_end(self, server, client):
        """The acceptance path: queued -> running -> succeeded as SSE."""
        states: "queue.Queue[str]" = queue.Queue()
        ready = threading.Event()

        def consume():
            for kind, data in client.events(timeout_s=60.0):
                ready.set()
                if kind == "job":
                    states.put(data["state"])
                    if data["state"] in ("succeeded", "failed"):
                        return

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        assert ready.wait(10.0)  # hello arrived: stream is subscribed

        submitted = client.submit(job_payload(kind="simulate", frames=3))
        final = client.wait(submitted["job_id"], timeout_s=120.0)
        assert final["state"] == "succeeded"
        consumer.join(timeout=30.0)
        assert not consumer.is_alive()

        seen = []
        while not states.empty():
            seen.append(states.get_nowait())
        assert seen == ["queued", "running", "succeeded"]

    def test_kind_and_limit_filters(self, server, client):
        events = []

        def consume():
            for kind, data in client.events(
                kinds=["run_recorded"], limit=1, timeout_s=60.0
            ):
                if kind != "keepalive":
                    events.append((kind, data))

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        submitted = client.submit(job_payload(kind="simulate", frames=3, seed=7))
        assert client.wait(submitted["job_id"], timeout_s=120.0)[
            "state"
        ] == "succeeded"
        consumer.join(timeout=30.0)
        assert not consumer.is_alive()
        kinds = [kind for kind, _ in events]
        assert kinds == ["hello", "run_recorded"]
        assert events[1][1]["command"] == "service:simulate"
        assert events[1][1]["run_id"]

    def test_progress_events_ride_the_throttle(self, server, client):
        collected = []

        def consume():
            for kind, data in client.events(
                kinds=["progress", "job"], timeout_s=60.0
            ):
                collected.append((kind, data))
                if kind == "job" and data.get("state") in (
                    "succeeded", "failed"
                ):
                    return

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        submitted = client.submit(job_payload(kind="simulate", frames=4, seed=9))
        client.wait(submitted["job_id"], timeout_s=120.0)
        consumer.join(timeout=30.0)
        progress = [data for kind, data in collected if kind == "progress"]
        assert progress, "at least one throttled progress event expected"
        assert progress[-1]["job_id"] == submitted["job_id"]
        assert progress[-1]["tasks_total"] >= progress[-1]["tasks_done"] > 0

    def test_bad_limit_is_a_400(self, server, client):
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"{server.url}/v1/events?limit=bogus")
        assert info.value.code == 400

    def test_server_close_ends_open_streams(self, tmp_path):
        instance, _ = build_server(
            port=0,
            job_dir=tmp_path / "jobs2",
            cache_dir=tmp_path / "cache2",
            run_store=tmp_path / "runs2",
        )
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        local = ServiceClient(instance.url, timeout_s=30.0)
        seen = []
        done = threading.Event()

        def consume():
            for kind, _ in local.events(timeout_s=30.0):
                seen.append(kind)
            done.set()

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        deadline = threading.Event()
        deadline.wait(0.3)  # let the stream subscribe
        instance.close()
        thread.join(timeout=10.0)
        assert done.wait(10.0), "stream did not unwind on server close"
        assert seen[0] == "hello"
        assert seen[-1] == "shutdown"

    def test_in_process_handle_describes_the_stream(self, server):
        response = server.app.handle("GET", "/v1/events")
        assert response.status == 200
        assert response.body["stream"] == "text/event-stream"
        assert "job" in response.body["kinds"]
