"""Degenerate inputs for the evidence routes: clusters, fidelity, flamediff.

Hand-written sidecars (no pipeline run) pin the payload shapes; the
failure-mode tests pin the typed-404 contract — a missing sidecar or
span file is a reasoned 404, never a 500.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.artifacts import write_artifacts
from repro.obs.history import RunRecord, RunStore
from repro.service.api import Response, ServiceApp
from repro.service.dashboard import DashboardData


def make_record(run_id, command="subset"):
    return RunRecord(
        run_id=run_id,
        created_unix=1000.0,
        command=command,
        argv=(command, "t.jsonl"),
        metrics={},
        stages={},
    )


CLUSTERS_SECTION = {
    "feature_names": ["a", "b"],
    "normalize": "zscore",
    "frames": [
        {
            "frame": 0,
            "num_draws": 3,
            "num_clusters": 1,   # single cluster: one representative
            "labels": [0, 0, 0],
            "representatives": [1],
            "weights": [3.0],
            "features": [[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]],
        }
    ],
}

FIDELITY_SECTION = {
    "trace": "t",
    "config": "mainstream",
    "frames": [
        {
            "frame": 0, "actual_time_ns": 100.0, "predicted_time_ns": 101.0,
            "isolated_time_ns": 99.0, "error": 0.01, "isolated_error": 0.01,
            "efficiency": 3.0, "num_draws": 3, "num_clusters": 1,
            "outlier_rate": 0.0,
        },
        {
            "frame": 1, "actual_time_ns": 200.0, "predicted_time_ns": 196.0,
            "isolated_time_ns": 204.0, "error": 0.02, "isolated_error": 0.02,
            "efficiency": 3.0, "num_draws": 3, "num_clusters": 1,
            "outlier_rate": 0.0,
        },
    ],
    "summary": {"mean_prediction_error": 0.015, "mean_isolated_error": 0.015},
}

SUBSET_SECTION = {
    "frame_positions": [0],
    "frame_weights": [2.0],
    "phases": {
        "intervals": [{"start": 0, "end": 1}, {"start": 1, "end": 2}],
        "phase_ids": [0, 1],
    },
}


@pytest.fixture
def store(tmp_path):
    store = RunStore(tmp_path / "runs")
    store.append(make_record("bare00000000", command="simulate"))
    store.append(make_record("side00000000"))
    write_artifacts(
        store.root,
        "side00000000",
        {
            "clusters": CLUSTERS_SECTION,
            "fidelity": FIDELITY_SECTION,
            "subset": SUBSET_SECTION,
        },
    )
    return store


@pytest.fixture
def app(store, tmp_path):
    dashboard = DashboardData(run_store=store.root, bench_root=tmp_path)
    return ServiceApp(executor=None, dashboard=dashboard)


def get(app: ServiceApp, target: str) -> Response:
    return app.handle("GET", target)


class TestClustersRoute:
    def test_no_sidecar_is_a_typed_404(self, app):
        response = get(app, "/v1/dash/runs/bare/clusters")
        assert response.status == 404
        assert response.body["reason"] == "no_artifacts"
        assert response.body["run_id"] == "bare00000000"

    def test_unknown_run_is_a_plain_404(self, app):
        assert get(app, "/v1/dash/runs/zzz/clusters").status == 404

    def test_single_cluster_frame_projects(self, app):
        response = get(app, "/v1/dash/runs/side/clusters")
        assert response.status == 200
        body = response.body
        assert body["feature_names"] == ["a", "b"]
        (frame,) = body["frames"]
        assert frame["num_clusters"] == 1
        assert frame["representatives"] == [1]
        assert len(frame["points"]) == 3
        assert all(point["cluster"] == 0 for point in frame["points"])
        flags = [point["representative"] for point in frame["points"]]
        assert flags == [False, True, False]
        # perfectly collinear features: all variance on the first PC
        assert frame["explained_variance"][0] == pytest.approx(1.0)
        assert frame["explained_variance"][1] == pytest.approx(0.0, abs=1e-12)


class TestFidelityRoute:
    def test_no_sidecar_is_a_typed_404(self, app):
        response = get(app, "/v1/dash/runs/bare/fidelity")
        assert response.status == 404
        assert response.body["reason"] == "no_artifacts"

    def test_summary_and_phase_grouping(self, app):
        response = get(app, "/v1/dash/runs/side/fidelity")
        assert response.status == 200
        body = response.body
        assert body["summary"]["mean_prediction_error"] == 0.015
        assert len(body["frames"]) == 2
        assert [phase["phase"] for phase in body["phases"]] == [0, 1]
        assert body["phases"][0]["mean_error"] == 0.01
        assert body["phases"][1]["max_error"] == 0.02
        assert body["subset"]["frame_positions"] == [0]


class TestFlamediffRoute:
    @pytest.fixture
    def spans_file(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        rows = [
            {"span_id": "a", "parent_id": None, "name": "cli:subset",
             "category": "cli", "start_ns": 0, "duration_ns": 3000},
            {"span_id": "b", "parent_id": "a", "name": "stage:cluster",
             "category": "pipeline", "start_ns": 100, "duration_ns": 1000},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        return path

    def test_missing_params_is_a_400(self, app, spans_file):
        assert get(app, "/v1/dash/flamediff").status == 400
        assert get(app, f"/v1/dash/flamediff?a={spans_file}").status == 400

    def test_missing_file_is_a_typed_404(self, app, spans_file, tmp_path):
        response = get(
            app, f"/v1/dash/flamediff?a={spans_file}&b={tmp_path}/no.jsonl"
        )
        assert response.status == 404
        assert response.body["reason"] == "missing_span_file"

    def test_self_diff_has_all_zero_deltas(self, app, spans_file):
        response = get(
            app, f"/v1/dash/flamediff?a={spans_file}&b={spans_file}"
        )
        assert response.status == 200
        body = response.body
        assert body["delta_total_s"] == 0.0
        assert body["a"]["num_spans"] == body["b"]["num_spans"] == 2

        def walk(nodes):
            for node in nodes:
                yield node
                yield from walk(node["children"])

        nodes = list(walk(body["tree"]))
        assert nodes, "merged tree should not be empty"
        assert all(node["delta_total_s"] == 0.0 for node in nodes)
        assert all(node["delta_self_s"] == 0.0 for node in nodes)
        assert all(node["a"] == node["b"] for node in nodes)

    def test_empty_span_file_diffs_cleanly(self, app, spans_file, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        response = get(
            app, f"/v1/dash/flamediff?a={empty}&b={spans_file}"
        )
        assert response.status == 200
        body = response.body
        assert body["a"]["num_spans"] == 0
        assert body["a"]["total_s"] == 0.0
        assert body["delta_total_s"] == pytest.approx(3000 / 1e9)
        root = body["tree"][0]
        assert root["a"]["count"] == 0
        assert root["b"]["count"] == 1
