"""ServiceApp routing and error mapping, exercised without sockets."""

from __future__ import annotations

import json

import pytest

from repro.service.api import RETRY_AFTER_S, ServiceApp

from tests.service.conftest import job_payload


@pytest.fixture
def app(make_executor):
    return ServiceApp(make_executor(started=False))


def _post(app: ServiceApp, payload):
    return app.handle("POST", "/v1/jobs", json.dumps(payload).encode("utf-8"))


def test_healthz_reports_build_and_queue(app):
    response = app.handle("GET", "/v1/healthz")
    assert response.status == 200
    assert response.body["status"] == "ok"
    assert response.body["build"]["package_version"]
    assert response.body["queue_depth"] == 0.0
    # The body is serializable as-is.
    assert json.loads(response.body_bytes())["status"] == "ok"


def test_submit_returns_202_with_status_payload(app):
    response = _post(app, job_payload())
    assert response.status == 202
    assert response.body["state"] == "queued"
    assert response.body["kind"] == "simulate"
    assert "result" not in response.body


def test_duplicate_submit_returns_200_coalesced(app):
    first = _post(app, job_payload(seed=4))
    second = _post(app, job_payload(seed=4))
    assert second.status == 200
    assert second.body["coalesced_with"] == first.body["job_id"]


def test_submit_maps_field_errors_to_422(app):
    response = _post(app, {"kind": "simulate", "trace": {}})
    assert response.status == 422
    assert response.body["error"] == "validation failed"
    assert response.body["field_errors"] == [
        {
            "field_path": "trace",
            "message": "provide exactly one of 'path' or 'generate'",
        }
    ]


def test_submit_rejects_non_json_bodies(app):
    assert app.handle("POST", "/v1/jobs", b"").status == 400
    assert app.handle("POST", "/v1/jobs", b"{nope").status == 400


def test_queue_full_maps_to_429_with_retry_after(make_executor):
    app = ServiceApp(make_executor(queue_limit=1, started=False))
    assert _post(app, job_payload(seed=1)).status == 202
    response = _post(app, job_payload(seed=2))
    assert response.status == 429
    assert response.headers["Retry-After"] == str(RETRY_AFTER_S)
    assert "queue is full" in response.body["error"]


def test_status_and_result_lifecycle(app, make_executor):
    submitted = _post(app, job_payload())
    job_id = submitted.body["job_id"]

    status = app.handle("GET", f"/v1/jobs/{job_id}")
    assert status.status == 200
    assert status.body["state"] == "queued"

    pending = app.handle("GET", f"/v1/jobs/{job_id}/result")
    assert pending.status == 409
    assert pending.body["state"] == "queued"

    app.executor.start()
    assert app.executor.join_idle(timeout=120.0)

    result = app.handle("GET", f"/v1/jobs/{job_id}/result")
    assert result.status == 200
    assert result.body["result"]["total_time_ms"] > 0
    assert result.body["metrics"]


def test_result_of_failed_job_is_409_with_error(app, store):
    submitted = _post(app, job_payload())
    record = store.get(submitted.body["job_id"])
    record.state = "failed"
    record.error = "boom"
    store.update(record)

    response = app.handle("GET", f"/v1/jobs/{record.job_id}/result")
    assert response.status == 409
    assert response.body["state"] == "failed"
    assert "boom" in response.body["error"]


def test_result_follows_coalesced_primary(app, store):
    primary = _post(app, job_payload(seed=8)).body["job_id"]
    follower = _post(app, job_payload(seed=8)).body["job_id"]
    record = store.get(primary)
    record.state = "succeeded"
    record.result = {"total_time_ms": 1.0}
    store.update(record)

    response = app.handle("GET", f"/v1/jobs/{follower}/result")
    assert response.status == 200
    assert response.body["job_id"] == primary
    assert response.body["result"] == {"total_time_ms": 1.0}


def test_cancel_route_and_conflict(app):
    job_id = _post(app, job_payload()).body["job_id"]
    cancelled = app.handle("POST", f"/v1/jobs/{job_id}/cancel")
    assert cancelled.status == 200
    assert cancelled.body["state"] == "cancelled"
    # Cancelled is terminal but idempotent; flip to failed for conflict.
    record = app.executor.store.get(job_id)
    record.state = "failed"
    app.executor.store.update(record)
    conflict = app.handle("POST", f"/v1/jobs/{job_id}/cancel")
    assert conflict.status == 409


def test_list_filters_and_validates_query(app):
    _post(app, job_payload(seed=1))
    _post(app, job_payload(seed=2, kind="subset"))

    everything = app.handle("GET", "/v1/jobs")
    assert [j["kind"] for j in everything.body["jobs"]] == [
        "simulate", "subset"
    ]
    subset_only = app.handle("GET", "/v1/jobs?kind=subset&limit=5")
    assert len(subset_only.body["jobs"]) == 1
    assert app.handle("GET", "/v1/jobs?state=simmering").status == 400
    assert app.handle("GET", "/v1/jobs?limit=many").status == 400


def test_unknown_job_and_unknown_route_are_404(app):
    assert app.handle("GET", "/v1/jobs/zzzz").status == 404
    assert app.handle("GET", "/v1/nope").status == 404
    assert app.handle("GET", "/v1/jobs/a/b/c").status == 404


def test_wrong_method_is_405_with_allow_header(app):
    response = app.handle("POST", "/v1/healthz")
    assert response.status == 405
    assert response.headers["Allow"] == "GET"
    assert app.handle("DELETE", "/v1/jobs").status == 405


def test_metrics_endpoint_counts_requests(app):
    app.handle("GET", "/v1/healthz")
    response = app.handle("GET", "/v1/metrics")
    assert response.status == 200
    counters = response.body["metrics"]["counters"]
    assert any(
        series["name"] == "service_requests" for series in counters
    )
