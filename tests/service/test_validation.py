"""The shared validation helper and the version surfaces built on it."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import ValidationError
from repro.util.validation import (
    FieldError,
    FieldErrors,
    FieldValidationError,
    build_dataclass,
    check_positive,
    check_type,
)


def test_field_validation_error_renders_every_field():
    exc = FieldValidationError([
        FieldError("config.radius", "must be > 0, got -1"),
        FieldError("trace.path", "no such trace file"),
    ])
    assert "config.radius" in str(exc)
    assert "trace.path" in str(exc)
    assert exc.as_payload() == [
        {"field_path": "config.radius", "message": "must be > 0, got -1"},
        {"field_path": "trace.path", "message": "no such trace file"},
    ]


def test_field_validation_error_requires_entries():
    with pytest.raises(ValueError):
        FieldValidationError([])


def test_field_errors_collects_instead_of_raising():
    errors = FieldErrors()
    assert errors.collect("params.radius", check_positive, "radius", 0.1)
    assert not errors.collect("params.radius", check_positive, "radius", -1)
    assert not errors.collect("params.seed", check_type, "seed", "x", int)
    assert bool(errors)
    with pytest.raises(FieldValidationError) as info:
        errors.raise_if_any()
    assert [e.field_path for e in info.value.errors] == [
        "params.radius", "params.seed"
    ]
    # The check's own "radius ..." prefix is stripped, not repeated.
    assert info.value.errors[0].message == "must be > 0, got -1"


def test_field_errors_prefix_nests_paths():
    errors = FieldErrors(prefix="config")
    errors.add("overrides.x", "unknown field")
    assert errors.errors[0].field_path == "config.overrides.x"


@dataclass(frozen=True)
class _Knobs:
    width: int = 4
    depth: float = 1.0

    def __post_init__(self) -> None:
        check_type("width", self.width, int)
        check_positive("depth", self.depth)


def test_build_dataclass_applies_overrides():
    knobs = build_dataclass(_Knobs, {"width": 8})
    assert knobs.width == 8
    assert knobs.depth == 1.0


def test_build_dataclass_reports_each_bad_field_with_path():
    with pytest.raises(FieldValidationError) as info:
        build_dataclass(
            _Knobs,
            {"width": "wide", "depth": -2.0, "ghost": 1},
            path="config",
        )
    entries = {e.field_path: e.message for e in info.value.errors}
    assert set(entries) == {"config.width", "config.depth", "config.ghost"}
    assert "known fields" in entries["config.ghost"]


def test_build_dataclass_base_supplies_defaults():
    base = _Knobs(width=16, depth=2.0)
    knobs = build_dataclass(_Knobs, {"depth": 3.0}, base=base)
    assert knobs.width == 16
    assert knobs.depth == 3.0


def test_build_dataclass_rejects_non_dataclasses():
    with pytest.raises(ValueError, match="not a dataclass"):
        build_dataclass(dict, {})


def test_pipeline_reports_all_bad_knobs_together():
    from repro.core.pipeline import SubsettingPipeline

    with pytest.raises(FieldValidationError) as info:
        SubsettingPipeline(radius=-1.0, interval_length=0, seed="zero")
    paths = sorted(e.field_path for e in info.value.errors)
    assert paths == ["interval_length", "radius", "seed"]
    # Still a ValidationError, so pre-existing callers keep working.
    assert isinstance(info.value, ValidationError)


def test_cli_renders_field_errors_one_line_each(tmp_path, capsys):
    from repro.cli import main
    from repro.gfx.traceio import save_trace_auto
    from repro.synth.generator import generate_trace

    trace = tmp_path / "t.jsonl"
    save_trace_auto(
        generate_trace("bioshock1_like", 4, seed=1, scale=0.05), trace
    )
    rc = main(["subset", str(trace),
               "--radius", "-1", "--interval-length", "0"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "error: validation failed" in captured.err
    assert "  radius: " in captured.err
    assert "  interval_length: " in captured.err


def test_version_flag_prints_build_line(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as info:
        main(["--version"])
    assert info.value.code == 0
    out = capsys.readouterr().out
    assert out.startswith("repro ")
    assert "python" in out


def test_version_line_matches_build_info():
    from repro.obs.history import build_info, version_line

    info = build_info()
    line = version_line()
    assert info["package_version"] in line
    assert info["python_version"] in line
