"""Job store: exclusive create, atomic update, lookup, crash recovery."""

from __future__ import annotations

import json

import pytest

from repro.errors import ValidationError
from repro.service.jobs import (
    JOB_STORE_VERSION,
    MAX_ATTEMPTS,
    JobRecord,
    JobStore,
    new_job,
)


def _job(kind: str = "simulate", key: str = "k") -> JobRecord:
    return new_job(key, kind, {"kind": kind})


def test_create_writes_one_file_per_job(store: JobStore):
    record = _job()
    path = store.create(record)
    assert path.is_file()
    assert path.name.endswith(f"-{record.job_id}.json")
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["job_store_version"] == JOB_STORE_VERSION
    assert data["state"] == "queued"


def test_create_never_overwrites_on_name_collision(store: JobStore):
    record = _job()
    first = store.create(record)
    # Same id + same creation stamp (a pathological clock) must land in
    # a sibling file, not clobber the original.
    second = store.create(record)
    assert first != second
    assert first.is_file() and second.is_file()


def test_update_rewrites_in_place_and_bumps_updated(store: JobStore):
    record = _job()
    path = store.create(record)
    before = record.updated_unix
    record.state = "running"
    record.attempts = 1
    assert store.update(record) == path
    reread = store.get(record.job_id)
    assert reread.state == "running"
    assert reread.attempts == 1
    assert reread.updated_unix >= before
    # No temp files left behind.
    assert sorted(store.root.iterdir()) == [path]


def test_update_unknown_job_raises(store: JobStore):
    with pytest.raises(ValidationError, match="no job record"):
        store.update(_job())


def test_records_filters_by_state_kind_and_limit(store: JobStore):
    jobs = [_job(kind=k) for k in ("simulate", "subset", "simulate")]
    for offset, record in enumerate(jobs):
        record.created_unix += offset  # deterministic ordering
        store.create(record)
    jobs[1].state = "succeeded"
    store.update(jobs[1])

    assert [r.job_id for r in store.records()] == [j.job_id for j in jobs]
    assert [r.job_id for r in store.records(state="queued")] == [
        jobs[0].job_id, jobs[2].job_id
    ]
    assert [r.job_id for r in store.records(kind="subset")] == [jobs[1].job_id]
    # limit keeps the newest N after filtering.
    assert [r.job_id for r in store.records(limit=1)] == [jobs[2].job_id]
    assert store.records(limit=0) == []


def test_records_skips_foreign_and_partial_files(store: JobStore):
    record = _job()
    store.create(record)
    (store.root / "zz-partial.json").write_text("{\"trunc", encoding="utf-8")
    (store.root / "zz-foreign.json").write_text("{}", encoding="utf-8")
    assert [r.job_id for r in store.records()] == [record.job_id]


def test_from_dict_rejects_future_versions(store: JobStore):
    data = _job().to_dict()
    data["job_store_version"] = JOB_STORE_VERSION + 1
    with pytest.raises(ValidationError, match="version"):
        JobRecord.from_dict(data)


def test_from_dict_rejects_unknown_state():
    data = _job().to_dict()
    data["state"] = "simmering"
    with pytest.raises(ValidationError, match="unknown job state"):
        JobRecord.from_dict(data)


def test_resolve_by_unique_prefix(store: JobStore):
    record = _job()
    store.create(record)
    assert store.resolve(record.job_id[:6]).job_id == record.job_id
    assert store.resolve(record.job_id).job_id == record.job_id


def test_resolve_rejects_ambiguous_and_unknown_prefixes(store: JobStore):
    first, second = _job(), _job()
    # Force a shared prefix without fishing for uuid collisions.
    second.job_id = first.job_id[:6] + "f" * 6
    store.create(first)
    store.create(second)
    with pytest.raises(ValidationError, match="ambiguous"):
        store.resolve(first.job_id[:6])
    with pytest.raises(ValidationError, match="no job matches"):
        store.resolve("zzzz")


def test_recover_requeues_first_crash(store: JobStore):
    record = _job()
    record.state = "running"
    record.attempts = 1
    record.progress = {"tasks_done": 3.0}
    store.create(record)

    requeued, interrupted = store.recover()

    assert [r.job_id for r in requeued] == [record.job_id]
    assert interrupted == []
    reread = store.get(record.job_id)
    assert reread.state == "queued"
    assert reread.progress == {}
    assert reread.attempts == 1  # attempts count starts, not recoveries


def test_recover_interrupts_repeat_offenders(store: JobStore):
    record = _job()
    record.state = "running"
    record.attempts = MAX_ATTEMPTS
    store.create(record)

    requeued, interrupted = store.recover()

    assert requeued == []
    assert [r.job_id for r in interrupted] == [record.job_id]
    reread = store.get(record.job_id)
    assert reread.state == "interrupted"
    assert reread.is_terminal
    assert "interrupted" in (reread.error or "")
    assert reread.finished_unix is not None


def test_recover_is_idempotent_on_a_settled_store(store: JobStore):
    done = _job()
    store.create(done)
    done.state = "succeeded"
    store.update(done)
    assert store.recover() == ([], [])
    assert store.get(done.job_id).state == "succeeded"


def test_status_payload_omits_result_blob(store: JobStore):
    record = _job()
    record.result = {"total_time_ms": 12.5}
    payload = record.status_payload()
    assert "result" not in payload
    assert payload["job_id"] == record.job_id
    assert payload["state"] == "queued"
