"""Service test fixtures: tiny job specs and throwaway stores.

All specs use ``generate`` traces at CI scale (a handful of frames,
heavily scaled down), so every executor test simulates milliseconds of
work.  Stores and caches live in per-test temp dirs; the session-scoped
``$REPRO_RUN_STORE`` isolation from the top-level conftest applies.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import pytest

from repro.service.jobs import JobStore


def job_payload(
    kind: str = "simulate",
    frames: int = 4,
    seed: int = 1,
    **extra: Any,
) -> Dict[str, Any]:
    """A CI-scale submission body; ``seed`` varies the dedup key."""
    payload: Dict[str, Any] = {
        "kind": kind,
        "trace": {
            "generate": {"frames": frames, "seed": seed, "scale": 0.05}
        },
    }
    payload.update(extra)
    return payload


@pytest.fixture
def store(tmp_path) -> JobStore:
    return JobStore(tmp_path / "jobs")


@pytest.fixture
def make_executor(tmp_path, store):
    """Factory for executors over the shared per-test store.

    Executors are stopped at teardown; pass ``started=False`` to get one
    whose queue fills without draining (429 / cancellation tests).
    """
    from repro.service.executor import JobExecutor

    created = []

    def _make(
        workers: int = 1,
        queue_limit: int = 64,
        cache_dir: Optional[str] = "cache",
        started: bool = True,
        job_store: Optional[JobStore] = None,
    ) -> JobExecutor:
        executor = JobExecutor(
            job_store if job_store is not None else store,
            workers=workers,
            queue_limit=queue_limit,
            cache_dir=(tmp_path / cache_dir) if cache_dir else None,
        )
        if started:
            executor.start()
        created.append(executor)
        return executor

    yield _make
    for executor in created:
        executor.stop(timeout=5.0)
