"""End-to-end over real sockets: server, client, and the jobs CLI."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import build_server

from tests.service.conftest import job_payload


@pytest.fixture
def server(tmp_path):
    """A live service on an ephemeral port, torn down after the test."""
    instance, recovery = build_server(
        port=0,
        job_dir=tmp_path / "jobs",
        cache_dir=tmp_path / "cache",
        run_store=tmp_path / "runs",
    )
    assert recovery == {"requeued": [], "interrupted": []}
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.close()
    thread.join(timeout=10.0)


@pytest.fixture
def client(server) -> ServiceClient:
    return ServiceClient(server.url, timeout_s=30.0)


def test_submit_poll_result_roundtrip(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["build"]["package_version"]

    submitted = client.submit(job_payload())
    final = client.wait(submitted["job_id"], timeout_s=120.0)
    assert final["state"] == "succeeded"

    result = client.result(submitted["job_id"])
    assert result["result"]["total_time_ms"] > 0
    assert result["result"]["num_frames"] == 4
    assert [j["job_id"] for j in client.list_jobs()] == [submitted["job_id"]]


def test_validation_errors_surface_through_the_client(client):
    with pytest.raises(ServiceClientError) as info:
        client.submit({"kind": "simulate", "trace": {}})
    assert info.value.status == 422
    assert info.value.field_errors == [
        {
            "field_path": "trace",
            "message": "provide exactly one of 'path' or 'generate'",
        }
    ]


def test_unknown_job_is_a_404_client_error(client):
    with pytest.raises(ServiceClientError) as info:
        client.status("zzzz")
    assert info.value.status == 404


def test_unreachable_server_reports_status_zero():
    lonely = ServiceClient("http://127.0.0.1:9", timeout_s=2.0)
    with pytest.raises(ServiceClientError, match="cannot reach") as info:
        lonely.healthz()
    assert info.value.status == 0


def test_oversized_body_is_rejected_with_413(server, client):
    import urllib.error
    import urllib.request

    blob = b"x" * ((1 << 20) + 1)
    request = urllib.request.Request(
        f"{server.url}/v1/jobs", data=blob, method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request, timeout=30.0)
    assert info.value.code == 413


def test_jobs_cli_against_live_server(server, capsys):
    url = server.url
    rc = main([
        "jobs", "submit", "--url", url,
        "--kind", "simulate", "--generate", "bioshock1_like",
        "--frames", "4", "--seed", "1", "--scale", "0.05",
        "--wait", "--timeout", "120",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "queued" in out
    assert "succeeded" in out
    payload = json.loads(out[out.index("{"):])
    assert payload["result"]["total_time_ms"] > 0

    assert main(["jobs", "list", "--url", url]) == 0
    listing = capsys.readouterr().out
    assert "simulate" in listing and "succeeded" in listing

    job_id = payload["job_id"]
    assert main(["jobs", "status", "--url", url, job_id]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["state"] == "succeeded"


def test_jobs_cli_renders_field_errors(server, capsys):
    rc = main([
        "jobs", "submit", "--url", server.url,
        "--kind", "simulate", "--generate", "bioshock1_like",
        "--frames", "-2",
    ])
    captured = capsys.readouterr()
    assert rc != 0
    assert "frames" in captured.err


def test_metrics_track_service_traffic(client):
    submitted = client.submit(job_payload(seed=11))
    client.wait(submitted["job_id"], timeout_s=120.0)
    counters = {
        (series["name"], tuple(sorted(series["labels"].items()))):
            series["value"]
        for series in client.metrics()["metrics"]["counters"]
    }
    assert counters[("service_jobs_submitted", (("kind", "simulate"),))] == 1
    assert counters[("service_jobs_completed", (("state", "succeeded"),))] == 1
    assert any(name == "service_requests" for name, _ in counters)
