"""The /v1/dash/* routes, the embedded UI, and request telemetry."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.history import RunRecord, RunStore
from repro.service.api import Response, ServiceApp, route_template
from repro.service.dashboard import DashboardData, dash_page
from repro.service.http import build_dash_server
from repro.service.jobs import JobStore


def make_record(run_id="abc123def456", created=1000.0, command="simulate",
                **overrides):
    kwargs = dict(
        run_id=run_id,
        created_unix=created,
        command=command,
        argv=("simulate", "t.jsonl"),
        metrics={"counter:frames_simulated": 24.0},
        stages={"simulate": 0.5},
    )
    kwargs.update(overrides)
    return RunRecord(**kwargs)


@pytest.fixture
def run_store(tmp_path):
    store = RunStore(tmp_path / "runs")
    for i in range(3):
        store.append(make_record(run_id=f"run{i}00000000", created=1000.0 + i))
    return store


@pytest.fixture
def app(run_store, tmp_path):
    """A data-only app: dashboard mounted, no executor."""
    dashboard = DashboardData(
        run_store=run_store.root, bench_root=tmp_path
    )
    return ServiceApp(executor=None, dashboard=dashboard)


def get(app: ServiceApp, target: str) -> Response:
    return app.handle("GET", target)


class TestDashRoutes:
    def test_runs_listing(self, app):
        response = get(app, "/v1/dash/runs")
        assert response.status == 200
        assert response.body["count"] == 3
        assert response.body["runs"][0]["run_id"] == "run000000000"

    def test_runs_query_params(self, app):
        assert get(app, "/v1/dash/runs?limit=1").body["count"] == 1
        assert get(app, "/v1/dash/runs?command=sweep").body["count"] == 0
        assert get(app, "/v1/dash/runs?limit=bogus").status == 400

    def test_run_detail_and_404(self, app):
        response = get(app, "/v1/dash/runs/run1")
        assert response.status == 200
        assert response.body["run_id"] == "run100000000"
        assert get(app, "/v1/dash/runs/zzz").status == 404

    def test_ambiguous_ref_names_candidates(self, app):
        response = get(app, "/v1/dash/runs/run")
        assert response.status == 404
        assert "run000000000" in response.body["error"]
        assert "run200000000" in response.body["error"]

    def test_spans_without_artifact_is_404(self, app):
        response = get(app, "/v1/dash/runs/run1/spans")
        assert response.status == 404
        assert "--trace-out" in response.body["error"]

    def test_spans_with_file_override(self, app, tmp_path):
        spans = tmp_path / "spans.jsonl"
        spans.write_text(json.dumps({
            "span_id": "a", "parent_id": None, "name": "cli:simulate",
            "category": "cli", "start_ns": 0, "duration_ns": 1000,
        }) + "\n")
        response = get(app, f"/v1/dash/runs/run1/spans?file={spans}")
        assert response.status == 200
        assert response.body["num_spans"] == 1
        assert response.body["run_id"] == "run100000000"
        missing = get(app, f"/v1/dash/runs/run1/spans?file={tmp_path}/no.jsonl")
        assert missing.status == 404

    def test_series_defaults_to_newest_command(self, app):
        response = get(app, "/v1/dash/series?select=counter:*")
        assert response.status == 200
        assert response.body["command"] == "simulate"
        assert response.body["window"] == 3
        names = [s["name"] for s in response.body["series"]]
        assert names == ["counter:frames_simulated"]

    def test_series_bad_params(self, app):
        assert get(app, "/v1/dash/series?window=x").status == 400
        assert get(app, "/v1/dash/series?alpha=x").status == 400
        assert get(app, "/v1/dash/series?command=nope").status == 404

    def test_bench(self, app, tmp_path):
        (tmp_path / "BENCH_X.json").write_text('{"ok": true}')
        response = get(app, "/v1/dash/bench")
        assert response.status == 200
        assert response.body["benches"] == {"BENCH_X": {"ok": True}}

    def test_jobs_without_store_reports_unavailable(self, app):
        response = get(app, "/v1/dash/jobs")
        assert response.status == 200
        assert response.body == {"available": False, "jobs": [], "states": {}}

    def test_jobs_reads_persisted_store(self, run_store, tmp_path):
        job_store = JobStore(tmp_path / "jobs")
        app = ServiceApp(dashboard=DashboardData(
            run_store=run_store.root, job_store=job_store
        ))
        response = get(app, "/v1/dash/jobs")
        assert response.status == 200
        assert response.body["available"] is True
        assert response.body["total"] == 0
        assert get(app, "/v1/dash/jobs?state=bogus").status == 400

    def test_post_is_method_not_allowed(self, app):
        response = app.handle("POST", "/v1/dash/runs")
        assert response.status == 405
        assert response.headers["Allow"] == "GET"


class TestDataOnlyService:
    def test_job_routes_answer_503_without_executor(self, app):
        for method, target in (
            ("POST", "/v1/jobs"),
            ("GET", "/v1/jobs"),
            ("GET", "/v1/jobs/deadbeef"),
            ("POST", "/v1/jobs/deadbeef/cancel"),
        ):
            response = app.handle(method, target, b"{}")
            assert response.status == 503
            assert "no job executor" in response.body["error"]

    def test_healthz_reports_mounted_surfaces(self, app):
        body = get(app, "/v1/healthz").body
        assert body["status"] == "ok"
        assert body["executor"] is False
        assert body["dashboard"] is True

    def test_dash_routes_404_when_dashboard_not_mounted(self):
        app = ServiceApp(executor=None, dashboard=None)
        response = get(app, "/v1/dash/runs")
        assert response.status == 404
        assert "dashboard not mounted" in response.body["error"]


class TestEmbeddedUi:
    def test_dash_serves_the_packaged_html(self, app):
        response = get(app, "/dash")
        assert response.status == 200
        assert response.content_type.startswith("text/html")
        html = response.body_bytes().decode("utf-8")
        assert "<!doctype html>" in html
        assert "/v1/dash/runs" in html  # fetches the data API
        assert response.body_bytes() == dash_page()

    def test_data_only_mode_disables_the_ui(self, app):
        app.serve_ui = False
        response = get(app, "/dash")
        assert response.status == 404
        assert get(app, "/v1/dash/runs").status == 200  # data API stays


class TestRequestTelemetry:
    def test_duration_histogram_and_counter_on_metrics(self, app):
        get(app, "/v1/dash/runs")
        get(app, "/v1/dash/runs/zzz")  # 404s are recorded too
        snapshot = get(app, "/v1/metrics").body["metrics"]
        counters = {
            (c["name"], c["labels"].get("route"), c["labels"].get("status"))
            for c in snapshot["counters"]
        }
        assert ("service_requests", "/v1/dash/runs", "200") in counters
        assert ("service_requests", "/v1/dash/runs/{ref}", "404") in counters
        histograms = [
            h for h in snapshot["histograms"]
            if h["name"] == "service_request_duration_s"
        ]
        assert histograms
        routes = {h["labels"]["route"] for h in histograms}
        assert "/v1/dash/runs" in routes
        assert all(h["count"] >= 1 for h in histograms)

    def test_route_template_bounds_cardinality(self):
        assert route_template("/v1/dash/runs") == "/v1/dash/runs"
        assert route_template("/v1/dash/runs/abc123") == "/v1/dash/runs/{ref}"
        assert (
            route_template("/v1/dash/runs/abc123/spans")
            == "/v1/dash/runs/{ref}/spans"
        )
        assert route_template("/v1/jobs/j1/result") == "/v1/jobs/{id}/result"
        assert route_template("/v1/dash/runs/a/b/c") == "<unmatched>"
        assert route_template("/totally/random") == "<unmatched>"

    def test_scanner_paths_fold_to_unmatched(self, app):
        for path in ("/wp-admin", "/v1/dash/runs/a/bogus", "/v1/jobs/x/y/z"):
            app.handle("GET", path)
        snapshot = get(app, "/v1/metrics").body["metrics"]
        scanner_routes = {
            c["labels"]["route"]
            for c in snapshot["counters"]
            if c["name"] == "service_requests"
            and c["labels"]["status"] == "404"
        }
        assert scanner_routes == {"<unmatched>"}


class TestDashServer:
    def test_build_dash_server_end_to_end(self, run_store, tmp_path):
        server = build_dash_server(
            port=0, run_store=run_store.root, bench_root=tmp_path
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(f"{server.url}/v1/dash/runs") as resp:
                assert resp.status == 200
                assert json.load(resp)["count"] == 3
            with urllib.request.urlopen(f"{server.url}/dash") as resp:
                assert resp.headers["Content-Type"].startswith("text/html")
                assert b"<!doctype html>" in resp.read()
        finally:
            server.close()
            thread.join(timeout=10.0)

    def test_data_only_server_hides_ui(self, run_store):
        server = build_dash_server(
            port=0, run_store=run_store.root, serve_ui=False
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{server.url}/dash")
            assert info.value.code == 404
        finally:
            server.close()
            thread.join(timeout=10.0)
