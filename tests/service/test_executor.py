"""Executor behaviour: dedup, queue bounds, cancellation, restart."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ValidationError
from repro.service.executor import (
    JobConflictError,
    JobExecutor,
    QueueFullError,
)
from repro.service.specs import validate_job_request

from tests.service.conftest import job_payload


def _spec(**kwargs):
    return validate_job_request(job_payload(**kwargs))


def _counter(metrics, name: str, **labels) -> int:
    if labels:
        return metrics.counter_value(name, **labels)
    return metrics.counter_total(name)


class _Blocker:
    """Monkeypatched ``_execute`` body that parks jobs on an Event.

    Gives tests deterministic control over the running state without
    racing real simulations: ``entered`` fires once a worker is inside
    the job, ``release`` lets it complete.
    """

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, spec, record, telemetry):
        self.calls += 1
        self.entered.set()
        if not self.release.wait(timeout=10.0):
            raise RuntimeError("test blocker never released")
        return {"blocked": True}


def test_end_to_end_subset_job(store, make_executor):
    executor = make_executor()
    record = executor.submit(_spec(kind="subset", frames=12))
    assert record.state == "queued"
    assert executor.join_idle(timeout=120.0)

    done = store.get(record.job_id)
    assert done.state == "succeeded"
    assert done.attempts == 1
    assert done.result is not None
    assert done.result["subset_frame_fraction"] < 1.0
    assert done.result["subset"]["frame_positions"]
    assert done.metrics.get("counter:frames_simulated", 0) > 0
    assert done.progress["tasks_done"] == done.progress["tasks_total"]
    assert _counter(
        executor.metrics, "service_jobs_completed", state="succeeded"
    ) == 1


def test_concurrent_duplicates_coalesce_onto_one_computation(
    store, make_executor, monkeypatch
):
    blocker = _Blocker()
    monkeypatch.setattr(JobExecutor, "_execute", blocker)
    executor = make_executor()

    primary = executor.submit(_spec(seed=42))
    assert blocker.entered.wait(timeout=10.0)
    follower = executor.submit(_spec(seed=42))

    assert follower.coalesced_with == primary.job_id
    assert follower.job_id != primary.job_id
    blocker.release.set()
    assert executor.join_idle(timeout=10.0)

    assert blocker.calls == 1  # one computation for two submissions
    for job_id in (primary.job_id, follower.job_id):
        done = store.get(job_id)
        assert done.state == "succeeded"
        assert done.result == {"blocked": True}
    assert _counter(executor.metrics, "service_jobs_coalesced") == 1
    assert _counter(
        executor.metrics, "service_jobs_submitted", kind="simulate"
    ) == 2


def test_sequential_duplicate_is_a_warm_cache_rerun(store, make_executor):
    executor = make_executor()
    first = executor.submit(_spec(seed=7))
    assert executor.join_idle(timeout=120.0)
    second = executor.submit(_spec(seed=7))
    assert executor.join_idle(timeout=120.0)

    cold = store.get(first.job_id)
    warm = store.get(second.job_id)
    assert warm.coalesced_with is None  # ran, not coalesced
    assert warm.state == "succeeded"
    assert warm.result == cold.result
    # The rerun touched no simulator: all artifacts came from the cache.
    assert cold.metrics.get("counter:frames_simulated", 0) > 0
    assert warm.metrics.get("counter:frames_simulated", 0) == 0
    assert warm.metrics.get("counter:cache_hits", 0) > 0


def test_failed_job_reports_failed_and_workers_survive(store, make_executor):
    executor = make_executor(started=False)
    bad = executor.submit(_spec(frames=40))
    # Sabotage: the generate spec survives validation but names a game
    # the generator rejects at run time.  Done before start() so the
    # worker can't win the race and run the healthy record.
    broken = store.get(bad.job_id)
    broken.spec["trace"]["generate"]["game"] = "does_not_exist"
    store.update(broken)

    good = executor.submit(_spec(seed=3))
    executor.start()
    assert executor.join_idle(timeout=120.0)

    assert store.get(bad.job_id).state == "failed"
    assert store.get(bad.job_id).error
    assert store.get(good.job_id).state == "succeeded"
    assert _counter(
        executor.metrics, "service_jobs_completed", state="failed"
    ) == 1


def test_queue_full_rejects_with_queue_full_error(make_executor):
    executor = make_executor(queue_limit=2, started=False)
    executor.submit(_spec(seed=1))
    executor.submit(_spec(seed=2))
    with pytest.raises(QueueFullError, match="queue is full"):
        executor.submit(_spec(seed=3))
    assert _counter(
        executor.metrics, "service_jobs_rejected", reason="queue_full"
    ) == 1
    # Followers never occupy queue slots, so a duplicate still lands.
    follower = executor.submit(_spec(seed=1))
    assert follower.coalesced_with is not None


def test_cancel_queued_job(store, make_executor):
    executor = make_executor(started=False)
    record = executor.submit(_spec(seed=1))
    cancelled = executor.cancel(record.job_id)
    assert cancelled.state == "cancelled"
    assert store.get(record.job_id).is_terminal
    # Idempotent on repeat; by unique prefix too.
    assert executor.cancel(record.job_id[:6]).state == "cancelled"


def test_cancel_running_job_conflicts(store, make_executor, monkeypatch):
    blocker = _Blocker()
    monkeypatch.setattr(JobExecutor, "_execute", blocker)
    executor = make_executor()
    record = executor.submit(_spec())
    assert blocker.entered.wait(timeout=10.0)
    with pytest.raises(JobConflictError, match="running"):
        executor.cancel(record.job_id)
    blocker.release.set()
    assert executor.join_idle(timeout=10.0)
    with pytest.raises(JobConflictError, match="succeeded"):
        executor.cancel(record.job_id)


def test_cancelling_primary_promotes_a_follower(store, make_executor):
    executor = make_executor(started=False)
    primary = executor.submit(_spec(seed=9))
    follower = executor.submit(_spec(seed=9))
    assert follower.coalesced_with == primary.job_id

    executor.cancel(primary.job_id)

    heir = store.get(follower.job_id)
    assert heir.state == "queued"
    assert heir.coalesced_with is None  # promoted to primary
    # The promoted job actually runs once workers exist.
    executor.start()
    assert executor.join_idle(timeout=120.0)
    assert store.get(follower.job_id).state == "succeeded"
    assert store.get(primary.job_id).state == "cancelled"


def test_restart_picks_up_queued_backlog(store, make_executor):
    cold = make_executor(started=False)
    one = cold.submit(_spec(seed=1))
    two = cold.submit(_spec(seed=2))
    # Simulate a crash: nothing ran, records persist in the store.

    warm = make_executor(job_store=store)
    assert warm.join_idle(timeout=120.0)
    assert store.get(one.job_id).state == "succeeded"
    assert store.get(two.job_id).state == "succeeded"


def test_restart_requeues_interrupted_running_job(store, make_executor):
    crashed = make_executor(started=False)
    record = crashed.submit(_spec(seed=5))
    running = store.get(record.job_id)
    running.state = "running"
    running.attempts = 1
    store.update(running)

    warm = JobExecutor(store, cache_dir=None)
    recovery = warm.start()
    try:
        assert recovery == {"requeued": [record.job_id], "interrupted": []}
        assert warm.join_idle(timeout=120.0)
        done = store.get(record.job_id)
        assert done.state == "succeeded"
        assert done.attempts == 2
    finally:
        warm.stop(timeout=5.0)


def test_restart_interrupts_twice_crashed_job(store, make_executor):
    crashed = make_executor(started=False)
    record = crashed.submit(_spec(seed=6))
    running = store.get(record.job_id)
    running.state = "running"
    running.attempts = 2
    store.update(running)

    warm = JobExecutor(store, cache_dir=None)
    recovery = warm.start()
    try:
        assert recovery == {"requeued": [], "interrupted": [record.job_id]}
        done = store.get(record.job_id)
        assert done.state == "interrupted"
        assert "limit 2" in (done.error or "")
    finally:
        warm.stop(timeout=5.0)


def test_submit_after_stop_is_rejected(make_executor):
    executor = make_executor(started=False)
    executor.stop(timeout=1.0)
    with pytest.raises(ValidationError, match="shutting down"):
        executor.submit(_spec())


def test_invalid_worker_counts_are_rejected(store):
    with pytest.raises(ValidationError, match="workers"):
        JobExecutor(store, workers=0)
    with pytest.raises(ValidationError, match="queue_limit"):
        JobExecutor(store, queue_limit=0)
