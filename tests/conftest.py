"""Shared test fixtures: small hand-built traces and GPU configs.

The builders here construct minimal-but-valid worlds so individual tests
can focus on one behaviour.  Synthetic full-game traces come from
``repro.synth`` and are exercised in the synth/integration tests.
"""

from __future__ import annotations

import os

import pytest

from repro.gfx.drawcall import DrawCall
from repro.gfx.enums import PassType, PrimitiveTopology, TextureFormat
from repro.gfx.frame import Frame, RenderPass
from repro.gfx.resources import RenderTargetDesc, TextureDesc
from repro.gfx.shader import make_shader
from repro.gfx.state import FULLSCREEN_STATE, OPAQUE_STATE, TRANSPARENT_STATE
from repro.gfx.trace import Trace

COLOR_RT = 0
DEPTH_RT = 1
POST_RT = 2


@pytest.fixture(scope="session", autouse=True)
def _isolated_artifact_cache(tmp_path_factory):
    """Keep the default artifact cache out of the real ``~/.cache``.

    CLI commands cache by default; pointing ``$REPRO_CACHE_DIR`` at a
    session temp dir keeps test runs hermetic (entries are
    content-addressed, so sharing one dir across tests is harmless).
    """
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("artifact-cache"))
    yield
    os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_store(tmp_path_factory):
    """Keep CLI run recording out of the repository's ``.repro/runs``.

    Every simulating CLI invocation appends a run record by default;
    pointing ``$REPRO_RUN_STORE`` at a session temp dir keeps test runs
    from polluting the committed store.  Tests that exercise the store
    itself override the variable (or pass an explicit store path).
    """
    os.environ["REPRO_RUN_STORE"] = str(tmp_path_factory.mktemp("run-store"))
    yield
    os.environ.pop("REPRO_RUN_STORE", None)


@pytest.fixture(scope="session", autouse=True)
def _isolated_precomp_store(tmp_path_factory):
    """Keep the shared precompute store out of the repository's ``.repro``.

    Simulating tests would otherwise publish ``.fpc`` files into
    ``.repro/precomp`` in the working tree; a session temp dir keeps
    runs hermetic while still exercising the store path end to end.
    Tests that need a private store (or a disabled one) override
    ``$REPRO_PRECOMP_DIR`` per-test via monkeypatch.
    """
    os.environ["REPRO_PRECOMP_DIR"] = str(tmp_path_factory.mktemp("precomp-store"))
    yield
    os.environ.pop("REPRO_PRECOMP_DIR", None)


def make_draw(
    shader_id: int = 1,
    vertex_count: int = 300,
    pixels: int = 5000,
    shaded_fraction: float = 0.8,
    texture_ids: tuple = (10,),
    state=OPAQUE_STATE,
    topology=PrimitiveTopology.TRIANGLE_LIST,
    pass_type=PassType.FORWARD,
    instance_count: int = 1,
) -> DrawCall:
    """A valid forward-pass draw with tweakable knobs."""
    return DrawCall(
        shader_id=shader_id,
        state=state,
        topology=topology,
        vertex_count=vertex_count,
        instance_count=instance_count,
        pixels_rasterized=pixels,
        pixels_shaded=int(pixels * shaded_fraction),
        texture_ids=texture_ids,
        render_target_ids=(COLOR_RT,),
        depth_target_id=DEPTH_RT if state.depth.reads_depth else None,
        pass_type=pass_type,
    )


def make_world(draw_lists, name: str = "test-trace") -> Trace:
    """Build a trace from per-frame lists of draws, with consistent tables.

    All shader ids and texture ids appearing in the draws get table entries
    automatically, so tests can invent ids freely.
    """
    shader_ids = set()
    texture_ids = set()
    for draws in draw_lists:
        for d in draws:
            shader_ids.add(d.shader_id)
            texture_ids.update(d.texture_ids)
    shaders = {
        sid: make_shader(
            sid, f"shader{sid}", vs_alu=10 + sid, ps_alu=20 + 2 * sid, ps_tex=2
        )
        for sid in shader_ids
    }
    textures = {
        tid: TextureDesc(tid, 256, 256, TextureFormat.BC1, mip_levels=5)
        for tid in texture_ids
    }
    render_targets = {
        COLOR_RT: RenderTargetDesc(COLOR_RT, 1280, 720, TextureFormat.RGBA8),
        DEPTH_RT: RenderTargetDesc(DEPTH_RT, 1280, 720, TextureFormat.DEPTH24S8),
        POST_RT: RenderTargetDesc(POST_RT, 1280, 720, TextureFormat.RGBA16F),
    }
    frames = tuple(
        Frame(
            index=i,
            passes=(
                RenderPass(pass_type=PassType.FORWARD, draws=tuple(draws)),
            ),
        )
        for i, draws in enumerate(draw_lists)
    )
    return Trace(
        name=name,
        frames=frames,
        shaders=shaders,
        textures=textures,
        render_targets=render_targets,
    )


@pytest.fixture
def simple_draw() -> DrawCall:
    return make_draw()

@pytest.fixture
def simple_trace() -> Trace:
    """Three frames, mixed shaders, enough variety for clustering tests."""
    frames = []
    for f in range(3):
        draws = [
            make_draw(shader_id=1, vertex_count=300 + 30 * i, pixels=4000 + 100 * i)
            for i in range(8)
        ]
        draws += [
            make_draw(
                shader_id=2,
                vertex_count=60,
                pixels=20000,
                state=TRANSPARENT_STATE,
                texture_ids=(11, 12),
            )
            for _ in range(4)
        ]
        draws.append(
            make_draw(
                shader_id=3,
                vertex_count=3,
                pixels=1280 * 720,
                shaded_fraction=1.0,
                state=FULLSCREEN_STATE,
                texture_ids=(),
                pass_type=PassType.POST,
            )
        )
        frames.append(draws)
    return make_world(frames)
