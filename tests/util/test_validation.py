"""Tests for argument-validation helpers."""

import pytest

from repro.errors import ValidationError
from repro.util.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_match(self):
        check_type("x", 3, int)
        check_type("x", "s", str)

    def test_rejects_mismatch(self):
        with pytest.raises(ValidationError, match="x must be int"):
            check_type("x", "3", int)

    def test_bool_is_not_int(self):
        with pytest.raises(ValidationError, match="got bool"):
            check_type("x", True, int)


class TestNumericChecks:
    def test_positive(self):
        check_positive("x", 0.1)
        with pytest.raises(ValidationError):
            check_positive("x", 0)
        with pytest.raises(ValidationError):
            check_positive("x", -1)

    def test_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValidationError):
            check_nonnegative("x", -0.001)

    def test_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValidationError, match="finite"):
                check_positive("x", bad)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive("x", True)

    def test_fraction_inclusive(self):
        check_fraction("x", 0.0)
        check_fraction("x", 1.0)
        with pytest.raises(ValidationError):
            check_fraction("x", 1.0001)

    def test_fraction_exclusive(self):
        with pytest.raises(ValidationError):
            check_fraction("x", 0.0, inclusive=False)
        check_fraction("x", 0.5, inclusive=False)


class TestCheckIn:
    def test_accepts_member(self):
        check_in("mode", "a", {"a", "b"})

    def test_rejects_nonmember_and_lists_choices(self):
        with pytest.raises(ValidationError, match="'a'.*'b'|'b'.*'a'"):
            check_in("mode", "c", {"a", "b"})
