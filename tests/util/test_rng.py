"""Tests for deterministic seed derivation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import (
    derive_seed,
    make_rng,
    spawn_worker_seed,
    stable_hash,
    stable_unit,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "frame", 3) == derive_seed(42, "frame", 3)

    def test_differs_by_component(self):
        assert derive_seed(42, "frame", 3) != derive_seed(42, "frame", 4)

    def test_differs_by_base(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_differs_by_component_name(self):
        assert derive_seed(1, "frame", 0) != derive_seed(1, "draw", 0)

    def test_no_components(self):
        assert derive_seed(5) == derive_seed(5)

    def test_rejects_non_int_base(self):
        with pytest.raises(TypeError):
            derive_seed("nope")  # type: ignore[arg-type]

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_in_range(self, base, component):
        seed = derive_seed(base, component)
        assert 0 <= seed < 2**63 - 1

    def test_component_boundary_not_ambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7, "gen").random(5)
        b = make_rng(7, "gen").random(5)
        assert np.array_equal(a, b)

    def test_different_paths_different_streams(self):
        a = make_rng(7, "gen", 0).random(5)
        b = make_rng(7, "gen", 1).random(5)
        assert not np.array_equal(a, b)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_unit_in_range(self):
        for i in range(100):
            u = stable_unit("draw", i)
            assert 0.0 <= u < 1.0

    @given(st.lists(st.integers(), min_size=1, max_size=5))
    def test_unit_deterministic(self, parts):
        assert stable_unit(*parts) == stable_unit(*parts)


class TestSpawnWorkerSeed:
    def test_deterministic(self):
        assert spawn_worker_seed(0, "simulate", 0, 8) == spawn_worker_seed(
            0, "simulate", 0, 8
        )

    def test_depends_on_task_identity(self):
        assert spawn_worker_seed(0, "simulate", 0, 8) != spawn_worker_seed(
            0, "simulate", 8, 16
        )
        assert spawn_worker_seed(0, "simulate", 0, 8) != spawn_worker_seed(
            0, "cluster", 0, 8
        )
        assert spawn_worker_seed(0, "simulate", 0, 8) != spawn_worker_seed(
            1, "simulate", 0, 8
        )

    def test_distinct_from_plain_derivation(self):
        # Worker seeds live in their own namespace, so a task component
        # can't collide with an application-level derive_seed path.
        assert spawn_worker_seed(7, "gen") != derive_seed(7, "gen")

    def test_in_numpy_seedable_range(self):
        for start in range(0, 100, 7):
            seed = spawn_worker_seed(3, "simulate_frame_range", start, start + 7)
            assert 0 <= seed < 2**63 - 1
            np.random.seed(seed % 2**32)
