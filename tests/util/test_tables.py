"""Tests for ascii table formatting."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "n"], [["bioshock", 12], ["x", 3]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:2])
        assert "bioshock" in lines[2]

    def test_title_is_first_line(self):
        out = format_table(["a"], [[1]], title="E1 results")
        assert out.splitlines()[0] == "E1 results"

    def test_float_precision(self):
        out = format_table(["v"], [[0.123456]], precision=2)
        assert "0.12" in out
        assert "0.123" not in out

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="2 cells"):
            format_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_wide_cell_widens_column(self):
        out = format_table(["a"], [["a-very-long-value"]])
        header_line = out.splitlines()[0]
        assert len(header_line) >= len("a-very-long-value")
