"""Tests for ascii chart rendering."""

import pytest

from repro.errors import ValidationError
from repro.util.charts import bar_chart, line_chart


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # peak fills width
        assert lines[0].count("#") == 5

    def test_title_and_unit(self):
        out = bar_chart(["x"], [3.0], title="T", unit="%")
        assert out.splitlines()[0] == "T"
        assert "3%" in out

    def test_zero_values_ok(self):
        out = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in out

    def test_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart(["a"], [-1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            bar_chart([], [])


class TestLineChart:
    def test_renders_all_series(self):
        out = line_chart(
            [0, 1, 2, 3],
            {"up": [0, 1, 2, 3], "down": [3, 2, 1, 0]},
            width=20,
            height=6,
        )
        assert "*" in out and "o" in out
        assert "legend" in out
        assert "up" in out and "down" in out

    def test_extremes_on_border_rows(self):
        out = line_chart([0, 1], {"s": [0.0, 10.0]}, width=12, height=5)
        lines = out.splitlines()
        plot = [l for l in lines if l.startswith(" " * 11 + "|")]
        assert "*" in plot[0]  # max at top
        assert "*" in plot[-1]  # min at bottom

    def test_axis_labels_present(self):
        out = line_chart([5, 25], {"s": [1.0, 9.0]}, width=15, height=4)
        assert "9" in out and "1" in out
        assert "25" in out and "5" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="points"):
            line_chart([0, 1], {"s": [1.0]})

    def test_single_point_rejected(self):
        with pytest.raises(ValidationError, match="two x"):
            line_chart([0], {"s": [1.0]})

    def test_flat_series_ok(self):
        out = line_chart([0, 1, 2], {"s": [5.0, 5.0, 5.0]})
        assert "*" in out

    def test_constant_x_rejected(self):
        with pytest.raises(ValidationError, match="x values"):
            line_chart([2, 2], {"s": [1.0, 2.0]})
