"""Tests for the statistics toolkit."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.util.stats import (
    geometric_mean,
    mean_absolute_percentage_error,
    pearson_correlation,
    spearman_correlation,
    summarize,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_known_value(self):
        # Cross-checked against numpy.corrcoef for (1,2,3,4) vs (1,3,2,5).
        r = pearson_correlation([1, 2, 3, 4], [1, 3, 2, 5])
        expected = float(np.corrcoef([1, 2, 3, 4], [1, 3, 2, 5])[0, 1])
        assert r == pytest.approx(expected)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError, match="length mismatch"):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_zero_variance_raises(self):
        with pytest.raises(ValidationError, match="zero-variance"):
            pearson_correlation([1, 1, 1], [1, 2, 3])

    def test_single_point_raises(self):
        with pytest.raises(ValidationError, match="two points"):
            pearson_correlation([1], [1])

    def test_nan_raises(self):
        with pytest.raises(ValidationError, match="non-finite"):
            pearson_correlation([1, float("nan")], [1, 2])

    @given(st.lists(finite_floats, min_size=3, max_size=30))
    def test_bounded(self, xs):
        ys = [x * 2 + 1 for x in xs]
        try:
            r = pearson_correlation(xs, ys)
        except ValidationError:
            return  # numerically zero variance: correlation undefined
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9

    @given(st.lists(finite_floats, min_size=3, max_size=30))
    def test_symmetric(self, xs):
        rng = np.random.default_rng(0)
        ys = list(rng.normal(size=len(xs)))
        try:
            forward = pearson_correlation(xs, ys)
        except ValidationError:
            return  # numerically zero variance: correlation undefined
        assert forward == pytest.approx(pearson_correlation(ys, xs))


class TestSpearman:
    def test_monotonic_is_one(self):
        xs = [1.0, 2.0, 5.0, 100.0]
        ys = [x**3 for x in xs]
        assert spearman_correlation(xs, ys) == pytest.approx(1.0)

    def test_handles_ties(self):
        r = spearman_correlation([1, 2, 2, 3], [1, 2, 3, 4])
        assert -1.0 <= r <= 1.0

    def test_reversed_is_minus_one(self):
        assert spearman_correlation([1, 2, 3, 4], [9, 7, 5, 1]) == pytest.approx(-1.0)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError, match="positive"):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    def test_between_min_and_max(self, xs):
        g = geometric_mean(xs)
        assert min(xs) - 1e-9 <= g <= max(xs) + 1e-9


class TestMape:
    def test_exact_prediction_is_zero(self):
        assert mean_absolute_percentage_error([10, 20], [10, 20]) == 0.0

    def test_known(self):
        # |9-10|/10 = 0.1, |22-20|/20 = 0.1 -> mean 0.1
        err = mean_absolute_percentage_error([10, 20], [9, 22])
        assert err == pytest.approx(0.1)

    def test_zero_actual_raises(self):
        with pytest.raises(ValidationError, match="non-zero"):
            mean_absolute_percentage_error([0, 1], [1, 1])


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValidationError, match="non-empty"):
            summarize([])

    def test_as_dict_roundtrip(self):
        d = summarize([5.0]).as_dict()
        assert d["count"] == 1 and d["std"] == 0.0

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_invariants(self, xs):
        s = summarize(xs)
        tol = 1e-9 * max(1.0, abs(s.maximum), abs(s.minimum))
        assert s.minimum <= s.median <= s.maximum
        assert s.minimum - tol <= s.mean <= s.maximum + tol
        assert s.std >= 0.0
        assert not math.isnan(s.mean)
