"""Public-API surface checks: exports exist and are importable."""

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.errors",
    "repro.datasets",
    "repro.cli",
    "repro.util",
    "repro.util.charts",
    "repro.gfx",
    "repro.gfx.commands",
    "repro.gfx.commandstream",
    "repro.gfx.tracebin",
    "repro.gfx.transforms",
    "repro.synth",
    "repro.simgpu",
    "repro.simgpu.batch",
    "repro.simgpu.dvfs",
    "repro.core",
    "repro.core.calibrate",
    "repro.core.incremental",
    "repro.core.online",
    "repro.core.perfphase",
    "repro.core.subsetio",
    "repro.runtime",
    "repro.runtime.cache",
    "repro.runtime.engine",
    "repro.runtime.keys",
    "repro.runtime.tasks",
    "repro.runtime.telemetry",
    "repro.baselines",
    "repro.analysis",
    "repro.analysis.experiments",
    "repro.analysis.suite",
    "repro.analysis.validation",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize(
    "module_name",
    ["repro", "repro.gfx", "repro.synth", "repro.simgpu", "repro.core",
     "repro.baselines", "repro.analysis", "repro.util"],
)
def test_dunder_all_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_experiment_runner_registry_matches_cli():
    from repro.analysis import experiments
    from repro.cli import EXPERIMENT_RUNNERS

    for experiment_id in EXPERIMENT_RUNNERS:
        candidates = [
            name
            for name in dir(experiments)
            if name.startswith(f"{experiment_id}_")
        ]
        assert candidates, f"no runner function for {experiment_id}"
