"""E5 — subset size vs capture length.

Paper claims: workload subsets are less than 1% of the parent workload.
The kept frames are fixed once every phase has appeared, so the subset
fraction falls as 1/length; this bench sweeps capture length and checks
the curve heads below 1% (and crosses it at full scale).
"""


from repro import datasets
from repro.analysis.experiments import e5_subset_size

# 1/length curve: long enough to show the trend at CI scale, long enough
# to actually cross 1% at full scale.
CI_LENGTHS = (80, 160, 320, 640)
FULL_LENGTHS = (240, 480, 960, 1920, 3840)


def bench_e5(benchmark, gpu_config, record_result):
    full = datasets.full_scale_requested()
    lengths = FULL_LENGTHS if full else CI_LENGTHS
    scale = 0.3 if full else 0.1
    result = benchmark.pedantic(
        lambda: e5_subset_size(
            "bioshock1_like", gpu_config, lengths=lengths, scale=scale
        ),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    combined = result.column("combined subset draws %")
    benchmark.extra_info["combined_subset_pct_by_length"] = dict(
        zip(result.column("frames"), [round(v, 3) for v in combined])
    )
    benchmark.extra_info["paper_claim_pct"] = 1.0

    # Shape: the fraction shrinks monotonically with capture length, on a
    # ~1/length trajectory toward (and at full scale, below) 1%.
    assert all(b < a for a, b in zip(combined, combined[1:]))
    halves = combined[0] / combined[-1]
    assert halves > (lengths[-1] / lengths[0]) * 0.4
    if full:
        assert combined[-1] < 1.0
