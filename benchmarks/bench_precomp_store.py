#!/usr/bin/env python
"""Precompute fast-path benchmark: compiled kernels + shared mmap store.

Two measured layers, written to ``BENCH_precomp.json`` at the repo root:

- **precompute_layer** — the cold single-process frame-precompute pass
  (``precompute_trace``) with ``REPRO_KERNELS=python`` vs the resolved
  compiled backend (numba or the bundled C extension).  Parity is
  asserted bit for bit: every ``FramePrecomp`` array must satisfy
  ``==``, so the reported ``parity_max_rel_err`` is exactly 0.0.
- **sweep_layer** — end-to-end multi-process sweeps (fresh ``Runtime``
  per round, process-pool fan-out, no artifact cache) in three modes:
  ``recompute_python`` (store disabled, pure-python kernels — the
  per-worker-recompute path as it existed before the fast path),
  ``recompute_compiled`` (store disabled, compiled kernels), and
  ``shared_store`` (compiled kernels + the shared mmap precompute
  store).  The headline speedup compares ``shared_store`` against
  ``recompute_python``; the marginal store-only win over compiled
  recompute is reported alongside, so each factor's contribution is
  visible.  All three modes must produce bit-identical outputs.

Gates (CI smoke): ``--min-precomp-speedup R`` fails the run unless the
compiled precompute layer beats python by at least R; ``--min-store-
speedup R`` does the same for the sweep headline.  Both gates are
skipped (with a note) when no compiled backend resolves on the host.
(Function names deliberately avoid the ``bench_*`` pattern that pytest
collects from this directory; this script is standalone.)

    python benchmarks/bench_precomp_store.py [--frames N] [--scale S]
        [--jobs N] [--rounds N] [--min-precomp-speedup R]
        [--min-store-speedup R]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import datasets  # noqa: E402
from repro.obs.history import record_run  # noqa: E402
from repro.runtime.engine import Runtime  # noqa: E402
from repro.simgpu import _kernels  # noqa: E402
from repro.simgpu.batch import (  # noqa: E402
    clear_precomp_cache,
    precompute_trace,
)
from repro.simgpu.config import GpuConfig  # noqa: E402
from repro.simgpu.precomp_store import PRECOMP_DIR_ENV  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_precomp.json"

#: Store hit/miss/publish counters surfaced per sweep mode (worker-side
#: counts merge back into the runtime's telemetry with the task results).
STORE_COUNTERS = (
    "precomp_store_hits",
    "precomp_store_misses",
    "precomp_store_publishes",
    "precomp_prepublished_frames",
)


def _use_backend(name: str) -> None:
    os.environ[_kernels.KERNELS_ENV] = name
    _kernels._reset_backend_cache()
    clear_precomp_cache()


def _array_fields(fp) -> list:
    return [
        (f.name, getattr(fp, f.name))
        for f in dataclasses.fields(fp)
        if isinstance(getattr(fp, f.name), np.ndarray)
    ]


def _precomp_parity(reference, candidate) -> float:
    """Exact-parity check between two TracePrecomp objects.

    Returns the worst relative error over every array column — the
    fast-path contract makes that exactly 0.0, and the caller asserts
    it; a nonzero return only happens on the way to a raised error.
    """
    worst = 0.0
    for ref_fp, new_fp in zip(reference.frames, candidate.frames):
        for name, ref_arr in _array_fields(ref_fp):
            new_arr = getattr(new_fp, name)
            if np.array_equal(ref_arr, new_arr):
                continue
            with np.errstate(invalid="ignore"):
                ref_f = np.asarray(ref_arr, dtype=np.float64)
                new_f = np.asarray(new_arr, dtype=np.float64)
                scale = np.maximum(np.abs(ref_f), 1.0)
                worst = max(worst, float(np.max(np.abs(ref_f - new_f) / scale)))
    return worst


def measure_precompute_layer(trace, reps: int) -> dict:
    """Cold single-process precompute: python vs the compiled backend."""

    def cold_best(backend: str) -> float:
        best = float("inf")
        for _ in range(reps):
            _use_backend(backend)
            start = time.perf_counter()
            precompute_trace(trace)
            best = min(best, time.perf_counter() - start)
        return best

    _use_backend("auto")
    compiled = _kernels.backend().name
    python_s = cold_best("python")
    record = {
        "reps_best_of": reps,
        "compiled_backend": None if compiled == "python" else compiled,
        "trace_precompute_s": {"python": round(python_s, 4)},
        "speedup_compiled_vs_python": None,
        "parity_max_rel_err": None,
    }
    if compiled == "python":
        return record

    compiled_s = cold_best(compiled)
    _use_backend("python")
    reference = precompute_trace(trace)
    _use_backend(compiled)
    candidate = precompute_trace(trace)
    parity = _precomp_parity(reference, candidate)
    assert parity == 0.0, (
        f"compiled precompute diverged from python reference: {parity}"
    )
    record["trace_precompute_s"][compiled] = round(compiled_s, 4)
    record["speedup_compiled_vs_python"] = round(python_s / compiled_s, 2)
    record["parity_max_rel_err"] = parity
    return record


def _sweep_rounds(trace, jobs: int, rounds: int, configs_per_round: int):
    """Fresh-Runtime sweep rounds; returns (total_s, outputs, counters).

    Each round is a new ``Runtime`` (its own process pool, no artifact
    cache) over a distinct candidate set — the job-queue service
    pattern, where every sweep request fans out against the same trace.
    ``clear_precomp_cache()`` before each round keeps the comparison
    honest: the fork-based pool must not inherit a warm parent memo.
    """
    base = GpuConfig.preset("mainstream")
    total = 0.0
    outputs = []
    counters = {name: 0 for name in STORE_COUNTERS}
    for round_index in range(rounds):
        configs = [
            base.scaled(
                name=f"round{round_index}-cand{i}",
                core_clock_mhz=base.core_clock_mhz * (0.85 + 0.05 * i),
                tex_cache_kb=base.tex_cache_kb * (1 + i % 2),
            )
            for i in range(configs_per_round)
        ]
        clear_precomp_cache()
        runtime = Runtime(jobs=jobs)
        start = time.perf_counter()
        outputs.append(runtime.simulate_frames_many(trace, configs, "bench"))
        total += time.perf_counter() - start
        for name in STORE_COUNTERS:
            counters[name] += runtime.metrics.counter_total(name)
    return total, outputs, counters


def _sweep_parity(reference, candidate) -> float:
    worst = 0.0
    for ref_round, new_round in zip(reference, candidate):
        for ref_outputs, new_outputs in zip(ref_round, new_round):
            for ref_frame, new_frame in zip(ref_outputs, new_outputs):
                for attr in ("time_ns", "core_cycles", "dram_cycles"):
                    ref_value = getattr(ref_frame, attr)
                    new_value = getattr(new_frame, attr)
                    scale = max(abs(ref_value), 1.0)
                    worst = max(worst, abs(ref_value - new_value) / scale)
    return worst


def measure_sweep_layer(
    trace, jobs: int, rounds: int, configs_per_round: int
) -> dict:
    modes = {}
    counters = {}
    outputs = {}

    os.environ[PRECOMP_DIR_ENV] = ""  # store disabled
    _use_backend("python")
    modes["recompute_python"], outputs["recompute_python"], counters[
        "recompute_python"
    ] = _sweep_rounds(trace, jobs, rounds, configs_per_round)

    _use_backend("auto")
    compiled = _kernels.backend().name
    if compiled != "python":
        modes["recompute_compiled"], outputs["recompute_compiled"], counters[
            "recompute_compiled"
        ] = _sweep_rounds(trace, jobs, rounds, configs_per_round)

        with tempfile.TemporaryDirectory(prefix="repro-precomp-") as tmp:
            os.environ[PRECOMP_DIR_ENV] = tmp
            modes["shared_store"], outputs["shared_store"], counters[
                "shared_store"
            ] = _sweep_rounds(trace, jobs, rounds, configs_per_round)
            stored_frames = len(list(Path(tmp).rglob("*.fpc")))
        os.environ[PRECOMP_DIR_ENV] = ""
        clear_precomp_cache()

    parity = max(
        _sweep_parity(outputs["recompute_python"], candidate)
        for candidate in outputs.values()
    )
    assert parity == 0.0, (
        f"sweep modes diverged (store/kernels must be bit-identical): {parity}"
    )

    record = {
        "jobs": jobs,
        "rounds": rounds,
        "configs_per_round": configs_per_round,
        "compiled_backend": None if compiled == "python" else compiled,
        "total_s": {name: round(s, 4) for name, s in modes.items()},
        "speedup_store_vs_python_recompute": None,
        "speedup_store_vs_compiled_recompute": None,
        "store_counters": counters,
        "parity_max_rel_err": parity,
    }
    if "shared_store" in modes:
        record["speedup_store_vs_python_recompute"] = round(
            modes["recompute_python"] / modes["shared_store"], 2
        )
        record["speedup_store_vs_compiled_recompute"] = round(
            modes["recompute_compiled"] / modes["shared_store"], 2
        )
        record["store_frames_published"] = stored_frames
    return record


def run_benchmark(args) -> dict:
    trace = datasets.load("bioshock1_like", frames=args.frames, scale=args.scale)
    precompute_layer = measure_precompute_layer(trace, args.reps)

    sweep_trace = (
        trace
        if args.sweep_frames == args.frames
        else datasets.load(
            "bioshock1_like", frames=args.sweep_frames, scale=args.scale
        )
    )
    sweep_layer = measure_sweep_layer(
        sweep_trace, args.jobs, args.rounds, args.configs
    )

    return {
        "trace": trace.name,
        "frames": trace.num_frames,
        "draws": trace.num_draws,
        "sweep_frames": sweep_trace.num_frames,
        "kernels": _kernels.kernel_info(),
        "precompute_layer": precompute_layer,
        "sweep_layer": sweep_layer,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=24)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--sweep-frames", type=int, default=48)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--configs", type=int, default=2)
    parser.add_argument(
        "--min-precomp-speedup",
        type=float,
        default=None,
        help=(
            "fail unless the compiled precompute layer beats python by "
            "at least this factor (skipped if no compiled backend)"
        ),
    )
    parser.add_argument(
        "--min-store-speedup",
        type=float,
        default=None,
        help=(
            "fail unless shared_store beats recompute_python end to end "
            "by at least this factor (skipped if no compiled backend)"
        ),
    )
    parser.add_argument("-o", "--output", default=str(OUTPUT_PATH))
    args = parser.parse_args(argv)

    record = run_benchmark(args)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")

    precomp = record["precompute_layer"]
    sweep = record["sweep_layer"]
    record_run(
        "bench:precomp_store",
        argv=sys.argv[1:],
        metrics={
            "gauge:precomp_compiled_speedup": float(
                precomp["speedup_compiled_vs_python"] or 0.0
            ),
            "gauge:sweep_store_speedup": float(
                sweep["speedup_store_vs_python_recompute"] or 0.0
            ),
            "gauge:precomp_parity_max_rel_err": float(
                precomp["parity_max_rel_err"] or 0.0
            ),
            "counter:precomp_store_hits": int(
                sweep["store_counters"]
                .get("shared_store", {})
                .get("precomp_store_hits", 0)
            ),
        },
        stages={
            f"sweep_{name}": seconds
            for name, seconds in sweep["total_s"].items()
        },
        extra={
            "trace": record["trace"],
            "kernels": record["kernels"],
            "jobs": sweep["jobs"],
        },
    )

    print(
        f"{record['trace']}: {record['frames']} frames, "
        f"{record['draws']} draws (sweep over {record['sweep_frames']} frames)"
    )
    compiled = precomp["compiled_backend"]
    if compiled is None:
        print("  no compiled backend on this host; gates skipped")
    else:
        timings = precomp["trace_precompute_s"]
        print(
            f"  precompute: python {timings['python']:.4f}s | "
            f"{compiled} {timings[compiled]:.4f}s "
            f"({precomp['speedup_compiled_vs_python']:.2f}x, "
            f"parity {precomp['parity_max_rel_err']:.1f})"
        )
        totals = sweep["total_s"]
        print(
            f"  sweep x{sweep['rounds']} rounds: python-recompute "
            f"{totals['recompute_python']:.3f}s | compiled-recompute "
            f"{totals['recompute_compiled']:.3f}s | shared-store "
            f"{totals['shared_store']:.3f}s"
        )
        print(
            f"  store end-to-end: {sweep['speedup_store_vs_python_recompute']:.2f}x "
            f"vs python recompute, "
            f"{sweep['speedup_store_vs_compiled_recompute']:.2f}x vs "
            f"compiled recompute"
        )
    print(f"wrote {args.output}")

    failed = False
    if compiled is not None and args.min_precomp_speedup is not None:
        achieved = precomp["speedup_compiled_vs_python"]
        if achieved < args.min_precomp_speedup:
            print(
                f"FAIL: precompute speedup {achieved:.2f}x below required "
                f"{args.min_precomp_speedup:.2f}x"
            )
            failed = True
    if compiled is not None and args.min_store_speedup is not None:
        achieved = sweep["speedup_store_vs_python_recompute"]
        if achieved < args.min_store_speedup:
            print(
                f"FAIL: sweep store speedup {achieved:.2f}x below required "
                f"{args.min_store_speedup:.2f}x"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
