"""Shared fixtures for the benchmark harness.

Benchmarks default to a CI-scale corpus (same three games, same phase
scripts and pass structure, fewer frames and draws).  Set
``REPRO_FULL_SCALE=1`` to run the paper-scale corpus: 717 frames and
~828K draw-calls across the BioShock-like trilogy.

Every bench registers its :class:`ExperimentResult`; the rendered
paper-vs-measured tables are printed in the terminal summary after the
timing table.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro import datasets
from repro.analysis.report import ExperimentResult
from repro.gfx.trace import Trace
from repro.obs.history import record_run
from repro.simgpu.config import GpuConfig

_RESULTS: List[ExperimentResult] = []


def _result_metrics(result: ExperimentResult) -> Dict[str, float]:
    """Numeric cells of a result table as flat gauge series.

    Keyed ``gauge:<row label>:<column header>`` so the run store can
    track a reproduced number (a per-game error percentage, a speedup
    factor) across sessions and ``repro runs regress`` can gate drifting
    accuracy metrics.
    """
    metrics: Dict[str, float] = {}
    for row in result.rows:
        label = str(row[0]).strip() if row else ""
        for header, cell in zip(result.headers[1:], row[1:]):
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue
            key = f"gauge:{label}:{header}".replace(" ", "_")
            metrics[key] = float(cell)
    return metrics


@pytest.fixture(scope="session")
def corpus() -> Dict[str, Trace]:
    """The three-game corpus at bench scale."""
    return datasets.bench_corpus()


@pytest.fixture(scope="session")
def single_game(corpus) -> Trace:
    """One mid-weight game for single-trace experiments."""
    return corpus["bioshock2_like"]


@pytest.fixture(scope="session")
def gpu_config() -> GpuConfig:
    return GpuConfig.preset("mainstream")


@pytest.fixture()
def record_result():
    """Register an ExperimentResult for the terminal summary."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        _RESULTS.append(result)
        record_run(
            f"bench:{result.experiment_id}",
            metrics=_result_metrics(result),
            extra={"title": result.title},
        )
        return result

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    scale = "PAPER SCALE" if datasets.full_scale_requested() else (
        f"CI scale ({datasets.CI_FRAMES_PER_GAME} frames/game, "
        f"content x{datasets.CI_SCALE}); set REPRO_FULL_SCALE=1 for the "
        "717-frame / 828K-draw corpus"
    )
    terminalreporter.write_line(f"corpus: {scale}")
    terminalreporter.write_line("")
    for result in sorted(_RESULTS, key=lambda r: r.experiment_id):
        terminalreporter.write_line(result.render())
        terminalreporter.write_line("")
