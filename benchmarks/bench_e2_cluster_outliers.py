"""E2 — cluster-outlier rate (paper figure: clustering quality).

Paper claims: only 3.0% of clusters on average are outliers (intra-
cluster prediction error > 20%).
"""

from repro.analysis.experiments import e2_cluster_outliers


def bench_e2(benchmark, corpus, gpu_config, record_result):
    result = benchmark.pedantic(
        lambda: e2_cluster_outliers(corpus, gpu_config),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    average_rate = result.rows[-1][2]
    benchmark.extra_info["avg_outlier_rate_pct"] = round(average_rate, 2)
    benchmark.extra_info["paper_outlier_rate_pct"] = 3.0

    # Shape: a small minority of clusters are outliers, in every game.
    assert average_rate < 10.0
    for row in result.rows[:-1]:
        assert row[2] < 15.0
