"""E6 — frequency-scaling correlation between subset and parent.

Paper claims: the subset's performance improvement under GPU frequency
scaling correlates with the parent's at r >= 0.997.
"""

from repro.analysis.experiments import e6_frequency_correlation


def bench_e6(benchmark, corpus, gpu_config, record_result):
    result = benchmark.pedantic(
        lambda: e6_frequency_correlation(corpus, gpu_config),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    correlations = dict(zip(result.column("game"), result.column("correlation r")))
    benchmark.extra_info["correlation_by_game"] = {
        game: round(r, 5) for game, r in correlations.items()
    }
    benchmark.extra_info["paper_threshold"] = 0.997

    # The paper's headline validation: meet its bar in every game.
    for game, r in correlations.items():
        assert r >= 0.997, f"{game}: correlation {r} below the paper's bar"
