#!/usr/bin/env python
"""Observability overhead benchmark: tracing off vs on.

The observability layer must be free when disabled — the default
``NULL_TRACER`` turns every span into a shared no-op context manager —
and cheap when enabled.  This script times the full subsetting pipeline
under three configurations and writes ``BENCH_obs.json`` at the
repository root:

    python benchmarks/bench_obs_overhead.py [--frames N] [--repeats N]

* ``disabled_overhead_pct`` — two back-to-back *disabled* runs against
  each other; anything beyond run-to-run noise would mean the no-op
  path is doing work.  Must stay under 5%.
* ``enabled_overhead_pct`` — tracing + metrics on vs off; informational,
  but kept honest in the report.

(Function names deliberately avoid the ``bench_*`` pattern that pytest
collects from this directory; this script is standalone.)
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import datasets  # noqa: E402
from repro.core.pipeline import SubsettingPipeline  # noqa: E402
from repro.obs.history import record_run  # noqa: E402
from repro.obs.spans import Tracer  # noqa: E402
from repro.runtime import Runtime  # noqa: E402
from repro.simgpu.config import GpuConfig  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_obs.json"
DISABLED_OVERHEAD_LIMIT_PCT = 5.0


def _timed_runs(trace, config, repeats, make_runtime):
    times = []
    for _ in range(repeats):
        runtime = make_runtime()
        start = time.perf_counter()
        SubsettingPipeline().run(trace, config, runtime=runtime)
        times.append(time.perf_counter() - start)
    return times


def _overhead_pct(baseline_s, measured_s):
    return 100.0 * (measured_s / baseline_s - 1.0)


def run_benchmark(frames: int, repeats: int) -> dict:
    trace = datasets.load("bioshock1_like", frames=frames, scale=0.2)
    config = GpuConfig.preset("mainstream")

    # Warm-up: JIT-free Python still pays import/allocator warmup once.
    _timed_runs(trace, config, 1, Runtime.serial)

    disabled_a = _timed_runs(trace, config, repeats, Runtime.serial)
    disabled_b = _timed_runs(trace, config, repeats, Runtime.serial)
    enabled = _timed_runs(
        trace, config, repeats, lambda: Runtime(jobs=1, tracer=Tracer())
    )

    base = statistics.median(disabled_a)
    disabled_overhead = _overhead_pct(base, statistics.median(disabled_b))
    enabled_overhead = _overhead_pct(base, statistics.median(enabled))

    runtime = Runtime(jobs=1, tracer=Tracer())
    SubsettingPipeline().run(trace, config, runtime=runtime)
    spans_per_run = len(runtime.tracer.spans())

    return {
        "benchmark": "obs_overhead",
        "frames": frames,
        "repeats": repeats,
        "disabled_median_s": round(base, 6),
        "disabled_rerun_median_s": round(statistics.median(disabled_b), 6),
        "enabled_median_s": round(statistics.median(enabled), 6),
        "disabled_overhead_pct": round(disabled_overhead, 3),
        "enabled_overhead_pct": round(enabled_overhead, 3),
        "disabled_overhead_limit_pct": DISABLED_OVERHEAD_LIMIT_PCT,
        "spans_per_traced_run": spans_per_run,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=20)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)

    payload = run_benchmark(args.frames, args.repeats)
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    record_run(
        "bench:obs_overhead",
        argv=sys.argv[1:],
        metrics={
            "gauge:disabled_overhead_pct": payload["disabled_overhead_pct"],
            "gauge:enabled_overhead_pct": payload["enabled_overhead_pct"],
            "counter:spans_per_traced_run": payload["spans_per_traced_run"],
        },
        stages={
            "pipeline_disabled": payload["disabled_median_s"],
            "pipeline_enabled": payload["enabled_median_s"],
        },
        extra={"frames": args.frames, "repeats": args.repeats},
    )

    if abs(payload["disabled_overhead_pct"]) > DISABLED_OVERHEAD_LIMIT_PCT:
        print(
            f"FAIL: disabled-path overhead {payload['disabled_overhead_pct']}% "
            f"exceeds {DISABLED_OVERHEAD_LIMIT_PCT}%",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: disabled overhead {payload['disabled_overhead_pct']}% "
        f"(limit {DISABLED_OVERHEAD_LIMIT_PCT}%), "
        f"enabled overhead {payload['enabled_overhead_pct']}%"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
