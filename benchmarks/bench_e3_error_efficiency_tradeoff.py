"""E3 — error vs efficiency trade-off as the similarity radius grows
(methodology figure; the paper's operating point sits on this curve)."""

from repro.analysis.experiments import e3_error_efficiency_tradeoff

RADII = (0.05, 0.1, 0.21, 0.3, 0.45, 0.7, 1.0)


def bench_e3(benchmark, single_game, gpu_config, record_result):
    result = benchmark.pedantic(
        lambda: e3_error_efficiency_tradeoff(single_game, gpu_config, RADII),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    efficiencies = result.column("efficiency %")
    errors = result.column("pred error %")
    benchmark.extra_info["efficiency_range_pct"] = (
        round(efficiencies[0], 1),
        round(efficiencies[-1], 1),
    )
    benchmark.extra_info["error_range_pct"] = (
        round(errors[0], 3),
        round(errors[-1], 3),
    )

    # Shape: efficiency grows monotonically with radius; error grows
    # broadly (allowing local noise) from tight to loose clustering.
    assert list(efficiencies) == sorted(efficiencies)
    assert errors[-1] > errors[0]
    assert efficiencies[-1] - efficiencies[0] > 20.0
