"""E7 — ablations: clustering algorithm and feature-group sensitivity
(design-choice analysis implied by the paper's methodology)."""

from repro.analysis.experiments import e7_ablations


def bench_e7(benchmark, single_game, gpu_config, record_result):
    result = benchmark.pedantic(
        lambda: e7_ablations(single_game, gpu_config),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    by_variant = {
        row[0]: {"error": row[1], "efficiency": row[2], "outliers": row[3]}
        for row in result.rows
    }
    benchmark.extra_info["variants"] = {
        k: round(v["error"], 3) for k, v in by_variant.items()
    }

    base = by_variant["leader (default)"]
    assert base["error"] < 3.0

    # Dropping the geometry features must hurt: geometry counts carry most
    # of the performance signal.
    no_geometry = by_variant["leader - geometry features"]
    assert (
        no_geometry["error"] > base["error"]
        or no_geometry["outliers"] > base["outliers"]
    )

    # Budget-matched k-means and threshold agglomerative track the leader
    # result closely: the methodology is algorithm-robust when the
    # cluster-count operating point matches.
    for variant in by_variant:
        if variant.startswith("kmeans (k=") or variant == "agglomerative":
            assert by_variant[variant]["error"] < 5.0, f"{variant} diverged"

    # BIC-selected k-means picks an aggressive k (more efficiency, much
    # worse error) — evidence that a similarity radius, not a global k
    # criterion, is the right control for this problem.
    bic = by_variant["kmeans_bic"]
    assert bic["efficiency"] > base["efficiency"]
    assert bic["error"] > base["error"]
