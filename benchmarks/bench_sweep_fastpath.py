#!/usr/bin/env python
"""Sweep fast-path benchmark: per-config loop vs config-vectorized pass.

Simulates one trace on N candidate GPU configs three ways —

- **per_config_loop**: the scalar reference, ``GpuSimulator(c)
  .simulate_trace(trace)`` once per config (the anti-pattern PERF001
  now flags);
- **vectorized_cold**: one ``simulate_frame_range_multi`` call
  evaluating every config as a ``(num_configs, num_draws)`` numpy pass
  per frame, including the per-frame precompute;
- **vectorized_warm**: the same call again, hitting the worker-side
  precompute memo (what repeated sweep/validate tasks see);

asserts all three agree within float tolerance, times vectorized
feature extraction against the per-draw reference, and writes the
record to ``BENCH_sweep.json`` at the repository root:

    python benchmarks/bench_sweep_fastpath.py [--frames N] [--configs N]

``--min-speedup R`` turns the run into a gate: exit nonzero unless
vectorized_cold beats the per-config loop by at least R (the CI smoke
step uses this).  Per-layer timings come from ``repro.obs`` spans.
(Function names deliberately avoid the ``bench_*`` pattern that pytest
collects from this directory; this script is standalone.)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import datasets  # noqa: E402
from repro.core.features import FeatureExtractor  # noqa: E402
from repro.obs.context import ObsContext, activate_obs  # noqa: E402
from repro.obs.history import record_run  # noqa: E402
from repro.obs.metrics import Metrics  # noqa: E402
from repro.obs.spans import Tracer  # noqa: E402
from repro.simgpu import _kernels  # noqa: E402
from repro.simgpu.batch import (  # noqa: E402
    clear_precomp_cache,
    simulate_frame_range_multi,
    trace_result_from_outputs,
)
from repro.simgpu.config import GpuConfig  # noqa: E402
from repro.simgpu.simulator import GpuSimulator  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_sweep.json"


def candidate_configs(base: GpuConfig, count: int) -> list:
    """``count`` pathfinding candidates varying compute, caches, clocks.

    Cache sizes repeat with period 3 so the sweep exercises the
    per-distinct-capacity sharing of the context arrays — exactly what a
    real sweep (many compute points, few cache points) looks like.
    """
    candidates = []
    for i in range(count):
        candidates.append(
            base.scaled(
                name=f"cand{i}",
                num_shader_cores=max(1, base.num_shader_cores - 2 + i),
                tex_cache_kb=base.tex_cache_kb * (1 + i % 3),
                l2_cache_kb=base.l2_cache_kb * (1 + i % 3),
                core_clock_mhz=base.core_clock_mhz * (0.8 + 0.1 * i),
            )
        )
    return candidates


def _max_rel_err(reference, candidate) -> float:
    worst = 0.0
    for ref_result, new_result in zip(reference, candidate):
        pairs = zip(ref_result.frame_results, new_result.frame_results)
        for ref_frame, new_frame in pairs:
            for attribute in ("time_ns", "core_cycles", "dram_cycles"):
                ref_value = getattr(ref_frame, attribute)
                new_value = getattr(new_frame, attribute)
                scale = max(abs(ref_value), 1.0)
                worst = max(worst, abs(ref_value - new_value) / scale)
    return worst


def _vectorized_sweep(trace, configs):
    """One config-vectorized pass under obs; returns results+spans+metrics."""
    tracer = Tracer()
    metrics = Metrics()
    start = time.perf_counter()
    with activate_obs(ObsContext(tracer=tracer, metrics=metrics)):
        per_config = simulate_frame_range_multi(
            trace, configs, 0, trace.num_frames
        )
    elapsed = time.perf_counter() - start
    results = [
        trace_result_from_outputs(trace.name, config.name, outputs)
        for config, outputs in zip(configs, per_config)
    ]
    return results, elapsed, tracer.drain(), metrics.snapshot()


def run_benchmark(frames: int, scale: float, num_configs: int) -> dict:
    trace = datasets.load("bioshock1_like", frames=frames, scale=scale)
    configs = candidate_configs(GpuConfig.preset("mainstream"), num_configs)

    # Old path: the per-config scalar loop this PR removed from the
    # sweep layers (kept here as the measured baseline).
    start = time.perf_counter()
    reference = [
        GpuSimulator(config).simulate_trace(trace) for config in configs
    ]
    loop_s = time.perf_counter() - start

    clear_precomp_cache()
    vec_results, cold_s, spans, cold_metrics = _vectorized_sweep(trace, configs)
    warm_results, warm_s, _, warm_metrics = _vectorized_sweep(trace, configs)

    parity_cold = _max_rel_err(reference, vec_results)
    parity_warm = _max_rel_err(reference, warm_results)
    tolerance = 1e-9
    assert parity_cold <= tolerance, (
        f"vectorized sweep diverged from per-config loop: {parity_cold}"
    )
    assert parity_warm <= tolerance, (
        f"warm (memoized) sweep diverged: {parity_warm}"
    )

    # Per-layer attribution: the evaluate layer is the simulate_frame
    # spans; the remainder of the cold pass is per-frame precompute
    # (table resolution, switch events, texture reuse distances).
    simulate_spans = [s for s in spans if s.name == "simulate_frame"]
    evaluate_s = sum(s.duration_ns for s in simulate_spans) / 1e9
    layers = {
        "evaluate_s": round(evaluate_s, 4),
        "precompute_s": round(max(0.0, cold_s - evaluate_s), 4),
        "simulate_frame_spans": len(simulate_spans),
    }

    # Feature extraction: vectorized matrix build vs per-draw reference.
    draws = [draw for frame in trace.frames for draw in frame.draw_list]
    start = time.perf_counter()
    per_draw_extractor = FeatureExtractor(trace)
    for draw in draws:
        per_draw_extractor.extract(draw)
    features_old_s = time.perf_counter() - start
    start = time.perf_counter()
    FeatureExtractor(trace).trace_matrices()
    features_new_s = time.perf_counter() - start

    return {
        "trace": trace.name,
        "frames": trace.num_frames,
        "draws": trace.num_draws,
        "num_configs": num_configs,
        "timings_s": {
            "per_config_loop": round(loop_s, 4),
            "vectorized_cold": round(cold_s, 4),
            "vectorized_warm": round(warm_s, 4),
            "features_per_draw": round(features_old_s, 4),
            "features_vectorized": round(features_new_s, 4),
        },
        "speedups": {
            "vectorized_vs_loop": round(loop_s / cold_s, 2),
            "vectorized_warm_vs_loop": round(loop_s / warm_s, 2),
            "features_vectorized_vs_per_draw": round(
                features_old_s / features_new_s, 2
            ),
        },
        "layers": layers,
        # Which kernel backend computed the pass, and how the cold/warm
        # passes interacted with the shared precompute store (the warm
        # pass hits the in-process memo, so zeros there are expected).
        "kernels": _kernels.kernel_info(),
        "precomp_store": {
            phase: {
                name: snapshot.counter_total(f"precomp_store_{name}")
                for name in ("hits", "misses", "publishes")
            }
            for phase, snapshot in (
                ("cold", cold_metrics),
                ("warm", warm_metrics),
            )
        },
        "parity": {
            "tolerance_rel": tolerance,
            "max_rel_err_cold": parity_cold,
            "max_rel_err_warm": parity_warm,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=24)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--configs", type=int, default=8)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help=(
            "fail unless vectorized_cold beats the per-config loop by at "
            "least this factor (CI smoke gate)"
        ),
    )
    parser.add_argument("-o", "--output", default=str(OUTPUT_PATH))
    args = parser.parse_args(argv)

    record = run_benchmark(args.frames, args.scale, args.configs)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")

    record_run(
        "bench:sweep_fastpath",
        argv=sys.argv[1:],
        metrics={
            "gauge:vectorized_vs_loop_speedup": float(
                record["speedups"]["vectorized_vs_loop"]
            ),
            "gauge:sweep_parity_max_rel_error": float(
                record["parity"]["max_rel_err_cold"]
            ),
            "counter:precomp_store_hits": int(
                record["precomp_store"]["cold"]["hits"]
            ),
            "counter:precomp_store_misses": int(
                record["precomp_store"]["cold"]["misses"]
            ),
        },
        stages={
            f"sweep_{name}": seconds
            for name, seconds in record["timings_s"].items()
        },
        extra={
            "trace": record["trace"],
            "num_configs": record["num_configs"],
            "kernels": record["kernels"],
        },
    )

    timings = record["timings_s"]
    speedups = record["speedups"]
    print(
        f"{record['trace']}: {record['frames']} frames, "
        f"{record['draws']} draws, {record['num_configs']} configs"
    )
    print(
        f"  per-config loop {timings['per_config_loop']:.2f}s | "
        f"vectorized {timings['vectorized_cold']:.2f}s "
        f"({speedups['vectorized_vs_loop']:.1f}x) | "
        f"warm {timings['vectorized_warm']:.2f}s "
        f"({speedups['vectorized_warm_vs_loop']:.1f}x)"
    )
    print(
        f"  features per-draw {timings['features_per_draw']:.3f}s | "
        f"vectorized {timings['features_vectorized']:.3f}s "
        f"({speedups['features_vectorized_vs_per_draw']:.1f}x)"
    )
    print(
        f"  layers: evaluate {record['layers']['evaluate_s']:.3f}s over "
        f"{record['layers']['simulate_frame_spans']} frame spans, "
        f"precompute {record['layers']['precompute_s']:.3f}s"
    )
    print(f"  parity: max rel err {record['parity']['max_rel_err_cold']:.2e}")
    print(f"wrote {args.output}")

    if args.min_speedup is not None:
        achieved = speedups["vectorized_vs_loop"]
        if achieved < args.min_speedup:
            print(
                f"FAIL: vectorized speedup {achieved:.2f}x is below the "
                f"required {args.min_speedup:.2f}x"
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
