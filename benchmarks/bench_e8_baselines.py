"""E8 — subsetting vs naive sampling baselines at matched budget."""

from repro.analysis.experiments import e8_baselines


def bench_e8(benchmark, single_game, gpu_config, record_result):
    result = benchmark.pedantic(
        lambda: e8_baselines(single_game, gpu_config),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    errors = dict(zip(result.column("method"), result.column("error %")))
    benchmark.extra_info["error_by_method"] = {
        k: round(v, 3) for k, v in errors.items()
    }

    # Who wins: similarity clustering beats naive draw sampling at the
    # same simulation budget, decisively against truncation.
    clustering = errors["clustering (paper)"]
    assert clustering < errors["random"]
    assert clustering < errors["first_n"]
    assert errors["first_n"] > 5 * clustering

    # Frame level: the phase subset estimates total time at least as well
    # as periodic sampling at a similar budget.
    phase_error = errors["phase subset (paper)"]
    assert phase_error < 5.0
