"""E9 — subsets extracted once transfer across architectures
(the operational meaning of 'micro-architecture-independent')."""

from repro.analysis.experiments import e9_cross_architecture_transfer


def bench_e9(benchmark, corpus, record_result):
    result = benchmark.pedantic(
        lambda: e9_cross_architecture_transfer(corpus),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    errors = result.column("error %")
    benchmark.extra_info["max_transfer_error_pct"] = round(max(errors), 3)

    # One extraction, every architecture: estimates stay tight everywhere.
    for row in result.rows:
        game, architecture, _, _, error = row
        assert error < 8.0, f"{game} on {architecture}: {error}% error"
