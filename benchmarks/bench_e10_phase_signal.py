"""E10 — phase-signal ablation: shader vectors vs measured performance
(why the paper characterizes intervals with an architecture-independent
signal)."""

from repro.analysis.experiments import e10_phase_signal_stability


def bench_e10(benchmark, corpus, record_result):
    result = benchmark.pedantic(
        lambda: e10_phase_signal_stability(corpus),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    agreements = result.column("perf agreement")
    benchmark.extra_info["perf_agreement_by_game"] = {
        row[0]: round(row[5], 4) for row in result.rows
    }

    for row in result.rows:
        game = row[0]
        shader_agreement = row[2]
        perf_agreement = row[5]
        assert shader_agreement == 1.0
        # Performance-detected phases are valid labelings but need not be
        # identical across architectures; shader vectors never do worse.
        assert perf_agreement <= 1.0
        assert perf_agreement >= 0.3, f"{game}: degenerate perf phases"
    # Somewhere in the corpus the architecture dependence must actually
    # show up, otherwise the ablation demonstrates nothing.
    assert min(agreements) < 1.0
