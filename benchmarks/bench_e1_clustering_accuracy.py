"""E1 — per-frame prediction error & clustering efficiency (paper table 1).

Paper claims (abstract): across 717 frames / 828K draw-calls, average
per-frame performance prediction error 1.0% at average clustering
efficiency 65.8%.
"""

from repro.analysis.experiments import e1_clustering_accuracy


def bench_e1(benchmark, corpus, gpu_config, record_result):
    result = benchmark.pedantic(
        lambda: e1_clustering_accuracy(corpus, gpu_config),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    average = result.rows[-1]
    error_pct = average[3]
    efficiency_pct = average[4]
    benchmark.extra_info["avg_pred_error_pct"] = round(error_pct, 3)
    benchmark.extra_info["avg_efficiency_pct"] = round(efficiency_pct, 2)
    benchmark.extra_info["paper_error_pct"] = 1.0
    benchmark.extra_info["paper_efficiency_pct"] = 65.8

    # Shape criteria: error at the ~1% level (not 10%), substantial
    # simulation reduction, and every game individually accurate.
    assert error_pct < 3.0
    assert efficiency_pct > 25.0
    for row in result.rows[:-1]:
        assert row[3] < 5.0
