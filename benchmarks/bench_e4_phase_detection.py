"""E4 — shader-vector phase detection across the BioShock-like series.

Paper claims: phases exist in each game of the series, enabling
extraction of small representative subsets.
"""

from repro.analysis.experiments import e4_phase_detection


def bench_e4(benchmark, corpus, record_result):
    result = benchmark.pedantic(
        lambda: e4_phase_detection(corpus),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    benchmark.extra_info["phases_per_game"] = {
        row[0]: row[2] for row in result.rows
    }

    # Shape: every game exhibits repetition (intervals > phases), and the
    # detected phases agree with the generator's script well above chance.
    for row in result.rows:
        game, intervals, phases, repeat, kept_pct, purity, has_phases = row
        assert has_phases, f"{game}: no repetition found"
        assert repeat > 1.3, f"{game}: weak repetition ({repeat})"
        assert kept_pct < 80.0
        assert purity > 50.0
