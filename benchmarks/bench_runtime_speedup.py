#!/usr/bin/env python
"""Runtime speedup benchmark: serial vs parallel, cold vs warm cache.

Runs the full subsetting pipeline on one mid-size trace under four
runtime configurations and records wall-clock times plus the derived
speedups to ``BENCH_runtime.json`` at the repository root:

    python benchmarks/bench_runtime_speedup.py [--frames N] [--jobs N]

Every configuration must produce an identical ``PipelineResult`` — the
benchmark asserts it, so it doubles as an end-to-end determinism check.
(Function names deliberately avoid the ``bench_*`` pattern that pytest
collects from this directory; this script is standalone.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import datasets  # noqa: E402
from repro.core.pipeline import SubsettingPipeline  # noqa: E402
from repro.obs.history import record_run  # noqa: E402
from repro.runtime import Runtime  # noqa: E402
from repro.simgpu.config import GpuConfig  # noqa: E402

OUTPUT_PATH = REPO_ROOT / "BENCH_runtime.json"


def _timed_run(trace, config, runtime):
    start = time.perf_counter()
    result = SubsettingPipeline().run(trace, config, runtime=runtime)
    elapsed = time.perf_counter() - start
    return result, elapsed, runtime.snapshot()


def run_benchmark(frames: int, scale: float, jobs: int) -> dict:
    trace = datasets.load("bioshock1_like", frames=frames, scale=scale)
    config = GpuConfig.preset("mainstream")

    # A pool wider than the host is pure overhead, and on a single-CPU
    # host "parallel vs serial" measures nothing but that overhead — so
    # clamp, and skip the comparison instead of publishing a <1x
    # "speedup" that reads like a regression.
    host_cpus = os.cpu_count() or 1
    requested_jobs = jobs
    jobs = max(1, min(jobs, host_cpus))

    reference, serial_s, _ = _timed_run(trace, config, Runtime.serial())
    if jobs > 1:
        parallel, parallel_s, _ = _timed_run(trace, config, Runtime(jobs=jobs))
        assert parallel == reference, "parallel run diverged from serial"
        parallel_timing = round(parallel_s, 4)
        parallel_speedup = round(serial_s / parallel_s, 3)
    else:
        parallel_timing = None
        parallel_speedup = "skipped_single_cpu"

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold, cold_s, cold_snap = _timed_run(
            trace, config, Runtime(jobs=jobs, cache_dir=cache_dir)
        )
        assert cold == reference, "cold-cache run diverged from serial"
        warm, warm_s, warm_snap = _timed_run(
            trace, config, Runtime(jobs=jobs, cache_dir=cache_dir)
        )
        assert warm == reference, "warm-cache run diverged from serial"
        assert warm_snap.counter("frames_simulated") == 0, (
            "warm cache still simulated frames"
        )

    return {
        "trace": trace.name,
        "frames": trace.num_frames,
        "draws": trace.num_draws,
        "jobs": jobs,
        "requested_jobs": requested_jobs,
        "host_cpus": host_cpus,
        "timings_s": {
            "serial": round(serial_s, 4),
            "parallel": parallel_timing,
            "cold_cache": round(cold_s, 4),
            "warm_cache": round(warm_s, 4),
        },
        "speedups": {
            "parallel_vs_serial": parallel_speedup,
            "warm_vs_cold": round(cold_s / warm_s, 3),
        },
        "cold_counters": {
            "frames_simulated": cold_snap.counter("frames_simulated"),
            "cache_misses": cold_snap.counter("cache_misses"),
        },
        "warm_counters": {
            "frames_simulated": warm_snap.counter("frames_simulated"),
            "cache_hits": warm_snap.counter("cache_hits"),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=40)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("-o", "--output", default=str(OUTPUT_PATH))
    args = parser.parse_args(argv)

    record = run_benchmark(args.frames, args.scale, args.jobs)
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")

    timings_s = record["timings_s"]
    stages = {
        f"pipeline_{name}": seconds
        for name, seconds in timings_s.items()
        if seconds is not None
    }
    run_metrics = {
        "counter:frames_simulated": float(
            record["cold_counters"]["frames_simulated"]
        ),
        "counter:warm_cache_hits": float(
            record["warm_counters"]["cache_hits"]
        ),
        "gauge:warm_vs_cold_speedup": float(
            record["speedups"]["warm_vs_cold"]
        ),
    }
    if timings_s["parallel"] is not None:
        run_metrics["gauge:parallel_vs_serial_speedup"] = float(
            record["speedups"]["parallel_vs_serial"]
        )
    record_run(
        "bench:runtime_speedup",
        argv=sys.argv[1:],
        jobs=record["jobs"],
        metrics=run_metrics,
        stages=stages,
        extra={"trace": record["trace"], "draws": record["draws"]},
    )

    timings = record["timings_s"]
    print(
        f"{record['trace']}: {record['frames']} frames, "
        f"{record['draws']} draws, jobs={record['jobs']} "
        f"(requested {record['requested_jobs']}), "
        f"host cpus={record['host_cpus']}"
    )
    if timings["parallel"] is None:
        print(
            f"  serial {timings['serial']:.2f}s | parallel comparison "
            "skipped (single-cpu host)"
        )
    else:
        print(
            f"  serial {timings['serial']:.2f}s | "
            f"parallel {timings['parallel']:.2f}s "
            f"({record['speedups']['parallel_vs_serial']:.2f}x)"
        )
    print(
        f"  cold cache {timings['cold_cache']:.2f}s | "
        f"warm cache {timings['warm_cache']:.2f}s "
        f"({record['speedups']['warm_vs_cold']:.2f}x, "
        f"{record['warm_counters']['frames_simulated']} frames re-simulated)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
