#!/usr/bin/env python
"""Validate a --trace-out file against the Chrome trace-event shape.

Usage::

    python scripts/validate_chrome_trace.py TRACE.json [TRACE2.json ...]

Exits non-zero (listing every problem) if any file would not load in
Perfetto / ``chrome://tracing``.  CI runs this against the quickstart's
``--trace-out`` output.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import validate_chrome_trace  # noqa: E402


def main(argv) -> int:
    if not argv:
        print("usage: validate_chrome_trace.py TRACE.json [...]", file=sys.stderr)
        return 2
    failed = False
    for name in argv:
        document = json.loads(Path(name).read_text())
        problems = validate_chrome_trace(document)
        if problems:
            failed = True
            print(f"{name}: INVALID")
            for problem in problems:
                print(f"  - {problem}")
            continue
        events = document["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        pids = {e["pid"] for e in complete}
        print(
            f"{name}: OK ({len(complete)} spans, "
            f"{len(pids)} process(es), {len(events)} events)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
