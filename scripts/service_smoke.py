#!/usr/bin/env python
"""CI smoke for `repro serve`: boot, submit, dedup, fail, restart.

Drives a real server over real sockets through the stdlib client and
asserts the service contract end to end:

1. healthz answers with build info;
2. submit -> poll -> result round-trips a tiny generated job, and the
   job appended a run record (so ``repro runs regress`` sees service
   traffic);
3. an identical resubmission is a warm-cache rerun (cache hits, zero
   frames simulated);
4. a failing job reports ``failed`` while the server keeps serving;
5. a restart on the same job dir picks the backlog up;
6. the ``repro jobs`` CLI drives the same server end to end.

Exit code 0 means every assertion held.  Run it from the repo root:

    python scripts/service_smoke.py
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
from pathlib import Path


def _payload(seed: int, frames: int = 4, game: str = "bioshock1_like") -> dict:
    return {
        "kind": "simulate",
        "trace": {
            "generate": {"game": game, "frames": frames, "seed": seed,
                         "scale": 0.05}
        },
    }


def _serve(workdir: Path, timeout_s: float):
    from repro.service.client import ServiceClient
    from repro.service.http import build_server

    server, recovery = build_server(
        port=0,
        job_dir=workdir / "jobs",
        cache_dir=workdir / "cache",
        run_store=workdir / "runs",
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout_s=timeout_s)
    return server, thread, client, recovery


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-job wait limit in seconds")
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    server, thread, client, recovery = _serve(workdir, args.timeout)
    assert recovery == {"requeued": [], "interrupted": []}, recovery

    health = client.healthz()
    assert health["status"] == "ok", health
    print(f"[1/6] healthz ok (repro {health['build']['package_version']})")

    cold = client.submit(_payload(seed=1))
    final = client.wait(cold["job_id"], timeout_s=args.timeout)
    assert final["state"] == "succeeded", final
    result = client.result(cold["job_id"])
    assert result["result"]["total_time_ms"] > 0, result
    cold_frames = result["metrics"].get("counter:frames_simulated", 0)
    assert cold_frames > 0, result["metrics"]

    from repro.obs.history import RunStore

    runs = RunStore(workdir / "runs").records(command="service:simulate")
    assert runs, "no service run record was appended"
    assert runs[-1].extra.get("job_id") == cold["job_id"], runs[-1].extra
    print(f"[2/6] submit->poll->result ok ({cold_frames:.0f} frames "
          "simulated, run record appended)")

    warm = client.submit(_payload(seed=1))
    client.wait(warm["job_id"], timeout_s=args.timeout)
    warm_metrics = client.result(warm["job_id"])["metrics"]
    assert warm_metrics.get("counter:frames_simulated", 0) == 0, warm_metrics
    assert warm_metrics.get("counter:cache_hits", 0) > 0, warm_metrics
    print("[3/6] identical resubmission was pure cache hits")

    from repro.service.client import ServiceClientError

    try:
        client.submit({"kind": "simulate", "trace": {}})
        raise AssertionError("bad submission was accepted")
    except ServiceClientError as exc:
        assert exc.status == 422 and exc.field_errors, exc
    # Keep the lone worker busy so the doomed job stays queued long
    # enough for the sabotage below to land before it runs.
    busy = client.submit(_payload(seed=5, frames=30))
    doomed = client.submit(_payload(seed=2))
    store = server.app.executor.store
    record = store.get(doomed["job_id"])
    record.spec["trace"]["generate"]["game"] = "no_such_game"
    store.update(record)
    failed = client.wait(doomed["job_id"], timeout_s=args.timeout)
    assert failed["state"] == "failed", failed
    assert failed["error"], failed
    client.wait(busy["job_id"], timeout_s=args.timeout)
    survivor = client.submit(_payload(seed=3))
    ok = client.wait(survivor["job_id"], timeout_s=args.timeout)
    assert ok["state"] == "succeeded", ok
    print("[4/6] failed job reported failed; server kept serving")

    backlog = client.submit(_payload(seed=4))
    server.close()  # queued job stays in the store
    thread.join(timeout=10.0)
    server2, thread2, client2, _ = _serve(workdir, args.timeout)
    picked_up = client2.wait(backlog["job_id"], timeout_s=args.timeout)
    assert picked_up["state"] == "succeeded", picked_up
    print("[5/6] restart picked up the queued backlog")

    from repro.cli import main as repro_main

    rc = repro_main([
        "jobs", "submit", "--url", server2.url,
        "--kind", "subset", "--generate", "bioshock1_like",
        "--frames", "12", "--seed", "6", "--scale", "0.05",
        "--wait", "--timeout", str(args.timeout),
    ])
    assert rc == 0, f"repro jobs submit exited {rc}"
    assert repro_main(["jobs", "list", "--url", server2.url]) == 0
    server2.close()
    thread2.join(timeout=10.0)
    print("[6/6] repro jobs submit/list drove the server end to end")

    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
