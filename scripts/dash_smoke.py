#!/usr/bin/env python
"""CI smoke for `repro dash`: every data endpoint against the committed store.

Boots a read-only dashboard server (no job executor) on an ephemeral
port over the committed ``.repro/runs/`` baseline and asserts the data
contract the frontend depends on:

1. every ``/v1/dash/*`` endpoint answers valid JSON with the expected
   top-level shape, and the run listing / series trends are non-empty;
2. ``/v1/dash/runs/{ref}`` resolves a real run id from the listing;
3. the span profile works end to end over a ``--trace-out`` JSONL
   export (``--spans FILE``, or a tiny generated one), and
   ``/v1/dash/flamediff`` of that export against itself yields
   all-zero deltas;
4. the embedded UI is served at ``/dash`` as HTML;
5. after the walk, ``service_request_duration_s`` histograms and
   ``service_requests`` counters are on ``/v1/metrics`` with templated
   route labels — the request telemetry the dashboard's service panel
   renders.

Then a second, full server (executor attached) covers the live half:

6. a tiny pipeline job submitted over HTTP writes an artifact sidecar
   through the service path;
7. ``/v1/dash/runs/{ref}/clusters`` and ``.../fidelity`` serve
   non-empty evidence payloads from that sidecar;
8. ``GET /v1/events`` streams the job's lifecycle as server-sent
   events (at least hello + queued/running/succeeded observed) and the
   server shuts down cleanly with the stream open.

Every payload is written to ``--out`` (default ``dash_payloads/``) so
CI can upload them as artifacts.  Exit code 0 means every assertion
held.  Run it from the repo root:

    python scripts/dash_smoke.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path


def fetch(url: str):
    with urllib.request.urlopen(url) as response:
        content_type = response.headers.get("Content-Type", "")
        raw = response.read()
    return content_type, raw


def fetch_json(url: str):
    content_type, raw = fetch(url)
    assert content_type.startswith("application/json"), (url, content_type)
    return json.loads(raw)


def ensure_spans(spans_arg: str | None) -> Path:
    """A span JSONL export: the one CI already made, or a tiny fresh one."""
    if spans_arg:
        path = Path(spans_arg)
        assert path.is_file(), f"--spans {path} does not exist"
        return path
    from repro.cli import main as repro_main

    workdir = Path(tempfile.mkdtemp(prefix="repro-dash-smoke-"))
    trace = workdir / "trace.json"
    spans = workdir / "spans.jsonl"
    rc = repro_main([
        "generate", "--game", "bioshock1_like", "--frames", "6",
        "--scale", "0.05", "-o", str(trace),
    ])
    assert rc == 0, "trace generation failed"
    rc = repro_main([
        "subset", str(trace), "--no-cache", "--no-run-store",
        "--trace-out", str(spans),
    ])
    assert rc == 0, "subset run for the span export failed"
    return spans


def live_evidence_phase(out: Path, saved: dict) -> None:
    """Steps 6-8: full server, sidecar-writing job, live SSE, clean close."""
    from repro.service.client import ServiceClient
    from repro.service.http import build_server

    workdir = Path(tempfile.mkdtemp(prefix="repro-dash-smoke-live-"))
    server, recovery = build_server(
        port=0,
        job_dir=workdir / "jobs",
        cache_dir=workdir / "cache",
        run_store=workdir / "runs",
    )
    assert recovery == {"requeued": [], "interrupted": []}, recovery
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout_s=60.0)

    def save(name: str, payload: object) -> None:
        saved[name] = payload
        (out / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    events: list[dict] = []
    ready = threading.Event()

    def consume() -> None:
        for kind, data in client.events(timeout_s=120.0):
            if kind == "hello":
                ready.set()
            if kind == "keepalive":
                continue
            # "event" holds the SSE kind; job payloads carry their own
            # "kind" field (the job kind), which must not clobber it.
            events.append(dict(data, event=kind))
            if kind == "job" and data.get("state") in ("succeeded", "failed"):
                return

    closed = False
    consumer = threading.Thread(target=consume, daemon=True)
    try:
        consumer.start()
        assert ready.wait(10.0), "event stream never said hello"
        submitted = client.submit({
            "kind": "subset",
            "trace": {"generate": {"game": "bioshock1_like", "frames": 3,
                                   "scale": 0.05}},
        })
        final = client.wait(submitted["job_id"], timeout_s=300.0)
        assert final["state"] == "succeeded", final
        consumer.join(timeout=30.0)
        assert not consumer.is_alive(), "SSE consumer missed the terminal event"
        save("events", events)
        job_states = [e["state"] for e in events if e["event"] == "job"]
        assert job_states == ["queued", "running", "succeeded"], job_states
        assert len(events) >= 3, events
        print(f"[7/9] pipeline job succeeded; {len(events)} SSE events "
              f"observed ({' -> '.join(job_states)})")

        runs = fetch_json(server.url + "/v1/dash/runs")
        newest = runs["runs"][-1]
        assert newest["artifact_sections"], (
            "service subset run recorded no artifact sidecar", newest
        )
        base = f"{server.url}/v1/dash/runs/{newest['run_id']}"
        clusters = fetch_json(base + "/clusters")
        save("clusters", clusters)
        assert clusters["frames"], clusters
        assert all(frame["points"] for frame in clusters["frames"]), clusters
        assert any(frame["representatives"] for frame in clusters["frames"])
        fidelity = fetch_json(base + "/fidelity")
        save("fidelity", fidelity)
        assert fidelity["frames"], fidelity
        assert "mean_prediction_error" in fidelity["summary"], fidelity
        print(f"[8/9] evidence routes ok ({len(clusters['frames'])} cluster "
              f"frames; E1 {fidelity['summary']['mean_prediction_error']:.4%})")

        # an idle stream must unwind on server close via the shutdown event
        stream_open = threading.Event()
        shutdown_seen = threading.Event()

        def idle_consume() -> None:
            for kind, _ in client.events(timeout_s=60.0):
                if kind == "hello":
                    stream_open.set()
                if kind == "shutdown":
                    shutdown_seen.set()
                    return

        idle = threading.Thread(target=idle_consume, daemon=True)
        idle.start()
        assert stream_open.wait(10.0), "second event stream never opened"
        server.close()
        thread.join(timeout=10.0)
        closed = True
        assert shutdown_seen.wait(10.0), (
            "open SSE stream did not receive shutdown on server close"
        )
        print("[9/9] server closed cleanly with a live event stream attached")
    finally:
        if not closed:
            server.close()
            thread.join(timeout=10.0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=".repro/runs",
                        help="run store to serve (default: committed baseline)")
    parser.add_argument("--spans", default=None,
                        help="span JSONL export to profile (default: generate)")
    parser.add_argument("--out", default="dash_payloads",
                        help="directory the fetched payloads are written to")
    args = parser.parse_args()

    from repro.service.http import build_dash_server

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    server = build_dash_server(port=0, run_store=args.store, bench_root=".")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    saved: dict[str, object] = {}

    def get(name: str, path: str):
        payload = fetch_json(server.url + path)
        saved[name] = payload
        (out / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return payload

    try:
        health = get("healthz", "/v1/healthz")
        assert health["status"] == "ok", health
        assert health["executor"] is False, "dash smoke must be data-only"
        assert health["dashboard"] is True, health
        print(f"[1/9] healthz ok (repro {health['build']['package_version']}, "
              "read-only)")

        runs = get("runs", "/v1/dash/runs")
        assert runs["version"] == 1, runs
        assert runs["count"] > 0 and runs["runs"], (
            f"committed run store {args.store} served no runs"
        )
        assert runs["commands"], runs
        newest = runs["runs"][-1]
        for field in ("run_id", "command", "created_unix", "num_series"):
            assert field in newest, (field, newest)
        print(f"[2/9] /v1/dash/runs ok ({runs['count']} runs, "
              f"commands: {', '.join(runs['commands'])})")

        detail = get("run_detail", f"/v1/dash/runs/{newest['run_id']}")
        assert detail["run_id"] == newest["run_id"], detail
        assert detail["summary"]["command"] == newest["command"], detail
        assert detail["metrics"], "stored record has no metrics"

        series = get("series", "/v1/dash/series")
        assert series["version"] == 1, series
        assert series["series"], "series trends came back empty"
        assert all(s["points"] for s in series["series"]), (
            "a selected series has no points"
        )
        gated = [s for s in series["series"] if s["gate"] is not None]
        assert len(series["run_ids"]) < 2 or gated, (
            "multi-run window produced no gate verdicts"
        )
        print(f"[3/9] series trends ok ({len(series['series'])} series over "
              f"{series['window']} runs, {len(gated)} gated)")

        spans_file = ensure_spans(args.spans)
        spans = get(
            "spans",
            f"/v1/dash/runs/{newest['run_id']}/spans?file={spans_file}",
        )
        assert spans["num_spans"] > 0, spans
        assert spans["rollup"] and spans["flame"], spans
        assert spans["frames"], "span export carried no simulate_frame rows"
        diff = get(
            "flamediff", f"/v1/dash/flamediff?a={spans_file}&b={spans_file}"
        )
        assert diff["delta_total_s"] == 0.0, diff["delta_total_s"]
        assert diff["tree"], "self flame-diff produced an empty tree"

        def walk_diff(nodes):
            for node in nodes:
                yield node
                yield from walk_diff(node["children"])

        assert all(
            node["delta_total_s"] == 0.0 and node["delta_self_s"] == 0.0
            for node in walk_diff(diff["tree"])
        ), "self flame-diff must have all-zero deltas"
        print(f"[4/9] span profile ok ({spans['num_spans']} spans, "
              f"{len(spans['frames'])} timeline rows); self flame-diff zero")

        bench = get("bench", "/v1/dash/bench")
        assert bench["problems"] == [], bench["problems"]
        committed = sorted(Path(".").glob("BENCH_*.json"))
        assert len(bench["benches"]) == len(committed), (
            bench["benches"].keys(), committed
        )
        jobs = get("jobs", "/v1/dash/jobs")
        assert jobs["available"] in (True, False), jobs
        print(f"[5/9] bench ({len(bench['benches'])} files) and jobs "
              f"(available={jobs['available']}) ok")

        content_type, html = fetch(server.url + "/dash")
        assert content_type.startswith("text/html"), content_type
        assert b"<!doctype html>" in html, "UI page looks wrong"
        metrics = get("metrics", "/v1/metrics")["metrics"]
        histograms = [
            h for h in metrics["histograms"]
            if h["name"] == "service_request_duration_s"
        ]
        assert histograms, "request duration histogram never recorded"
        routes = {h["labels"]["route"] for h in histograms}
        assert "/v1/dash/runs" in routes, routes
        assert "/v1/dash/runs/{ref}" in routes, routes  # templated, not raw
        counters = [
            c for c in metrics["counters"] if c["name"] == "service_requests"
        ]
        assert counters and all(
            c["labels"]["status"] == "200" for c in counters
        ), counters
        print(f"[6/9] UI served; request telemetry on /v1/metrics "
              f"({len(routes)} route labels)")
    finally:
        server.close()
        thread.join(timeout=10.0)

    live_evidence_phase(out, saved)

    print(f"dash smoke: all checks passed ({len(saved)} payloads in {out}/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
