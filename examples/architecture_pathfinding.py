#!/usr/bin/env python
"""Architecture pathfinding on a subset — the paper's motivating use case.

Evaluates six candidate GPU architectures two ways: by simulating the
full workload (expensive) and by simulating only the extracted subset
(cheap), then compares the candidate rankings.  A good subset picks the
same winner and preserves relative performance.

Run:
    python examples/architecture_pathfinding.py
"""

from repro import datasets
from repro.analysis.sweep import default_candidates, pathfinding_sweep
from repro.core.subsetting import build_subset
from repro.util.tables import format_table


def main() -> None:
    trace = datasets.load("bioshock_infinite_like", frames=96, scale=0.2)
    subset = build_subset(trace)
    print(
        f"workload: {trace.num_frames} frames / {trace.num_draws} draws; "
        f"subset keeps {subset.num_frames} frames "
        f"({100 * subset.frame_fraction:.1f}%)"
    )

    result = pathfinding_sweep(trace, subset, default_candidates())

    rows = []
    parent_base = max(result.parent_times_ns)
    for name, parent_ns, subset_ns in zip(
        result.config_names,
        result.parent_times_ns,
        result.subset_estimated_times_ns,
    ):
        rows.append(
            [
                name,
                parent_ns / 1e6,
                subset_ns / 1e6,
                parent_base / parent_ns,
                100.0 * abs(subset_ns - parent_ns) / parent_ns,
            ]
        )
    print()
    print(
        format_table(
            ["candidate", "full ms", "subset-est ms", "speedup", "est err %"],
            rows,
            title="Candidate evaluation: full workload vs subset",
            precision=2,
        )
    )
    print()
    print(f"full-workload ranking:   {' > '.join(result.parent_ranking())}")
    print(f"subset-based ranking:    {' > '.join(result.subset_ranking())}")
    print(f"ranking agreement (spearman): {result.ranking_agreement:.4f}")
    print(f"winner agrees: {result.winner_agrees()}")


if __name__ == "__main__":
    main()
