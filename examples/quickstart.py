#!/usr/bin/env python
"""Quickstart: generate a game trace, run the full subsetting methodology.

Generates a BioShock-1-like synthetic capture, runs the paper's pipeline
(per-frame draw-call clustering + shader-vector phase detection) against
the GPU performance model, and prints the evaluation report.

Run:
    python examples/quickstart.py

The pipeline accepts a ``Runtime`` for parallel workers and an on-disk
artifact cache — the same machinery behind the CLI's ``--jobs`` /
``--cache-dir`` / ``--no-cache`` flags.  Re-run this script and the
cached ground truth makes the pipeline skip every frame simulation
(watch the ``[runtime]`` line at the bottom of the report).
"""

import tempfile
from pathlib import Path

from repro import datasets
from repro.core.pipeline import SubsettingPipeline
from repro.runtime import Runtime
from repro.simgpu import GpuConfig

CACHE_DIR = Path(tempfile.gettempdir()) / "repro-quickstart-cache"


def main() -> None:
    # A reduced-scale capture: 60 frames of menu/explore/combat gameplay.
    trace = datasets.load("bioshock1_like", frames=60, scale=0.25)
    stats = trace.stats()
    print(
        f"generated {trace.name}: {stats.num_frames} frames, "
        f"{stats.num_draws} draw-calls, {stats.num_shaders} shaders"
    )

    config = GpuConfig.preset("mainstream")
    pipeline = SubsettingPipeline()
    # Two worker processes plus a persistent artifact cache.  Results are
    # bit-identical to runtime=None (the serial, uncached default).
    runtime = Runtime(jobs=2, cache_dir=CACHE_DIR)
    result = pipeline.run(trace, config, runtime=runtime)

    print()
    print(result.report())
    print()
    print(
        "interpretation: simulating only "
        f"{100 * (1 - result.mean_efficiency):.0f}% of draw-calls predicts "
        f"frame time within {100 * result.mean_prediction_error:.2f}% on "
        "average, and the phase subset estimates total workload time within "
        f"{100 * result.subset_time_error:.2f}%."
    )


if __name__ == "__main__":
    main()
