#!/usr/bin/env python
"""The subset-as-artifact workflow a pathfinding team would run.

1. Extract a subset from a capture (once).
2. Save the subset definition as a small JSON artifact.
3. Later / elsewhere: load the definition, check it against the trace,
   validate it (frequency scaling, cross-architecture transfer, ranking),
   and use it to evaluate candidate architectures cheaply.

Run:
    python examples/subset_artifact_workflow.py
"""

import tempfile
from pathlib import Path

from repro import datasets
from repro.analysis.validation import validate_subset
from repro.core.pipeline import SubsettingPipeline
from repro.core.subsetio import check_subset_against, load_subset, save_subset
from repro.simgpu import GpuConfig


def main() -> None:
    config = GpuConfig.preset("mainstream")
    trace = datasets.load("bioshock2_like", frames=96, scale=0.2)

    # --- extraction (the expensive one-off) -------------------------------
    result = SubsettingPipeline().run(trace, config)
    print(
        f"extracted subset: {result.subset.num_frames}/{trace.num_frames} "
        f"frames ({100 * result.subset.frame_fraction:.1f}%), combined with "
        f"clustering -> {100 * result.combined_draw_fraction:.1f}% of draws"
    )

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "bioshock2.subset.json"
        save_subset(result.subset, artifact)
        print(f"saved definition: {artifact.name} ({artifact.stat().st_size} bytes)")

        # --- consumption (months later, different machine) ----------------
        subset = load_subset(artifact)
        check_subset_against(subset, trace)  # guards against wrong capture
        validation = validate_subset(
            trace, subset, config, clocks_mhz=(600.0, 1000.0, 1400.0)
        )
        print()
        print(validation.report())
        print()

        for preset in ("lowpower", "highend"):
            candidate = GpuConfig.preset(preset)
            estimate_ms = subset.estimate_on_config(trace, candidate) / 1e6
            print(
                f"candidate {preset:10s}: estimated total "
                f"{estimate_ms:9.2f} ms from the subset alone"
            )


if __name__ == "__main__":
    main()
