#!/usr/bin/env python
"""Validate a subset with frequency scaling (the paper's E6 experiment).

Sweeps the GPU core clock on a parent workload and on its extracted
subset, and correlates the two performance-improvement curves.  The
paper reports r >= 0.997; the reproduction typically exceeds 0.999.

Run:
    python examples/frequency_scaling.py
"""

from repro import datasets
from repro.analysis.correlation import subset_parent_correlation
from repro.core.subsetting import build_subset
from repro.simgpu import GpuConfig
from repro.util.tables import format_table

CLOCKS_MHZ = (600.0, 800.0, 1000.0, 1200.0, 1400.0, 1600.0)


def main() -> None:
    config = GpuConfig.preset("mainstream")
    rows = []
    for game in datasets.available():
        trace = datasets.load(game, frames=96, scale=0.2)
        subset = build_subset(trace)
        result = subset_parent_correlation(trace, subset, config, CLOCKS_MHZ)
        rows.append(
            [
                game,
                f"{subset.num_frames}/{trace.num_frames}",
                result.correlation,
                result.max_improvement_gap_points,
            ]
        )
        print(f"{game}:")
        print(f"  clocks (MHz):        {[int(c) for c in CLOCKS_MHZ[1:]]}")
        print(
            "  parent improvement %:",
            [round(v, 1) for v in result.parent_improvements_percent],
        )
        print(
            "  subset improvement %:",
            [round(v, 1) for v in result.subset_improvements_percent],
        )
    print()
    print(
        format_table(
            ["game", "subset frames", "correlation r", "max gap (pts)"],
            rows,
            title="Frequency-scaling validation (paper: r >= 0.997)",
            precision=5,
        )
    )


if __name__ == "__main__":
    main()
