#!/usr/bin/env python
"""Explore a game's phase structure via shader vectors.

Prints the per-interval phase timeline detected from shader-vector
similarity, next to the generator's ground-truth segment script, and
shows which intervals the subset keeps.

Run:
    python examples/phase_explorer.py
"""

from repro import datasets
from repro.core.phasedetect import detect_phases, phase_purity
from repro.core.shadervector import shader_vector
from repro.core.subsetting import build_subset

PHASE_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"


def main() -> None:
    trace = datasets.load("bioshock2_like", frames=120, scale=0.15)
    detection = detect_phases(trace, interval_length=4)
    subset = build_subset(trace, detection)

    print(f"workload: {trace.name}, {trace.num_frames} frames")
    print(
        f"intervals: {detection.num_intervals} x {detection.interval_length} "
        f"frames -> {detection.num_phases} phases"
    )
    print()

    # Phase timeline, one glyph per interval; '*' marks kept intervals.
    kept_starts = {
        interval.start for interval in detection.representative_intervals().values()
    }
    timeline = "".join(
        PHASE_GLYPHS[phase % len(PHASE_GLYPHS)] for phase in detection.phase_ids
    )
    kept = "".join(
        "*" if interval.start in kept_starts else " "
        for interval in detection.intervals
    )
    print("detected phases: ", timeline)
    print("kept intervals:  ", kept)

    # Ground truth from the generator's script.
    truth_line = []
    segments = trace.metadata["segments"]
    labels = {}
    for interval in detection.intervals:
        mid = (interval.start + interval.end) // 2
        for row in segments:
            if row["start"] <= mid < row["end"]:
                label = row["phase"]
                labels.setdefault(label, PHASE_GLYPHS[len(labels)])
                truth_line.append(labels[label])
                break
    print("script (truth):  ", "".join(truth_line))
    print()
    for label, glyph in labels.items():
        print(f"  {glyph} = {label}")
    print()
    print(f"phase purity vs script: {100 * phase_purity(detection, trace):.1f}%")
    print(
        f"subset keeps {subset.num_frames}/{trace.num_frames} frames "
        f"({100 * subset.frame_fraction:.1f}%)"
    )

    # Peek at one phase's shader vector.
    rep = detection.representative_intervals()[0]
    vector = shader_vector(rep.frames_of(trace.frames))
    top = sorted(vector.items(), key=lambda kv: -kv[1])[:5]
    print()
    print("phase A's heaviest shaders (id: draws/interval):")
    for sid, count in top:
        print(f"  {trace.shader(sid).name:32s} {count}")


if __name__ == "__main__":
    main()
