#!/usr/bin/env python
"""Build a trace by hand with the gfx API and subset it.

Shows the substrate API a user would target when importing real API
captures: declare shaders, resources, and render targets; assemble
frames from draw-calls; validate; then run any part of the methodology.

Run:
    python examples/custom_trace.py
"""

from repro.core.cluster_frame import cluster_frame
from repro.core.features import FeatureExtractor
from repro.gfx import (
    DrawCall,
    Frame,
    PrimitiveTopology,
    RenderPass,
    RenderTargetDesc,
    Trace,
    TextureDesc,
    TextureFormat,
    validate_trace,
)
from repro.gfx.enums import PassType
from repro.gfx.shader import make_shader
from repro.gfx.state import FULLSCREEN_STATE, OPAQUE_STATE
from repro.simgpu import GpuConfig, GpuSimulator


def build_trace() -> Trace:
    """A two-frame toy capture: terrain + crates + tonemap."""
    shaders = {
        1: make_shader(1, "terrain", vs_alu=30, ps_alu=70, ps_tex=3),
        2: make_shader(2, "crate", vs_alu=18, ps_alu=40, ps_tex=2),
        3: make_shader(3, "tonemap", vs_alu=3, ps_alu=20, ps_tex=1),
    }
    textures = {
        10: TextureDesc(10, 1024, 1024, TextureFormat.BC1, mip_levels=8),
        11: TextureDesc(11, 512, 512, TextureFormat.BC3, mip_levels=7),
        12: TextureDesc(12, 1280, 720, TextureFormat.RGBA16F),
    }
    render_targets = {
        0: RenderTargetDesc(0, 1280, 720, TextureFormat.RGBA8),
        1: RenderTargetDesc(1, 1280, 720, TextureFormat.DEPTH24S8),
        2: RenderTargetDesc(2, 1280, 720, TextureFormat.RGBA16F),
    }

    def terrain() -> DrawCall:
        return DrawCall(
            shader_id=1,
            state=OPAQUE_STATE,
            topology=PrimitiveTopology.TRIANGLE_LIST,
            vertex_count=24000,
            pixels_rasterized=700000,
            pixels_shaded=650000,
            texture_ids=(10,),
            render_target_ids=(2,),
            depth_target_id=1,
        )

    def crate(verts: int, pixels: int) -> DrawCall:
        return DrawCall(
            shader_id=2,
            state=OPAQUE_STATE,
            topology=PrimitiveTopology.TRIANGLE_LIST,
            vertex_count=verts,
            pixels_rasterized=pixels,
            pixels_shaded=int(pixels * 0.8),
            texture_ids=(11,),
            render_target_ids=(2,),
            depth_target_id=1,
        )

    def tonemap() -> DrawCall:
        return DrawCall(
            shader_id=3,
            state=FULLSCREEN_STATE,
            topology=PrimitiveTopology.TRIANGLE_LIST,
            vertex_count=3,
            pixels_rasterized=1280 * 720,
            pixels_shaded=1280 * 720,
            texture_ids=(12,),
            render_target_ids=(0,),
        )

    frames = []
    for index in range(2):
        crates = [crate(900 + 10 * i, 30000 + 500 * i) for i in range(24)]
        frames.append(
            Frame(
                index=index,
                passes=(
                    RenderPass(PassType.FORWARD, (terrain(), *crates)),
                    RenderPass(PassType.POST, (tonemap(),)),
                ),
            )
        )
    return Trace(
        name="custom-capture",
        frames=tuple(frames),
        shaders=shaders,
        textures=textures,
        render_targets=render_targets,
    )


def main() -> None:
    trace = build_trace()
    validate_trace(trace)
    print(f"built {trace.name}: {trace.num_frames} frames, {trace.num_draws} draws")

    config = GpuConfig.preset("mainstream")
    simulator = GpuSimulator(config)
    result = simulator.simulate_frame(trace.frames[0], trace, keep_draw_costs=True)
    print(f"frame 0: {result.time_ns / 1e6:.3f} ms on {config.name}")
    for pass_name, time_ns in result.pass_times_ns.items():
        print(f"  {pass_name:10s} {time_ns / 1e6:.3f} ms")

    features = FeatureExtractor(trace).frame_matrix(trace.frames[0])
    clustering = cluster_frame(features)
    print(
        f"clustering: {clustering.num_draws} draws -> "
        f"{clustering.num_clusters} clusters "
        f"(efficiency {100 * clustering.efficiency:.1f}%)"
    )
    print("cluster populations:", [int(w) for w in clustering.weights])
    # The 24 near-identical crates collapse; terrain and tonemap stand alone.


if __name__ == "__main__":
    main()
