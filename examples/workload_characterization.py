#!/usr/bin/env python
"""Characterize the BioShock-like series on one architecture.

Prints, per game: where frame time goes (per render pass), which
pipeline stage bottlenecks the draws, and the memory-traffic mix —
the IISWC-style characterization that motivates why draw-calls form
performance-similar groups in the first place.

Run:
    python examples/workload_characterization.py
"""

from repro import datasets
from repro.analysis.characterize import characterize_trace
from repro.simgpu import GpuConfig


def main() -> None:
    config = GpuConfig.preset("mainstream")
    for game in datasets.available():
        trace = datasets.load(game, frames=24, scale=0.15)
        profile = characterize_trace(trace, config)
        print(profile.report())
        print()
        print("=" * 64)
        print()


if __name__ == "__main__":
    main()
